"""Auto-tune ARC-SW's balancing threshold (paper §5.5.3 and Figure 23).

The balancing threshold decides which warp groups are reduced in the SM
versus sent to the L2 ROP units.  Its optimum depends on the workload and
the GPU, so the paper profiles all values on one training iteration every
N iterations.  This example sweeps the threshold for a Gaussian and a
sphere workload on both simulated GPUs and shows the auto-tuner converging
on the per-case best.

Run:  python examples/tune_threshold.py
"""

from repro import RTX3060_SIM, RTX4090_SIM
from repro.core.autotune import ThresholdAutotuner, tune_threshold
from repro.workloads import GaussianWorkload, SphereWorkload

CANDIDATES = (0, 4, 8, 12, 16, 24, 32)


def sweep(title: str, trace, variant: str) -> None:
    print(title)
    for config in (RTX4090_SIM, RTX3060_SIM):
        best, timings = tune_threshold(
            trace, config, variant=variant, candidates=CANDIDATES
        )
        slowest = max(timings.values())
        print(f"  {config.name}: best threshold = {best}")
        for threshold in CANDIDATES:
            bar = "#" * int(40 * timings[threshold] / slowest)
            marker = " <- best" if threshold == best else ""
            print(f"    X={threshold:>2}  {timings[threshold]:>12,.0f} "
                  f"cycles {bar}{marker}")
    print()


def main() -> None:
    gaussians = GaussianWorkload(
        key="tune-3d", dataset="demo", description="Gaussian scene",
        n_gaussians=700, base_scale=0.14, extent=1.6,
        width=160, height=128, trace_views=2, seed=7,
    )
    spheres = SphereWorkload(
        key="tune-ps", dataset="demo", description="sphere scene",
        n_spheres=500, base_radius=0.14, extent=1.4,
        width=160, height=128, trace_views=2, seed=8,
    )
    trace_3d = gaussians.capture_trace()
    trace_ps = spheres.capture_trace()

    sweep("SW-B threshold sweep, Gaussian workload:", trace_3d, "B")
    sweep("SW-S threshold sweep, Pulsar workload (SW-B inapplicable):",
          trace_ps, "S")

    # The online tuner re-profiles every `period` iterations.
    tuner = ThresholdAutotuner(
        RTX4090_SIM, variant="B", period=50, candidates=CANDIDATES
    )
    chosen = [
        tuner.threshold(iteration, lambda: trace_3d)
        for iteration in range(120)
    ]
    print("Online auto-tuner over 120 training iterations "
          f"(re-profiling every {tuner.period}):")
    print(f"  thresholds used: {sorted(set(chosen))}, "
          f"profiling passes: {tuner.profiles_run}")


if __name__ == "__main__":
    main()
