"""Why ARC does not help graph analytics (paper §5.6).

Pagerank also floods the GPU with atomics, but with *low* intra-warp
locality: a warp's 32 edges scatter across 32 destination vertices, so
warp-level reduction finds almost nothing to merge.  This example builds a
push-style pagerank over a power-law graph, verifies the trace's locality
is under 0.1% (versus >99% for 3DGS), and shows that ARC neither helps nor
hurts -- the reduction path simply bypasses.

Run:  python examples/pagerank_counterexample.py
"""

import numpy as np

from repro import RTX4090_SIM, simulate_kernel
from repro.core import ArcHW, ArcSWSerialized, BaselineAtomic
from repro.trace.analysis import profile_trace
from repro.workloads import GaussianWorkload, PagerankWorkload


def main() -> None:
    pagerank = PagerankWorkload(n_nodes=4000, attachments=4, seed=0)
    ranks = pagerank.solve(iterations=30)
    print(f"Pagerank over {pagerank.n_nodes:,} nodes / "
          f"{pagerank.n_edges:,} directed edges "
          f"(sum of ranks = {ranks.sum():.4f})")

    pr_profile = profile_trace(pagerank.capture_trace())
    gs_trace = GaussianWorkload(
        key="3dgs-ref", dataset="demo", description="reference",
        n_gaussians=400, base_scale=0.15, extent=1.3,
        width=96, height=96, seed=2,
    ).capture_trace()
    gs_profile = profile_trace(gs_trace)

    print("\nIntra-warp locality (all active lanes on one address):")
    print(f"  pagerank:           {pr_profile.locality:8.3%}  "
          "(paper: < 0.1%)")
    print(f"  3D Gaussian splats: {gs_profile.locality:8.3%}  "
          "(paper: > 99%)")

    trace = pagerank.capture_trace()
    baseline = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    arc_hw = simulate_kernel(trace, RTX4090_SIM, ArcHW())
    arc_sw = simulate_kernel(trace, RTX4090_SIM, ArcSWSerialized(8))
    print(f"\nPagerank atomic kernel on {RTX4090_SIM.name}:")
    for result in (baseline, arc_hw, arc_sw):
        print(f"  {result.strategy:<12} {result.total_cycles:>12,.0f} cycles "
              f"({result.speedup_over(baseline):.3f}x)")
    print("\nARC's reduction path bypasses (no same-address groups), so the"
          "\nworkload keeps the baseline's behaviour instead of regressing.")

    change = arc_hw.speedup_over(baseline)
    assert 0.9 < change < 1.2, "ARC should be neutral on pagerank"
    assert np.isclose(ranks.sum(), 1.0, atol=1e-6)


if __name__ == "__main__":
    main()
