"""Will ARC help *your* workload?  Map its atomic character.

ARC's benefit is governed by two trace properties the paper identifies:
intra-warp locality (do a warp's lanes hit one address?) and thread
participation (how many lanes are active?).  This example sweeps synthetic
traces over both axes, prints the speedup surface, then locates three real
workloads on it -- a 3DGS scene (sweet spot), a histogram (middle), and
pagerank (no-help corner).  It also shows saving/loading captured traces.

Run:  python examples/characterize_your_workload.py
"""

import tempfile
from pathlib import Path

from repro import RTX3060_SIM, simulate_kernel
from repro.core import ArcHW, BaselineAtomic
from repro.experiments.sweeps import characterization_sweep
from repro.trace import load_trace, save_trace
from repro.trace.analysis import profile_trace
from repro.workloads import GaussianWorkload, HistogramWorkload, PagerankWorkload


def surface() -> None:
    print("ARC-HW speedup surface on 3060-Sim "
          "(rows: groups/warp, columns: mean active lanes)\n")
    actives = (4, 8, 16, 24, 31)
    points = characterization_sweep(
        RTX3060_SIM, active_levels=actives, group_levels=(1, 2, 4, 8),
        n_batches=8000,
    )
    by_cell = {(p.groups_per_warp, p.mean_active): p for p in points}
    print("groups\\active " + "".join(f"{a:>8}" for a in actives))
    for groups in (1, 2, 4, 8):
        cells = "".join(
            f"{by_cell[(groups, float(a))].arc_hw_speedup:>7.2f}x"
            for a in actives
        )
        print(f"{groups:>12}  {cells}")
    print()


def locate(name: str, trace) -> None:
    profile = profile_trace(trace)
    baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    arc = simulate_kernel(trace, RTX3060_SIM, ArcHW())
    print(f"{name:<12} locality={profile.locality:>6.1%}  "
          f"active={profile.mean_active:>4.1f}  "
          f"ARC-HW speedup={arc.speedup_over(baseline):.2f}x")


def main() -> None:
    surface()

    print("Real workloads located on the surface:")
    gaussians = GaussianWorkload(
        key="char-3d", dataset="demo", description="x", n_gaussians=400,
        base_scale=0.15, extent=1.4, width=128, height=112, seed=9,
    )
    locate("3DGS", gaussians.capture_trace())
    locate("histogram", HistogramWorkload(
        n_elements=200_000, n_bins=64, smoothness=300, seed=1
    ).capture_trace())
    locate("pagerank", PagerankWorkload(
        n_nodes=5000, attachments=4, seed=2
    ).capture_trace())

    # Captured traces serialize to .npz for replay without the renderer.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(gaussians.capture_trace(), Path(tmp) / "3dgs")
        reloaded = load_trace(path)
        print(f"\nsaved + reloaded trace: {reloaded.n_batches:,} batches, "
              f"{path.stat().st_size / 1024:.0f} KiB on disk")


if __name__ == "__main__":
    main()
