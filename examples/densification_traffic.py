"""Densification grows atomic traffic -- why the bottleneck compounds.

Real 3DGS training densifies the scene (split/clone/prune), growing from
thousands to millions of Gaussians; the paper notes the gradient step's
share of training time *increases* with scene size and complexity.  This
example trains a small scene with adaptive density control and tracks how
the gradient kernel's atomic traffic -- and ARC's advantage -- grow as the
scene densifies.

Run:  python examples/densification_traffic.py
"""

from repro import RTX3060_SIM, simulate_kernel
from repro.core import ArcSWButterfly, BaselineAtomic
from repro.render import Adam, DensificationController, GaussianRenderer
from repro.render.camera import orbit_cameras
from repro.render.gaussians import GaussianScene
from repro.workloads.scenes import clustered_gaussian_scene


def atomic_traffic(renderer, camera, target):
    """One backward pass's trace, plus baseline/ARC cycle counts."""
    context = renderer.forward(camera)
    result = renderer.backward(camera, context, target, capture_trace=True)
    trace = result.trace
    baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    arc = simulate_kernel(trace, RTX3060_SIM, ArcSWButterfly(8))
    return trace, baseline, arc


def main() -> None:
    reference = clustered_gaussian_scene(300, seed=6, base_scale=0.09)
    cameras = orbit_cameras(8, radius=3.0, width=96, height=96)
    targets = [GaussianRenderer(reference).render(c) for c in cameras]

    scene = GaussianScene.random(60, seed=7, base_scale=0.14)
    controller = DensificationController(
        grad_threshold=5e-7, scale_threshold=0.10, seed=8
    )
    optimizer = Adam(lr=0.01)
    renderer = GaussianRenderer(scene)

    print(f"{'iter':>4} {'gaussians':>9} {'lane-ops':>10} "
          f"{'baseline cyc':>12} {'ARC speedup':>11}")
    for iteration in range(60):
        camera = cameras[iteration % len(cameras)]
        target = targets[iteration % len(cameras)]
        context = renderer.forward(camera)
        result = renderer.backward(camera, context, target)
        optimizer.step(scene.parameters(), result.gradients)
        controller.accumulate(result.gradients)

        if iteration % 20 == 19:
            trace, baseline, arc = atomic_traffic(renderer, camera, target)
            print(f"{iteration + 1:>4} {len(scene):>9,} "
                  f"{trace.total_lane_ops:>10,} "
                  f"{baseline.total_cycles:>12,.0f} "
                  f"{arc.speedup_over(baseline):>10.2f}x")
            scene, stats = controller.densify(scene)
            renderer = GaussianRenderer(scene)
            optimizer = Adam(lr=0.01)  # optimizer state reset after resize
            print(f"     densify: +{stats.cloned} cloned, "
                  f"{stats.split} split, -{stats.pruned} pruned "
                  f"-> {stats.n_after:,} gaussians")

    print("\nAs densification grows the scene, atomic traffic grows with "
          "it\n-- the paper's motivation for attacking the atomic pipeline.")


if __name__ == "__main__":
    main()
