"""Compare every atomic strategy from the paper's evaluation on one trace.

Runs the ``atomicAdd`` baseline, ARC-HW, both ARC-SW variants, CCCL-style
warp reduction, LAB / LAB-ideal and PHI on one 3DGS gradient kernel, on
both simulated GPUs -- a one-screen version of the paper's Figures 18/19
plus stall and energy columns (Figures 20/21/27/28).

Run:  python examples/compare_strategies.py
"""

from repro import RTX3060_SIM, RTX4090_SIM, simulate_kernel
from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.workloads import GaussianWorkload

STRATEGIES = [
    BaselineAtomic(),
    ArcHW(),
    ArcSWButterfly(8),
    ArcSWSerialized(8),
    CCCLReduce(),
    LAB(),
    LABIdeal(),
    PHI(),
]


def main() -> None:
    # Sized so the launch fills both simulated GPUs (the paper's scenes
    # are full-resolution; tiny launches underutilize the 4090).
    workload = GaussianWorkload(
        key="compare", dataset="demo", description="Gaussian scene",
        n_gaussians=700, base_scale=0.14, extent=1.6,
        width=160, height=128, trace_views=2, seed=4,
    )
    trace = workload.capture_trace()
    print(f"Trace: {trace.n_batches:,} warp batches, "
          f"{trace.total_lane_ops:,} atomic lane-ops\n")

    for config in (RTX4090_SIM, RTX3060_SIM):
        baseline = simulate_kernel(trace, config, BaselineAtomic())
        base_energy = baseline.energy_joules(config)
        print(f"=== {config.name} "
              f"({config.num_sms} SMs, {config.num_rops} ROPs) ===")
        print(f"  {'strategy':<12} {'speedup':>8} {'ROP ops':>12} "
              f"{'stalls/instr':>12} {'energy red.':>11}")
        for strategy in STRATEGIES:
            result = simulate_kernel(trace, config, strategy)
            energy_reduction = base_energy / result.energy_joules(config)
            print(
                f"  {strategy.name:<12} "
                f"{result.speedup_over(baseline):>7.2f}x "
                f"{result.rop_ops:>12,} "
                f"{result.stalls_per_instruction:>12.2f} "
                f"{energy_reduction:>10.2f}x"
            )
        print()


if __name__ == "__main__":
    main()
