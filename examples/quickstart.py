"""Quickstart: accelerate one gradient kernel with ARC.

Builds a small 3D Gaussian Splatting scene, captures the warp-level atomic
trace of its gradient-computation kernel (the paper's Figure 5 kernel),
and replays it on a simulated GPU under the ``atomicAdd`` baseline
and both ARC implementations.

Run:  python examples/quickstart.py
"""

# Demo scenes are small (a 96x96 image is only 36 tile blocks), which
# underfills the RTX 4090's 512 sub-cores; the RTX 3060 matches the
# launch size, as the paper's full-resolution scenes match the 4090.
from repro import RTX3060_SIM, simulate_kernel
from repro.core import ArcHW, ArcSWButterfly, BaselineAtomic
from repro.trace.analysis import profile_trace
from repro.workloads import GaussianWorkload


def main() -> None:
    # A scaled-down 3DGS workload: a clustered Gaussian scene whose
    # backward pass really computes gradients (and emits the trace).
    workload = GaussianWorkload(
        key="quickstart",
        dataset="demo",
        description="small Gaussian scene",
        n_gaussians=500,
        base_scale=0.14,
        extent=1.5,
        width=96,
        height=96,
        seed=1,
    )
    trace = workload.capture_trace()

    profile = profile_trace(trace)
    print("Gradient-kernel atomic trace")
    print(f"  warp batches:        {profile.n_batches:,}")
    print(f"  atomic lane-ops:     {profile.lane_ops:,}")
    print(f"  intra-warp locality: {profile.locality:.1%} "
          "(warps whose active lanes share one address; paper Obs. 1)")
    print(f"  mean active lanes:   {profile.mean_active:.1f} / 32 "
          "(paper Obs. 2)")
    print()

    baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    arc_sw = simulate_kernel(trace, RTX3060_SIM, ArcSWButterfly(8))
    arc_hw = simulate_kernel(trace, RTX3060_SIM, ArcHW())

    print(f"Simulated gradient kernel on {RTX3060_SIM.name}")
    header = f"  {'strategy':<12} {'cycles':>12} {'ROP ops':>12} {'speedup':>8}"
    print(header)
    for result in (baseline, arc_sw, arc_hw):
        print(
            f"  {result.strategy:<12} {result.total_cycles:>12,.0f} "
            f"{result.rop_ops:>12,} "
            f"{result.speedup_over(baseline):>7.2f}x"
        )
    lsu = baseline.stall_breakdown()["lsu_stall"]
    print(f"\nBaseline sub-core time stalled on the LSU: {lsu:.0%} "
          "(the paper's atomic bottleneck)")


if __name__ == "__main__":
    main()
