"""Train a 3D Gaussian scene end to end and time every pipeline phase.

Reproduces the paper's Figure 2/3 training loop on the 3DGS substrate:
render, L1 loss, backward, Adam step -- and reports reconstruction quality
(PSNR) before and after, plus the simulated per-phase time breakdown
(Figure 4) and the end-to-end speedup ARC-SW delivers (Figure 22's
"end-to-end" bars).

Run:  python examples/train_gaussian_scene.py
"""

# Demo scenes are small (a 96x96 image is only 36 tile blocks), which
# underfills the RTX 4090's 512 sub-cores; the RTX 3060 matches the
# launch size, as the paper's full-resolution scenes match the 4090.
from repro import RTX3060_SIM, simulate_kernel
from repro.core import ArcSWButterfly, BaselineAtomic
from repro.profiling import training_breakdown
from repro.workloads import GaussianWorkload


def main() -> None:
    workload = GaussianWorkload(
        key="train-demo",
        dataset="demo",
        description="trainable Gaussian scene",
        n_gaussians=400,
        base_scale=0.15,
        extent=1.2,
        width=96,
        height=96,
        seed=3,
    )

    print("Training 400 Gaussians from 12 views (L1 loss, Adam)...")
    report = workload.train(iterations=60)
    print(f"  loss: {report.losses[0]:.4f} -> {report.final_loss:.4f}")
    print(f"  PSNR: {report.psnr_start:.2f} dB -> {report.psnr_end:.2f} dB")
    print(f"  wall time: {report.wall_seconds:.1f} s "
          f"({report.iterations} iterations)")
    print()

    # Per-phase timing of one training iteration on the simulated GPU.
    trace = workload.capture_trace()
    outcome = workload.iteration(0)
    breakdown = training_breakdown(
        trace,
        forward_pairs=outcome.forward_pairs,
        n_pixels=outcome.n_pixels,
        config=RTX3060_SIM,
        launches=workload.trace_views,
    )
    fractions = breakdown.fractions
    print(f"Training-time breakdown on {RTX3060_SIM.name} (paper Fig. 4):")
    print(f"  forward  {fractions['forward']:6.1%}")
    print(f"  loss     {fractions['loss']:6.1%}")
    print(f"  gradient {fractions['grad']:6.1%}  <- the atomic bottleneck")
    print()

    baseline = simulate_kernel(trace, RTX3060_SIM, BaselineAtomic())
    arc = simulate_kernel(trace, RTX3060_SIM, ArcSWButterfly(8))
    grad_speedup = arc.speedup_over(baseline)
    e2e = breakdown.end_to_end_speedup(grad_speedup)
    print(f"ARC-SW (butterfly, threshold 8):")
    print(f"  gradient-kernel speedup: {grad_speedup:.2f}x")
    print(f"  end-to-end speedup:      {e2e:.2f}x (paper Fig. 22)")


if __name__ == "__main__":
    main()
