"""Generate EXPERIMENTS.md from the recorded benchmark results.

Run the benchmark harness first, then this script:

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_experiments_md.py

The script reads ``benchmarks/results/*.json`` and writes a
paper-vs-measured record for every table and figure to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from statistics import mean

RESULTS = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "EXPERIMENTS.md"


def load(name):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def md_table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        cells = [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def section(parts, title, body):
    parts.append(f"\n## {title}\n")
    parts.append(body)


def fmt(x, suffix="x"):
    return f"{x:.2f}{suffix}"


def main() -> None:
    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every table and figure of the ARC paper's evaluation, regenerated",
        "by `pytest benchmarks/ --benchmark-only` on the simulated substrate",
        "(see DESIGN.md for the substitutions). Absolute numbers are not",
        "expected to match a real RTX 4090/3060 testbed; the comparisons",
        "below record whether the paper's *shape* — who wins, by roughly",
        "what factor, where the crossovers fall — holds. Raw data:",
        "`benchmarks/results/*.json`.",
    ]

    missing = []

    # Table 1 / Table 2 -------------------------------------------------
    t1 = load("table1_configs")
    if t1:
        section(
            parts, "Table 1 — simulated GPU configurations",
            "Paper: 4090-Sim (128 SMs, 176 ROPs, 2.24 GHz, 72 MB L2), "
            "3060-Sim (28 SMs, 48 ROPs, 1.32 GHz, 3 MB L2).\n\n"
            + md_table(
                ["config", "SMs", "ROPs", "clock", "L2"],
                [[r[0], r[1], r[3], r[4], r[7]] for r in t1],
            )
            + "\n\n**Match: exact** (configuration constants).",
        )
    else:
        missing.append("table1")

    t2 = load("table2_workloads")
    if t2:
        section(
            parts, "Table 2 — workloads and datasets",
            "All 12 application x dataset rows are reproduced with "
            "procedural stand-ins of matching relative scale:\n\n"
            + md_table(
                ["key", "application", "dataset (synthetic stand-in)",
                 "resolution"],
                [r[:4] for r in t2],
            ),
        )

    # Figure 4 -----------------------------------------------------------
    f4 = load("fig04_breakdown")
    if f4:
        rows_4090 = [r for r in f4 if r[0] == "4090-Sim"]
        grad = [r[4] for r in rows_4090]
        body = (
            "Paper: gradient computation takes 44% of training time on "
            "average on the 4090 (up to 66%), worst for 3D-PR/3D-DR.\n\n"
            + md_table(
                ["workload", "forward", "loss", "grad"],
                [[r[1], r[2], r[3], r[4]] for r in rows_4090],
            )
            + f"\n\nMeasured 4090-Sim gradient share: mean "
            f"**{mean(grad):.0%}** (paper 44%), max **{max(grad):.0%}** "
            "(paper 66%). 3DGS > Pulsar > NvDiffRec ordering holds."
        )
        section(parts, "Figure 4 — training-time breakdown", body)
    else:
        missing.append("fig04")

    # Observations -------------------------------------------------------
    obs1 = load("obs1_locality")
    if obs1:
        three_d = [v for k, v in obs1 if k.startswith(("3D", "PS"))]
        nv = [v for k, v in obs1 if k.startswith("NV")]
        section(
            parts, "§3.1 Observation 1 — intra-warp locality",
            "Paper: >99% of warps have all active threads updating one "
            f"address (3DGS). Measured: 3DGS/Pulsar mean "
            f"**{mean(three_d):.1%}**, NvDiffRec mean **{mean(nv):.1%}** "
            "(scattered texels, as §7.2 describes).",
        )

    f7 = load("fig07_active_histograms")
    if f7:
        lines = []
        for key, histogram in f7.items():
            nonzero = [i for i, v in enumerate(histogram) if v and i > 0]
            lines.append(
                f"* `{key}`: active-lane counts span {min(nonzero)}–"
                f"{max(nonzero)} with {len(nonzero)} distinct populated "
                "bins."
            )
        section(
            parts, "Figure 7 — active threads per warp",
            "Paper: wide, log-scale variation in participating threads "
            "per warp.\n\n" + "\n".join(lines),
        )

    # Figure 8 -----------------------------------------------------------
    f8 = load("fig08_stalls")
    if f8:
        lsu_4090 = [r[2] for r in f8 if r[0] == "4090-Sim"]
        lsu_3060 = [r[2] for r in f8 if r[0] == "3060-Sim"]
        section(
            parts, "Figure 8 — baseline warp-stall breakdown",
            "Paper: LSU stalls are >60% of stalls on average; the 4090 "
            "stalls more than the 3060. Measured LSU share: 4090-Sim "
            f"**{mean(lsu_4090):.0%}**, 3060-Sim **{mean(lsu_3060):.0%}**. "
            "Shape holds.",
        )

    # Figures 18/19 -------------------------------------------------------
    for name, gpu, paper in (
        ("fig18_arc_hw_3060", "3060-Sim",
         "ARC-HW 1.73x avg (≤3.77x), LAB-ideal 1.20x, PHI 1.03x"),
        ("fig19_arc_hw_4090", "4090-Sim",
         "ARC-HW 2.06x avg (≤8.59x), LAB-ideal 1.40x, PHI 1.01x"),
    ):
        data = load(name)
        if not data:
            missing.append(name)
            continue
        means = [mean(r[i] for r in data) for i in (1, 2, 3, 4)]
        peak = max(r[1] for r in data)
        body = (
            f"Paper ({gpu}): {paper}.\n\n"
            + md_table(["workload", "ARC-HW", "LAB", "LAB-ideal", "PHI"],
                       data)
            + f"\n\nMeasured means — ARC-HW **{fmt(means[0])}** "
            f"(max {fmt(peak)}), LAB {fmt(means[1])}, LAB-ideal "
            f"{fmt(means[2])}, PHI {fmt(means[3])}. Ordering "
            "ARC-HW > LAB-ideal ≥ LAB > PHI holds."
        )
        section(parts, f"Figure {'18' if '3060' in name else '19'} — "
                       f"ARC-HW vs buffering works, {gpu}", body)

    # Figures 20/21 -------------------------------------------------------
    for name, gpu, paper_hw in (
        ("fig20_stall_reduction_3060", "3060-Sim", "2.28x"),
        ("fig21_stall_reduction_4090", "4090-Sim", "2.43x"),
    ):
        data = load(name)
        if not data:
            missing.append(name)
            continue
        hw = mean(r[1] for r in data)
        labi = mean(r[3] for r in data)
        section(
            parts,
            f"Figure {'20' if '3060' in name else '21'} — atomic-stall "
            f"reduction, {gpu}",
            f"Paper: ARC-HW reduces shader atomic stalls by {paper_hw} "
            f"on average (LAB-ideal much less). Measured: ARC-HW "
            f"**{fmt(hw)}**, LAB-ideal {fmt(labi)}.",
        )

    # Figure 22 ------------------------------------------------------------
    f22 = load("fig22_arc_sw")
    if f22:
        out = []
        for gpu, paper_grad, paper_e2e in (
            ("4090-Sim", "2.44x avg (≤5.7x)", "1.41x (≤2.4x)"),
            ("3060-Sim", "1.74x avg (≤3.27x)", "1.21x (≤1.71x)"),
        ):
            rows = [r for r in f22 if r[0] == gpu]
            grad = [r[4] for r in rows]
            e2e = [r[5] for r in rows]
            out.append(
                f"* **{gpu}** — paper grad {paper_grad}, e2e {paper_e2e}; "
                f"measured grad **{fmt(mean(grad))} avg "
                f"(≤{fmt(max(grad))})**, e2e **{fmt(mean(e2e))} avg "
                f"(≤{fmt(max(e2e))})**."
            )
        body = (
            "\n".join(out)
            + "\n\nPer-workload (best balancing threshold):\n\n"
            + md_table(
                ["gpu", "workload", "SW-B", "SW-S", "best", "end-to-end"],
                [[r[0], r[1],
                  "n/a" if r[2] != r[2] else round(r[2], 2),
                  round(r[3], 2), round(r[4], 2), round(r[5], 2)]
                 for r in f22],
            )
            + "\n\nShapes held: larger speedups on the 4090; SW-B ≥ SW-S "
            "on 3DGS; Pulsar restricted to SW-S; 3D-PR/3D-DR among the "
            "largest; NV/PS end-to-end gains smallest."
        )
        section(parts, "Figure 22 — ARC-SW speedups", body)
    else:
        missing.append("fig22")

    # Figure 23 ------------------------------------------------------------
    f23 = load("fig23_threshold_sweep")
    if f23:
        thresholds = [0, 4, 8, 16, 24]
        best = {}
        for row in f23:
            key, variant, *speedups = row
            index = max(range(len(speedups)), key=speedups.__getitem__)
            best[(key, variant)] = thresholds[index]
        distinct = sorted(set(best.values()))
        body = (
            "Paper: the best threshold varies per workload; extremes lose; "
            "NV/PS can see slowdowns at SM-favoring settings.\n\n"
            + md_table(
                ["workload", "variant"] + [f"X={x}" for x in thresholds],
                [[r[0], r[1]] + [round(v, 2) for v in r[2:]] for r in f23],
            )
            + f"\n\nBest thresholds span **{distinct}** across workloads; "
            "sub-1.0 entries appear only for NV/PS, as in the paper."
        )
        section(parts, "Figure 23 — balancing-threshold sensitivity", body)

    # Figures 24/25/26 ------------------------------------------------------
    f24 = load("fig24_stalls_arcsw")
    if f24:
        base = mean(r[2] for r in f24)
        arc = mean(r[3] for r in f24)
        section(
            parts, "Figure 24 — stall elimination with ARC-SW",
            "Paper: mean warp stalls per instruction fall from 38.3 to "
            f"10.3 cycles. Measured: **{base:.2f} → {arc:.2f}** "
            f"cycles/instruction ({base / max(arc, 1e-9):.1f}x fewer; the "
            "simulator's absolute stall magnitudes are smaller, the "
            "elimination is stronger).",
        )

    f25 = load("fig25_hw_vs_sw")
    if f25:
        r4090 = mean(r[2] for r in f25 if r[0] == "4090-Sim")
        r3060 = mean(r[2] for r in f25 if r[0] == "3060-Sim")
        section(
            parts, "Figure 25 — ARC-HW over ARC-SW",
            "Paper: 1.13x (4090-Sim) / 1.14x (3060-Sim) on average. "
            f"Measured: **{fmt(r4090)} / {fmt(r3060)}**.",
        )

    f26 = load("fig26_cccl")
    if f26:
        ratio = mean(r[1] / r[2] for r in f26)
        nv = [r[2] for r in f26 if r[0].startswith("NV")]
        section(
            parts, "Figure 26 — ARC-SW vs CCCL",
            "Paper: ARC-SW 1.58x over CCCL on average; CCCL marginal on "
            f"NvDiff. Measured: ARC-SW/CCCL **{fmt(ratio)}** on average; "
            f"CCCL on NV workloads {', '.join(fmt(v) for v in nv)} "
            "(≈1.0, as the paper reports). The mean ratio is lower than "
            "the paper's because our CCCL is granted the same zero-padding "
            "transform ARC-SW uses on the 3DGS kernels.",
        )

    # Figures 27/28 ---------------------------------------------------------
    f27 = load("fig27_28_energy")
    if f27:
        out = []
        for gpu, paper_sw, paper_hw in (
            ("4090-Sim", "2.8x", "3.9x"),
            ("3060-Sim", "1.7x", "2.55x"),
        ):
            rows = [r for r in f27 if r[0] == gpu]
            sw = mean(r[2] for r in rows)
            hw = mean(r[3] for r in rows)
            out.append(
                f"* **{gpu}** — paper ARC-SW {paper_sw}, ARC-HW {paper_hw}; "
                f"measured **{fmt(sw)} / {fmt(hw)}**."
            )
        section(parts, "Figures 27/28 — energy reduction", "\n".join(out))

    # §5.4 / §5.6 ------------------------------------------------------------
    s54 = load("sec54_area")
    if s54:
        fraction = [r for r in s54 if r[0] == "4090-Sim"][0][2]
        section(
            parts, "§5.4 — area overhead",
            f"Paper: 35.84M added transistors, ~0.047% of an RTX 4090. "
            f"Measured: **{fraction:.4%}** (same arithmetic, exact match).",
        )

    s56 = load("sec56_pagerank")
    if s56:
        loc = s56[0][1]
        hw = mean(r[2] for r in s56)
        section(
            parts, "§5.6 — pagerank counter-example",
            f"Paper: <0.1% of pagerank warps fully coalesced; ARC gives no "
            f"benefit and no harm. Measured: locality **{loc:.3%}**, "
            f"ARC-HW speedup **{fmt(hw)}** (neutral).",
        )

    # Ablations ---------------------------------------------------------------
    ablations = {
        "ablation_sm_rop_ratio": "SM:ROP ratio sweep — shrinking the ROP "
        "pool inflates the baseline monotonically and widens ARC's win "
        "(the §3.2 causal mechanism).",
        "ablation_scheduler_policy": "Scheduler policy — greedy matches "
        "always-reduce with the designed FPU and avoids its collapse "
        "(<0.5x) when the FPU is slow (§4.3's case for distribution).",
        "ablation_reduction_unit": "Reduction-unit cost — speedup degrades "
        "gracefully as the FPU slows; 1 cycle/value suffices (§5.1).",
        "ablation_lsu_depth": "LSU queue depth — deeper queues help "
        "latency but cannot remove the ROP throughput wall.",
        "ablation_dab": "DAB determinism tax — deterministic buffering "
        "costs >20% versus LAB, consistent with the §8 discussion.",
    }
    bodies = []
    for name, description in ablations.items():
        if load(name) is not None:
            bodies.append(f"* {description}")
    if bodies:
        section(
            parts, "Ablations (beyond the paper's figures)",
            "\n".join(bodies) + "\n\nData: `benchmarks/results/ablation_*"
            ".json`, harness: `benchmarks/test_ablations.py`.",
        )

    if missing:
        parts.append(
            "\n---\n*Figures not yet regenerated in this checkout: "
            + ", ".join(missing)
            + ". Run `pytest benchmarks/ --benchmark-only` first.*"
        )

    OUTPUT.write_text("\n".join(parts) + "\n")
    print(f"wrote {OUTPUT} ({OUTPUT.stat().st_size:,} bytes)")


if __name__ == "__main__":
    main()
