"""Figure 4: training-time breakdown (forward / loss / gradient).

Paper: on the RTX 4090 the gradient-computation step takes 44% of training
time on average (up to 66%); the share is largest for the big DB-COLMAP
scenes (3D-PR, 3D-DR) and smaller for NV and PS.
"""

from conftest import print_table

from repro.experiments import arithmetic_mean, get_trace, get_workload
from repro.gpu import SIMULATED_GPUS
from repro.profiling import training_breakdown


def breakdown_rows(workload_keys):
    rows = []
    for gpu in SIMULATED_GPUS.values():
        for key in workload_keys:
            workload = get_workload(key)
            trace = get_trace(key)
            pairs, pixels = workload.forward_stats()
            phase = training_breakdown(
                trace, forward_pairs=pairs, n_pixels=pixels, config=gpu,
                launches=workload.trace_views,
                loss_channel_cycles=workload.loss_channel_cycles,
            )
            fractions = phase.fractions
            rows.append(
                [gpu.name, key, fractions["forward"], fractions["loss"],
                 fractions["grad"]]
            )
    return rows


def test_fig04_training_breakdown(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        breakdown_rows, args=(workload_keys,), rounds=1, iterations=1
    )
    print_table(
        "Figure 4: training-time breakdown",
        ["gpu", "workload", "forward", "loss", "grad"],
        rows,
    )
    record("fig04_breakdown", rows)

    grad_4090 = {
        row[1]: row[4] for row in rows if row[0] == "4090-Sim"
    }
    # The gradient step is a significant bottleneck on average...
    mean_share = arithmetic_mean(grad_4090.values())
    assert 0.30 < mean_share < 0.75, mean_share
    # ...and every workload spends a nontrivial share in it.
    assert all(share > 0.10 for share in grad_4090.values())
    # The large photorealistic scenes are the worst (paper: PR/DR at
    # ~62-66%), exceeding the NV workloads.
    three_d = [v for k, v in grad_4090.items() if k.startswith("3D")]
    nv = [v for k, v in grad_4090.items() if k.startswith("NV")]
    if three_d and nv:
        assert arithmetic_mean(three_d) > arithmetic_mean(nv)
    if "3D-DR" in grad_4090 and "3D-LE" in grad_4090:
        assert grad_4090["3D-DR"] > grad_4090["3D-LE"]
