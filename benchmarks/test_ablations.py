"""Ablations of ARC's design choices (beyond the paper's figures).

These probe the design decisions DESIGN.md calls out:

* the SM:ROP ratio is the structural root of the atomic bottleneck (§3.2);
* ARC-HW's greedy scheduler beats both static extremes (§4.3 argues for
  distribution over always-reduce);
* a serial 1-value/cycle reduction FPU is enough (§5.1 chose a dedicated
  minimal FPU over re-engineering the 32-lane pipelines);
* deterministic buffering (DAB, §8) costs what the paper says it does.
"""

import dataclasses

import pytest
from conftest import print_table

from repro.core import DAB, LAB, ArcHW, BaselineAtomic
from repro.gpu import RTX4090_SIM, simulate_kernel
from repro.workloads import GaussianWorkload


@pytest.fixture(scope="module")
def trace():
    workload = GaussianWorkload(
        key="ablation", dataset="demo", description="ablation scene",
        n_gaussians=700, base_scale=0.14, extent=1.6,
        width=160, height=128, trace_views=2, seed=21,
    )
    return workload.capture_trace()


def test_ablation_sm_to_rop_ratio(benchmark, record, trace):
    """Fixing the SMs and shrinking the ROP pool must monotonically
    inflate the baseline and widen ARC's win -- the §3.2 causal claim."""

    def sweep():
        rows = []
        for num_rops, partitions in ((352, 16), (176, 16), (88, 8), (44, 4)):
            gpu = dataclasses.replace(
                RTX4090_SIM, name=f"4090x{num_rops}rops",
                num_rops=num_rops, num_partitions=partitions,
            )
            base = simulate_kernel(trace, gpu, BaselineAtomic())
            arc = simulate_kernel(trace, gpu, ArcHW())
            rows.append(
                [num_rops, gpu.sm_to_rop_ratio, base.total_cycles,
                 arc.speedup_over(base)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: SM:ROP ratio vs baseline cost and ARC-HW speedup",
        ["ROPs", "SM:ROP", "baseline cycles", "ARC-HW speedup"],
        rows,
    )
    record("ablation_sm_rop_ratio", rows)
    baselines = [row[2] for row in rows]
    speedups = [row[3] for row in rows]
    # Fewer ROPs -> monotonically slower baseline.
    assert all(b2 >= b1 for b1, b2 in zip(baselines, baselines[1:]))
    # ARC's win widens as ROPs get scarce (352 -> 88 ROPs)...
    assert speedups[2] > speedups[0] * 1.3
    # ...until the extreme where even ARC's aggregated transactions are
    # ROP-bound; the win shrinks but never vanishes.
    assert speedups[-1] > 1.5


def test_ablation_scheduler_policy(benchmark, record, trace):
    """Greedy distribution is robust where the static extremes are not
    (§4.3): with the paper's fast FPU it matches always-reduce; with a
    slow FPU, always-reduce collapses while greedy offloads to the ROPs.
    """

    def sweep():
        rows = []
        for label, gpu in (
            ("fast FPU", RTX4090_SIM),
            ("slow FPU", RTX4090_SIM.with_cost(reduction_unit_op=6.0)),
        ):
            base = simulate_kernel(trace, gpu, BaselineAtomic())
            for policy in ("never", "always", "greedy"):
                result = simulate_kernel(trace, gpu, ArcHW(policy=policy))
                rows.append(
                    [label, policy, result.speedup_over(base),
                     result.ru_values]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: ARC-HW scheduler policy on 4090-Sim",
        ["FPU", "policy", "speedup", "values reduced in SM"],
        rows,
    )
    record("ablation_scheduler_policy", rows)
    fast = {r[1]: r[2] for r in rows if r[0] == "fast FPU"}
    slow = {r[1]: r[2] for r in rows if r[0] == "slow FPU"}
    # With the designed FPU, greedy is within noise of the better extreme
    # and far above never-reduce.
    assert fast["greedy"] >= max(fast["always"], fast["never"]) * 0.95
    assert fast["greedy"] > fast["never"] * 1.2
    # "never" degenerates to the baseline path.
    assert fast["never"] == pytest.approx(1.0, abs=0.15)
    # With a slow FPU, static always-reduce queues on the reduction unit
    # and collapses; the greedy scheduler routes around it.
    assert slow["always"] < 0.5
    assert slow["greedy"] > 0.95


def test_ablation_reduction_unit_throughput(benchmark, record, trace):
    """A 1-cycle/value serial FPU suffices; slower FPUs erode the win but
    the scheduler compensates by shifting work back to the ROPs."""

    def sweep():
        rows = []
        for cycles_per_value in (0.5, 1.0, 2.0, 4.0):
            gpu = RTX4090_SIM.with_cost(reduction_unit_op=cycles_per_value)
            base = simulate_kernel(trace, gpu, BaselineAtomic())
            arc = simulate_kernel(trace, gpu, ArcHW())
            rows.append([cycles_per_value, arc.speedup_over(base)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: reduction-unit cost vs ARC-HW speedup (4090-Sim)",
        ["cycles/value", "ARC-HW speedup"],
        rows,
    )
    record("ablation_reduction_unit", rows)
    speedups = dict(rows)
    # Slowing the FPU beyond the designed 1 cycle/value erodes the win...
    assert speedups[1.0] > speedups[2.0] > speedups[4.0]
    # ...but never regresses below the baseline: the greedy scheduler
    # falls back to the ROPs rather than queueing on a slow FPU.
    assert speedups[4.0] > 1.2
    assert all(value > 1.0 for value in speedups.values())


def test_ablation_lsu_queue_depth(benchmark, record, trace):
    """Deeper LSU queues hide more ROP latency but cannot remove the
    throughput bottleneck: the baseline saturates."""

    def sweep():
        rows = []
        for depth in (4, 16, 64, 256):
            gpu = dataclasses.replace(RTX4090_SIM, lsu_queue_depth=depth)
            base = simulate_kernel(trace, gpu, BaselineAtomic())
            rows.append([depth, base.total_cycles])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: LSU queue depth vs baseline cycles (4090-Sim)",
        ["depth", "baseline cycles"],
        rows,
    )
    record("ablation_lsu_depth", rows)
    cycles = [row[1] for row in rows]
    assert all(c2 <= c1 * 1.005 for c1, c2 in zip(cycles, cycles[1:]))
    # Diminishing returns: quadrupling 64 -> 256 moves little.
    shallow_gain = cycles[0] / cycles[1]
    deep_gain = cycles[2] / cycles[3]
    assert shallow_gain > deep_gain * 0.999
    assert deep_gain < 1.2


def test_ablation_dab_determinism_tax(benchmark, record, trace):
    """Deterministic buffering (DAB, §8) pays a measurable tax over LAB;
    the paper cites >20% slowdowns versus non-deterministic baselines."""

    def measure():
        base = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
        lab = simulate_kernel(trace, RTX4090_SIM, LAB())
        dab = simulate_kernel(trace, RTX4090_SIM, DAB())
        return [
            ["LAB", lab.speedup_over(base)],
            ["DAB", dab.speedup_over(base)],
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Ablation: deterministic (DAB) vs best-effort (LAB) buffering",
        ["strategy", "speedup over baseline"],
        rows,
    )
    record("ablation_dab", rows)
    by_name = dict(rows)
    assert by_name["DAB"] < by_name["LAB"]
    # Determinism costs at least ~20% relative to LAB.
    assert by_name["DAB"] < by_name["LAB"] * 0.85
