"""Telemetry must be free when off and cheap when on.

The engine's instrumentation contract (ISSUE 5): with ``telemetry=None``
every probe is a single predicate test, so the uninstrumented hot path
stays within measurement noise of the pre-telemetry engine.  This
micro-benchmark times the same cell with the collector absent and
attached and records both, keeping the off-path honest release over
release.
"""

from __future__ import annotations

import statistics
import time

from conftest import print_table

from repro.experiments.runner import make_strategy
from repro.gpu import SIMULATED_GPUS, Telemetry
from repro.gpu.engine import simulate_kernel

from repro.trace import mixed_locality_trace

ROUNDS = 9


def median_runtime(trace, gpu, strategy_name, with_telemetry):
    times = []
    for _ in range(ROUNDS):
        telemetry = Telemetry() if with_telemetry else None
        started = time.perf_counter()
        simulate_kernel(trace, gpu, make_strategy(strategy_name),
                        telemetry=telemetry)
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def test_telemetry_off_costs_nothing(record):
    trace = mixed_locality_trace(n_batches=400, num_params=4, seed=21)
    gpu = SIMULATED_GPUS["3060-Sim"]

    rows = []
    for strategy_name in ("baseline", "ARC-HW"):
        # Warm-up excludes one-time import and allocation effects.
        median_runtime(trace, gpu, strategy_name, with_telemetry=False)
        off = median_runtime(trace, gpu, strategy_name,
                             with_telemetry=False)
        on = median_runtime(trace, gpu, strategy_name, with_telemetry=True)
        rows.append([strategy_name, off * 1e3, on * 1e3, on / off - 1.0])

    print_table(
        "Telemetry overhead (median of "
        f"{ROUNDS} runs, {trace.n_batches}-batch mixed-locality kernel)",
        ["strategy", "off ms", "on ms", "on overhead"],
        rows,
    )
    record("telemetry_overhead", rows)

    for strategy_name, off_ms, on_ms, _overhead in rows:
        # The off path does strictly less work than the on path, so it
        # must not measure meaningfully slower; the generous margin only
        # absorbs scheduler noise, not a real regression.
        assert off_ms <= on_ms * 1.25, strategy_name

    # The instrumented run must actually have recorded something (guards
    # against the benchmark silently measuring two off-paths).
    telemetry = Telemetry()
    simulate_kernel(trace, gpu, make_strategy("baseline"),
                    telemetry=telemetry)
    assert len(telemetry.spans) >= trace.n_batches
