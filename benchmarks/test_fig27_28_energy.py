"""Figures 27 & 28: energy reduction with ARC-SW and ARC-HW.

Paper: ARC-SW reduces gradient-computation energy by 2.8x (4090) and 1.7x
(3060); ARC-HW by 3.9x (4090-Sim) and 2.55x (3060-Sim).  The savings come
from shorter execution and far fewer interconnect/ROP transactions.
"""

from conftest import print_table

from repro.experiments import (
    arithmetic_mean,
    best_sw_result,
    get_result,
    get_trace,
)
from repro.gpu import SIMULATED_GPUS


def best_sw(key, gpu):
    variants = ["S"] + (["B"] if get_trace(key).bfly_eligible else [])
    return min(
        (best_sw_result(key, gpu, variant) for variant in variants),
        key=lambda result: result.total_cycles,
    )


def energy_rows(workload_keys):
    rows = []
    for gpu in SIMULATED_GPUS.values():
        for key in workload_keys:
            base = get_result(key, gpu, "baseline").energy_joules(gpu)
            sw = best_sw(key, gpu).energy_joules(gpu)
            hw = get_result(key, gpu, "ARC-HW").energy_joules(gpu)
            rows.append([gpu.name, key, base / sw, base / hw])
    return rows


def test_fig27_28_energy_reduction(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        energy_rows, args=(workload_keys,), rounds=1, iterations=1
    )
    print_table(
        "Figures 27/28: gradient-computation energy reduction",
        ["gpu", "workload", "ARC-SW", "ARC-HW"],
        rows,
    )
    record("fig27_28_energy", rows)

    for gpu in ("4090-Sim", "3060-Sim"):
        sw = [row[2] for row in rows if row[0] == gpu]
        hw = [row[3] for row in rows if row[0] == gpu]
        # Both implementations save energy on average; ARC-HW saves more
        # (no shuffle instructions, fewer redundant ops).
        assert arithmetic_mean(sw) > 1.2, (gpu, sw)
        assert arithmetic_mean(hw) > arithmetic_mean(sw) * 0.95, gpu
        assert all(value > 0.9 for value in sw + hw), (gpu, sw, hw)

    sw_4090 = arithmetic_mean(r[2] for r in rows if r[0] == "4090-Sim")
    sw_3060 = arithmetic_mean(r[2] for r in rows if r[0] == "3060-Sim")
    hw_4090 = arithmetic_mean(r[3] for r in rows if r[0] == "4090-Sim")
    hw_3060 = arithmetic_mean(r[3] for r in rows if r[0] == "3060-Sim")
    # Larger reductions on the 4090, as for the speedups.
    assert sw_4090 > sw_3060
    assert hw_4090 > hw_3060
    print(
        f"\nmean energy reduction -- ARC-SW: {sw_4090:.2f}x/{sw_3060:.2f}x "
        f"(paper 2.8x/1.7x), ARC-HW: {hw_4090:.2f}x/{hw_3060:.2f}x "
        f"(paper 3.9x/2.55x)"
    )
