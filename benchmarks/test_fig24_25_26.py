"""Figures 24, 25 and 26: ARC-SW stall elimination, ARC-HW vs ARC-SW, and
the CCCL comparison.

Paper:
  Fig 24 -- ARC-SW cuts mean warp stalls per instruction from 38.3 to 10.3
  cycles by removing LSU stalls.
  Fig 25 -- ARC-HW outperforms ARC-SW by 1.13x avg (4090-Sim) and 1.14x
  (3060-Sim), up to ~1.3x.
  Fig 26 -- ARC-SW beats the CCCL library by 1.58x avg on the 4090;
  CCCL yields only marginal improvements on the NvDiff workloads.
"""

from conftest import print_table

from repro.experiments import (
    arithmetic_mean,
    best_sw_result,
    get_result,
    get_trace,
)


def best_sw(key, gpu):
    variants = ["S"] + (["B"] if get_trace(key).bfly_eligible else [])
    return min(
        (best_sw_result(key, gpu, variant) for variant in variants),
        key=lambda result: result.total_cycles,
    )


def test_fig24_arc_sw_stall_elimination(benchmark, record, workload_keys):
    def measure():
        rows = []
        for gpu in ("4090-Sim", "3060-Sim"):
            for key in workload_keys:
                baseline = get_result(key, gpu, "baseline")
                arc = best_sw(key, gpu)
                rows.append(
                    [gpu, key, baseline.stalls_per_instruction,
                     arc.stalls_per_instruction]
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Figure 24: warp stalls per instruction, baseline vs ARC-SW",
        ["gpu", "workload", "baseline", "ARC-SW"],
        rows,
    )
    record("fig24_stalls_arcsw", rows)
    base_mean = arithmetic_mean(row[2] for row in rows)
    arc_mean = arithmetic_mean(row[3] for row in rows)
    # Significantly fewer stalls per instruction (paper: 38.3 -> 10.3).
    assert arc_mean < base_mean / 2.0, (base_mean, arc_mean)
    print(f"\nmean stalls/instr: baseline {base_mean:.2f} -> "
          f"ARC-SW {arc_mean:.2f} (paper: 38.3 -> 10.3)")


def test_fig25_arc_hw_over_arc_sw(benchmark, record, workload_keys):
    def measure():
        rows = []
        for gpu in ("4090-Sim", "3060-Sim"):
            for key in workload_keys:
                hw = get_result(key, gpu, "ARC-HW")
                sw = best_sw(key, gpu)
                rows.append([gpu, key, hw.speedup_over(sw)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Figure 25: ARC-HW speedup normalized to ARC-SW",
        ["gpu", "workload", "HW / SW"],
        rows,
    )
    record("fig25_hw_vs_sw", rows)
    for gpu in ("4090-Sim", "3060-Sim"):
        ratios = [row[2] for row in rows if row[0] == gpu]
        mean = arithmetic_mean(ratios)
        # ARC-HW consistently outperforms ARC-SW (paper: 1.13-1.14x avg)
        # by avoiding instruction/control-flow overheads.
        assert 1.0 < mean < 2.2, (gpu, mean)
        assert arithmetic_mean(r >= 0.98 for r in ratios) > 0.8, (gpu, ratios)
        print(f"{gpu}: mean ARC-HW/ARC-SW = {mean:.2f} (paper ~1.13x)")


def test_fig26_arc_sw_vs_cccl(benchmark, record, workload_keys):
    def measure():
        rows = []
        for key in workload_keys:
            baseline = get_result(key, "4090-Sim", "baseline")
            arc = best_sw(key, "4090-Sim")
            cccl = get_result(key, "4090-Sim", "CCCL")
            rows.append(
                [key, arc.speedup_over(baseline),
                 cccl.speedup_over(baseline)]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Figure 26: ARC-SW vs CCCL on 4090-Sim (normalized to baseline)",
        ["workload", "ARC-SW", "CCCL"],
        rows,
    )
    record("fig26_cccl", rows)

    # ARC-SW outperforms CCCL on every workload...
    for key, arc, cccl in rows:
        assert arc >= cccl * 0.98, (key, arc, cccl)
    ratio = arithmetic_mean(arc / cccl for _, arc, cccl in rows)
    assert ratio > 1.1, ratio
    # ...and CCCL yields only marginal gains on NvDiff (many inactive
    # threads / scattered texels leave it no full warps to reduce).
    nv = [(key, cccl) for key, _, cccl in rows if key.startswith("NV")]
    for key, cccl in nv:
        assert cccl < 1.15, (key, cccl)
    print(f"\nmean ARC-SW/CCCL = {ratio:.2f} (paper 1.58x)")
