"""Figure 23: sensitivity of ARC-SW to the balancing threshold X.

Paper: the best threshold varies across workloads; extreme values (all-SM
or all-ROP) lose to balanced ones for most workloads; for NV and PS,
sub-optimal thresholds can cause outright slowdowns, and ROP-favoring
thresholds should be chosen.
"""

from conftest import print_table

from repro.experiments import SWEEP_THRESHOLDS, get_result, get_trace


def sweep_rows(workload_keys, gpu="4090-Sim"):
    rows = []
    for key in workload_keys:
        trace = get_trace(key)
        baseline = get_result(key, gpu, "baseline")
        variants = ["S"] + (["B"] if trace.bfly_eligible else [])
        for variant in variants:
            speedups = [
                get_result(key, gpu, f"ARC-SW-{variant}-{x}").speedup_over(
                    baseline
                )
                for x in SWEEP_THRESHOLDS
            ]
            rows.append([key, f"SW-{variant}", *speedups])
    return rows


def test_fig23_threshold_sensitivity(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        sweep_rows, args=(workload_keys,), rounds=1, iterations=1
    )
    print_table(
        "Figure 23: speedup vs balancing threshold X on 4090-Sim",
        ["workload", "variant", *[f"X={x}" for x in SWEEP_THRESHOLDS]],
        rows,
    )
    record("fig23_threshold_sweep", rows)

    best_thresholds = {}
    for row in rows:
        key, variant, *speedups = row
        best_index = max(range(len(speedups)), key=speedups.__getitem__)
        best_thresholds[(key, variant)] = SWEEP_THRESHOLDS[best_index]
        # The threshold matters: the spread between best and worst setting
        # is measurable for every workload ("significantly impacts
        # speedups", §5.5.3).
        assert max(speedups) > min(speedups), row

    # The best threshold is not one global constant (paper obs. 1).
    assert len(set(best_thresholds.values())) > 1, best_thresholds

    # Pulsar prefers ROP-favoring (higher) thresholds (paper obs. 2).
    for row in rows:
        key, variant, *speedups = row
        if key.startswith("PS") and variant == "SW-S":
            by_threshold = dict(zip(SWEEP_THRESHOLDS, speedups))
            assert by_threshold[24] >= by_threshold[0], row

    # ...and for NV/PS a sub-optimal threshold can cause an outright
    # slowdown (paper obs. 2), unlike the robust 3DGS workloads.
    nv_ps_minima = [
        min(row[2:]) for row in rows if row[0].startswith(("NV", "PS"))
    ]
    if nv_ps_minima:
        assert min(nv_ps_minima) < 1.05, nv_ps_minima
