"""Tables 1 and 2: simulated GPU configurations and the workload registry."""

from conftest import print_table

from repro.gpu import SIMULATED_GPUS
from repro.workloads import WORKLOAD_KEYS, load_workload


def test_table1_gpu_configurations(benchmark, record):
    def build():
        return [
            [
                gpu.name, gpu.num_sms, gpu.registers_per_sm, gpu.num_rops,
                f"{gpu.clock_ghz}GHz", gpu.subcores_per_sm,
                f"{gpu.l1_kib_per_sm}KB", f"{gpu.l2_mib}MB",
                gpu.dram_channels, gpu.dram_gib,
            ]
            for gpu in SIMULATED_GPUS.values()
        ]

    rows = benchmark(build)
    print_table(
        "Table 1: simulated GPU configurations",
        ["config", "SMs", "regs/SM", "ROPs", "clock", "sub-cores",
         "L1/SM", "L2", "DRAM ch", "GB"],
        rows,
    )
    record("table1_configs", rows)
    by_name = {row[0]: row for row in rows}
    assert by_name["4090-Sim"][1] == 128 and by_name["4090-Sim"][3] == 176
    assert by_name["3060-Sim"][1] == 28 and by_name["3060-Sim"][3] == 48


def test_table2_workload_registry(benchmark, record):
    def build():
        return [
            [w.key, w.app, w.dataset, f"{w.width}x{w.height}",
             "yes" if w.bfly_eligible else "no"]
            for w in (load_workload(key) for key in WORKLOAD_KEYS)
        ]

    rows = benchmark(build)
    print_table(
        "Table 2: workloads and datasets",
        ["key", "application", "dataset", "resolution", "SW-B eligible"],
        rows,
    )
    record("table2_workloads", rows)
    assert len(rows) == 12
    apps = {row[1] for row in rows}
    assert apps == {"3DGS", "NvDiffRec", "Pulsar"}
    # Pulsar kernels cannot use butterfly reduction (§7.2).
    assert all(row[4] == "no" for row in rows if row[0].startswith("PS"))
