"""Figure 8: baseline warp-stall breakdown on both GPUs.

Paper: LSU stalls contribute over 60% of all stalls on average, and the
RTX 4090 stalls more than the RTX 3060 because its SM:ROP ratio is worse.
"""

from conftest import print_table

from repro.experiments import arithmetic_mean, get_result
from repro.gpu import SIMULATED_GPUS
from repro.profiling import stall_report


def test_fig08_baseline_stall_breakdown(benchmark, record, workload_keys):
    def measure():
        rows = []
        for gpu in SIMULATED_GPUS.values():
            for key in workload_keys:
                report = stall_report(get_result(key, gpu, "baseline"))
                rows.append(
                    [gpu.name, key, report.lsu_fraction,
                     report.breakdown["compute"] + report.breakdown["issue"],
                     report.stalls_per_instruction]
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Figure 8: baseline warp stalls",
        ["gpu", "workload", "lsu stall frac", "busy frac", "stalls/instr"],
        rows,
    )
    record("fig08_stalls", rows)

    lsu_4090 = [r[2] for r in rows if r[0] == "4090-Sim"]
    lsu_3060 = [r[2] for r in rows if r[0] == "3060-Sim"]
    # LSU stalls dominate the baseline's stall picture on the 4090 (paper:
    # >60% of stalls on average across both GPUs).
    assert arithmetic_mean(lsu_4090) > 0.55
    # More stalls on the 4090 than the 3060 (worse SM:ROP ratio, §3.2).
    assert arithmetic_mean(lsu_4090) > arithmetic_mean(lsu_3060)
    spi_4090 = [r[4] for r in rows if r[0] == "4090-Sim"]
    spi_3060 = [r[4] for r in rows if r[0] == "3060-Sim"]
    assert arithmetic_mean(spi_4090) > arithmetic_mean(spi_3060)
