"""Figures 18 & 19: ARC-HW versus PHI, LAB and LAB-ideal.

Paper (gradient-kernel speedups over the atomicAdd baseline):
  4090-Sim -- ARC-HW 2.06x avg (up to 8.59x), LAB-ideal 1.40x, LAB
  ~1.05x below LAB-ideal, PHI 1.01x.
  3060-Sim -- ARC-HW 1.73x avg (up to 3.77x), LAB-ideal 1.20x, PHI 1.03x.
"""

from conftest import print_table

from repro.experiments import arithmetic_mean, get_result

STRATEGIES = ("ARC-HW", "LAB", "LAB-ideal", "PHI")


def speedup_rows(workload_keys, gpu):
    rows = []
    for key in workload_keys:
        baseline = get_result(key, gpu, "baseline")
        rows.append(
            [key]
            + [
                get_result(key, gpu, strategy).speedup_over(baseline)
                for strategy in STRATEGIES
            ]
        )
    return rows


def check_figure(rows, gpu):
    means = {
        strategy: arithmetic_mean(row[i + 1] for row in rows)
        for i, strategy in enumerate(STRATEGIES)
    }
    # ARC-HW wins on average and is never a slowdown.
    assert means["ARC-HW"] > means["LAB-ideal"] > means["PHI"], (gpu, means)
    assert all(row[1] > 0.95 for row in rows), gpu
    assert means["ARC-HW"] > 1.5, (gpu, means)
    # LAB-ideal marginally outperforms the realistic LAB (paper: ~1.05x).
    assert means["LAB-ideal"] >= means["LAB"] * 0.999, (gpu, means)
    assert means["LAB-ideal"] < means["LAB"] * 1.4, (gpu, means)
    # PHI provides only small improvements (paper: 1.01-1.03x).
    assert 0.7 < means["PHI"] < 1.5, (gpu, means)
    return means


def test_fig18_arc_hw_3060(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        speedup_rows, args=(workload_keys, "3060-Sim"), rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 18: gradient speedup on 3060-Sim (normalized to baseline)",
        ["workload", *STRATEGIES],
        rows,
    )
    record("fig18_arc_hw_3060", rows)
    means = check_figure(rows, "3060-Sim")
    print(f"means: { {k: round(v, 2) for k, v in means.items()} }")


def test_fig19_arc_hw_4090(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        speedup_rows, args=(workload_keys, "4090-Sim"), rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 19: gradient speedup on 4090-Sim (normalized to baseline)",
        ["workload", *STRATEGIES],
        rows,
    )
    record("fig19_arc_hw_4090", rows)
    means = check_figure(rows, "4090-Sim")
    print(f"means: { {k: round(v, 2) for k, v in means.items()} }")


def test_fig18_19_cross_gpu_shape(benchmark, workload_keys):
    """ARC-HW speedups are larger on the 4090 (worse SM:ROP ratio)."""

    def means():
        return tuple(
            arithmetic_mean(
                get_result(key, gpu, "ARC-HW").speedup_over(
                    get_result(key, gpu, "baseline")
                )
                for key in workload_keys
            )
            for gpu in ("4090-Sim", "3060-Sim")
        )

    mean_4090, mean_3060 = benchmark.pedantic(means, rounds=1, iterations=1)
    assert mean_4090 > mean_3060
