"""Figures 20 & 21: reduction in shader atomic stalls.

Paper: ARC-HW reduces shader atomic stalls by 2.43x (4090-Sim) and 2.28x
(3060-Sim) on average, versus 1.43x / 1.19x for LAB-ideal.
"""

from conftest import print_table

from repro.experiments import arithmetic_mean, get_result
from repro.profiling import atomic_stall_reduction

STRATEGIES = ("ARC-HW", "LAB", "LAB-ideal")


def reduction_rows(workload_keys, gpu):
    rows = []
    for key in workload_keys:
        baseline = get_result(key, gpu, "baseline")
        rows.append(
            [key]
            + [
                atomic_stall_reduction(
                    baseline, get_result(key, gpu, strategy)
                )
                for strategy in STRATEGIES
            ]
        )
    return rows


def check(rows, gpu):
    means = {
        strategy: arithmetic_mean(row[i + 1] for row in rows)
        for i, strategy in enumerate(STRATEGIES)
    }
    # ARC-HW is the most effective at removing atomic stalls.
    assert means["ARC-HW"] > means["LAB-ideal"], (gpu, means)
    assert means["ARC-HW"] > 2.0, (gpu, means)
    return means


def test_fig20_stall_reduction_3060(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        reduction_rows, args=(workload_keys, "3060-Sim"), rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 20: shader atomic-stall reduction on 3060-Sim",
        ["workload", *STRATEGIES],
        rows,
    )
    record("fig20_stall_reduction_3060", rows)
    means = check(rows, "3060-Sim")
    print(f"means: { {k: round(v, 2) for k, v in means.items()} }")


def test_fig21_stall_reduction_4090(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        reduction_rows, args=(workload_keys, "4090-Sim"), rounds=1,
        iterations=1,
    )
    print_table(
        "Figure 21: shader atomic-stall reduction on 4090-Sim",
        ["workload", *STRATEGIES],
        rows,
    )
    record("fig21_stall_reduction_4090", rows)
    means = check(rows, "4090-Sim")
    print(f"means: { {k: round(v, 2) for k, v in means.items()} }")
