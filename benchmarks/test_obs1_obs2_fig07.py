"""§3.1 Observations 1 & 2 and Figure 7 (active-thread histograms).

Observation 1: in raster-based differentiable rendering, ~99% of warps
have all their active threads atomically update the same memory location.
Observation 2: the number of participating threads per warp varies widely
(Figure 7 plots log-scale histograms for 3D-PR and NV-LE).
"""

import numpy as np
from conftest import print_table

from repro.experiments import get_trace
from repro.trace.analysis import active_thread_histogram, profile_trace


def test_obs1_intra_warp_locality(benchmark, record, workload_keys):
    def measure():
        return [
            [key, profile_trace(get_trace(key)).locality]
            for key in workload_keys
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Observation 1: fraction of warps with all active lanes on one "
        "address",
        ["workload", "locality"],
        rows,
    )
    record("obs1_locality", rows)
    locality = dict(rows)
    # Paper: >99% for 3DGS (3D-PL measured); the same holds for Pulsar.
    for key, value in locality.items():
        if key.startswith(("3D", "PS")):
            assert value > 0.99, (key, value)
    # NvDiffRec scatters across texels: locality is far lower, which is
    # why CCCL-style full-warp reduction finds little to merge there.
    for key, value in locality.items():
        if key.startswith("NV"):
            assert value < 0.9, (key, value)


def test_fig07_active_thread_histograms(benchmark, record, workload_keys):
    targets = [k for k in ("3D-PR", "NV-LE") if k in workload_keys]
    if not targets:
        targets = workload_keys[:1]

    def measure():
        return {
            key: active_thread_histogram(get_trace(key)).tolist()
            for key in targets
        }

    histograms = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for key, histogram in histograms.items():
        histogram = np.asarray(histogram)
        nonzero = np.nonzero(histogram)[0]
        active = histogram[1:]
        counts = np.arange(1, 33)
        mean_active = (
            float((active * counts).sum() / active.sum())
            if active.sum() else 0.0
        )
        rows.append([key, int(nonzero.min()), int(nonzero.max()),
                     mean_active])
        print(f"\nFigure 7 histogram, {key} (active lanes: batches):")
        for lanes in range(33):
            if histogram[lanes]:
                bar = "#" * max(1, int(np.log10(histogram[lanes]) * 8))
                print(f"  {lanes:>2}: {histogram[lanes]:>8,} {bar}")

    print_table(
        "Figure 7 summary",
        ["workload", "min active", "max active", "mean active"],
        rows,
    )
    record("fig07_active_histograms", histograms)

    for key, histogram in histograms.items():
        histogram = np.asarray(histogram)
        participating = np.nonzero(histogram[1:])[0]
        # "Significant variation in the number of threads that participate"
        assert len(participating) > 10, key
