"""Figure 22: ARC-SW end-to-end and gradient-computation speedups.

Paper (real hardware; here the same simulator serves as the testbed):
gradient speedup 2.44x avg on the 4090 (up to 5.7x) and 1.74x on the 3060;
end-to-end 1.41x (up to 2.4x) and 1.21x.  SW-B performs as well as or
better than SW-S on the 3DGS workloads; Pulsar can only use SW-S; the
largest wins are on the big DB-COLMAP scenes (3D-PR, 3D-DR).
"""

from conftest import print_table

from repro.experiments import (
    arithmetic_mean,
    best_sw_result,
    get_result,
    get_trace,
    get_workload,
)
from repro.gpu import SIMULATED_GPUS
from repro.profiling import training_breakdown


def figure22_rows(workload_keys):
    rows = []
    for gpu in SIMULATED_GPUS.values():
        for key in workload_keys:
            trace = get_trace(key)
            baseline = get_result(key, gpu, "baseline")
            variants = ["S"] + (["B"] if trace.bfly_eligible else [])
            best = {
                variant: best_sw_result(key, gpu, variant)
                for variant in variants
            }
            grad_speedup = max(
                result.speedup_over(baseline) for result in best.values()
            )
            workload = get_workload(key)
            pairs, pixels = workload.forward_stats()
            breakdown = training_breakdown(
                trace, forward_pairs=pairs, n_pixels=pixels, config=gpu,
                launches=workload.trace_views,
                loss_channel_cycles=workload.loss_channel_cycles,
            )
            sw_s = best["S"].speedup_over(baseline)
            sw_b = (
                best["B"].speedup_over(baseline)
                if "B" in best else float("nan")
            )
            rows.append(
                [gpu.name, key, sw_b, sw_s, grad_speedup,
                 breakdown.end_to_end_speedup(grad_speedup)]
            )
    return rows


def test_fig22_arc_sw_speedups(benchmark, record, workload_keys):
    rows = benchmark.pedantic(
        figure22_rows, args=(workload_keys,), rounds=1, iterations=1
    )
    print_table(
        "Figure 22: ARC-SW speedups (best balancing threshold)",
        ["gpu", "workload", "SW-B grad", "SW-S grad", "best grad",
         "end-to-end"],
        rows,
    )
    record("fig22_arc_sw", rows)

    for gpu_name in ("4090-Sim", "3060-Sim"):
        gpu_rows = [r for r in rows if r[0] == gpu_name]
        grad = [r[4] for r in gpu_rows]
        e2e = [r[5] for r in gpu_rows]
        # Significant average gradient-kernel speedup; end-to-end smaller
        # but still positive (Amdahl over the unchanged phases).
        assert arithmetic_mean(grad) > 1.3, (gpu_name, grad)
        assert all(g >= 0.99 for g in grad), (gpu_name, grad)
        assert all(s >= e * 0.999 for _, _, _, _, s, e in gpu_rows)
        # End-to-end gains are positive but damped by the unchanged
        # forward/loss phases (NV/PS barely move on the 3060, as in the
        # paper's "smaller end-to-end speedups in NV and PS").
        assert arithmetic_mean(e2e) > 1.03, (gpu_name, e2e)

    grad_4090 = arithmetic_mean(r[4] for r in rows if r[0] == "4090-Sim")
    grad_3060 = arithmetic_mean(r[4] for r in rows if r[0] == "3060-Sim")
    # Higher speedups on the 4090 (lower ROP:SM ratio, §7.2 obs. 2).
    assert grad_4090 > grad_3060

    rows_4090 = {r[1]: r for r in rows if r[0] == "4090-Sim"}
    # SW-B >= SW-S on the 3DGS workloads (§7.2 obs. 3).
    for key, row in rows_4090.items():
        if key.startswith("3D"):
            assert row[2] >= row[3] * 0.98, (key, row)
    # The large photorealistic scenes win the most (§7.2 obs. 4).
    if {"3D-PR", "3D-DR", "3D-LE"} <= rows_4090.keys():
        big = max(rows_4090["3D-PR"][4], rows_4090["3D-DR"][4])
        assert big >= rows_4090["3D-LE"][4]
    print(
        f"\nmean grad speedup: 4090-Sim {grad_4090:.2f}x "
        f"(paper 2.44x), 3060-Sim {grad_3060:.2f}x (paper 1.74x)"
    )
