"""§5.4 (area overhead) and §5.6 (pagerank counter-example).

Paper: ARC-HW adds one FPU per sub-core -- ~35.8M transistors on an RTX
4090, a ~0.047% area overhead.  Pagerank floods the GPU with atomics but
<0.1% of its warps are fully coalesced, so ARC neither helps nor hurts.
"""

import pytest
from conftest import print_table

from repro.core import ArcHW, ArcSWSerialized, BaselineAtomic
from repro.gpu import RTX3060_SIM, RTX4090_SIM, simulate_kernel
from repro.gpu.area import area_overhead_fraction, reduction_unit_transistors
from repro.trace.analysis import intra_warp_locality
from repro.workloads import PagerankWorkload


def test_sec54_area_overhead(benchmark, record):
    def measure():
        return [
            [gpu.name, reduction_unit_transistors(gpu),
             area_overhead_fraction(gpu)]
            for gpu in (RTX4090_SIM, RTX3060_SIM)
        ]

    rows = benchmark(measure)
    print_table(
        "Section 5.4: ARC-HW area overhead",
        ["gpu", "added transistors", "fraction of die"],
        [[gpu, f"{t:,}", f"{f:.4%}"] for gpu, t, f in rows],
    )
    record("sec54_area", rows)
    by_gpu = {row[0]: row for row in rows}
    assert by_gpu["4090-Sim"][1] == 35_840_000
    assert by_gpu["4090-Sim"][2] == pytest.approx(0.00047, rel=0.05)
    assert all(row[2] < 0.001 for row in rows)


def test_sec56_pagerank_counterexample(benchmark, record):
    workload = PagerankWorkload(n_nodes=6000, attachments=5, seed=0)

    def measure():
        trace = workload.capture_trace()
        locality = intra_warp_locality(trace)
        rows = []
        for gpu in (RTX4090_SIM, RTX3060_SIM):
            baseline = simulate_kernel(trace, gpu, BaselineAtomic())
            arc_hw = simulate_kernel(trace, gpu, ArcHW())
            arc_sw = simulate_kernel(trace, gpu, ArcSWSerialized(8))
            rows.append(
                [gpu.name, locality,
                 arc_hw.speedup_over(baseline),
                 arc_sw.speedup_over(baseline),
                 arc_hw.ru_values]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Section 5.6: pagerank (low intra-warp locality)",
        ["gpu", "locality", "ARC-HW speedup", "ARC-SW speedup",
         "values reduced in SM"],
        rows,
    )
    record("sec56_pagerank", rows)
    for gpu, locality, hw, sw, ru_values in rows:
        # <0.1% of warps fully coalesced (paper §5.6).
        assert locality < 0.001, locality
        # ARC cannot help these workloads -- and does not hurt either,
        # because the reduction path bypasses.
        assert hw == pytest.approx(1.0, abs=0.2), (gpu, hw)
        assert sw == pytest.approx(1.0, abs=0.2), (gpu, sw)
