"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation: it simulates the needed (workload, GPU, strategy) cells
(memoized process-wide by :mod:`repro.experiments.runner`), prints the
rows/series the paper reports, asserts the paper's qualitative shape, and
records the numbers to ``benchmarks/results/*.json`` so EXPERIMENTS.md can
cite them.

Set ``REPRO_BENCH_WORKLOADS`` to a comma-separated key list (e.g.
``3D-LE,NV-BB,PS-SS``) to run a fast subset.

Execution knobs (flag overrides the matching environment variable):

* ``--repro-jobs N`` / ``REPRO_BENCH_JOBS`` -- pre-warm the whole
  experiment matrix across N worker processes before the figure tests
  run, so each test is pure cache lookups;
* ``--repro-no-cache`` / ``REPRO_NO_DISK_CACHE`` -- bypass the
  persistent disk cache (every session then re-simulates from scratch);
* ``--repro-trajectory DIR`` / ``REPRO_BENCH_TRAJECTORY`` -- *also*
  write each recorded figure as a provenance-stamped trajectory entry
  (the ``repro.bench`` envelope: machine fingerprint, git SHA, engine
  fingerprint) under DIR, so figure results can sit in the same perf
  trajectory as the ``repro bench`` BENCH_*.json documents.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import diskcache
from repro.experiments.runner import (
    STRATEGY_FACTORIES,
    clear_caches,
)
from repro.gpu import SIMULATED_GPUS
from repro.workloads import WORKLOAD_KEYS

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--repro-jobs", type=int,
        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        help="worker processes used to pre-warm the experiment matrix",
    )
    parser.addoption(
        "--repro-no-cache", action="store_true", default=False,
        help="bypass the persistent on-disk simulation cache",
    )
    parser.addoption(
        "--repro-trajectory", type=str,
        default=os.environ.get("REPRO_BENCH_TRAJECTORY", ""),
        help="directory to also write provenance-enveloped trajectory "
             "entries (BENCH_figure_*.json) for each recorded figure",
    )


@pytest.fixture(scope="session", autouse=True)
def experiment_execution(request):
    """Configure the cache layers and optionally pre-warm in parallel."""
    if request.config.getoption("--repro-no-cache"):
        diskcache.configure(enabled=False)
    jobs = request.config.getoption("--repro-jobs")
    run_report = None
    if jobs > 1:
        from repro.experiments.parallel import run_matrix_parallel
        from repro.experiments.resilience import RunReport

        run_report = RunReport()
        run_matrix_parallel(
            selected_workloads(),
            list(STRATEGY_FACTORIES),
            list(SIMULATED_GPUS),
            jobs=jobs,
            report=run_report,
        )
    yield
    print_lines = []
    if run_report is not None:
        from repro.experiments.report import format_run_report

        print_lines.append(
            format_run_report(run_report, title="pre-warm execution")
        )
    cache = diskcache.active_cache()
    if cache is not None and cache.stats.lookups:
        from repro.experiments.report import format_cache_stats

        print_lines.append(
            format_cache_stats(cache.stats, title=f"cache: {cache.root}")
        )
    for block in print_lines:
        print()
        print(block)


@pytest.fixture
def isolated_simulation_state(tmp_path):
    """Run one isolation-sensitive test against private cache state.

    Figure tests deliberately share memoized cells; tests that mutate
    workload registries or rely on fresh simulation must opt into this
    fixture so nothing leaks in either direction -- including through the
    persistent on-disk layer, which ``clear_caches()`` alone would leave
    warm.  The disk layer is *repointed* at a throwaway directory rather
    than cleared in place: the benchmark harness runs against the real
    persistent cache (that is the warm-start feature), and wiping it as
    a fixture side effect would destroy hours of accumulated state.
    """
    clear_caches()
    with diskcache.isolated(tmp_path / "repro-cache"):
        yield
    clear_caches()


def selected_workloads() -> list[str]:
    """Workload keys under test (full Table 2 set unless overridden)."""
    override = os.environ.get("REPRO_BENCH_WORKLOADS")
    if not override:
        return list(WORKLOAD_KEYS)
    keys = [key.strip() for key in override.split(",") if key.strip()]
    unknown = set(keys) - set(WORKLOAD_KEYS)
    if unknown:
        raise ValueError(f"unknown workload keys: {sorted(unknown)}")
    return keys


@pytest.fixture(scope="session")
def workload_keys() -> list[str]:
    return selected_workloads()


@pytest.fixture(scope="session")
def record(request):
    """Persist one figure's rows as JSON for EXPERIMENTS.md.

    With ``--repro-trajectory DIR`` (or ``REPRO_BENCH_TRAJECTORY``), the
    same payload is *additionally* written to DIR wrapped in the
    ``repro.bench`` provenance envelope -- machine fingerprint, git SHA,
    engine fingerprint -- as ``BENCH_figure_<figure>.json``.  Those
    entries share provenance fields with ``repro bench`` documents so a
    perf trajectory can interleave both; they carry the figure's rows
    under ``figure_payload`` rather than bench cells, so they are
    archive material, not ``repro bench --compare`` baselines.
    """
    trajectory_dir = request.config.getoption("--repro-trajectory")

    def _record(figure: str, payload) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{figure}.json"
        path.write_text(json.dumps(payload, indent=2, default=float) + "\n")
        if trajectory_dir:
            from repro.bench import make_envelope

            entry = make_envelope(
                f"figure_{figure}",
                {"source": "benchmarks", "figure": figure,
                 "workloads": selected_workloads()},
            )
            entry["figure_payload"] = payload
            out_dir = Path(trajectory_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"BENCH_figure_{figure}.json"
            out_path.write_text(
                json.dumps(entry, indent=2, sort_keys=True, default=float)
                + "\n"
            )

    return _record


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render a figure's data as an aligned text table."""
    formatted = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell)
         for cell in row]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in formatted))
        if formatted else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in formatted:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
