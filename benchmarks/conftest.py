"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation: it simulates the needed (workload, GPU, strategy) cells
(memoized process-wide by :mod:`repro.experiments.runner`), prints the
rows/series the paper reports, asserts the paper's qualitative shape, and
records the numbers to ``benchmarks/results/*.json`` so EXPERIMENTS.md can
cite them.

Set ``REPRO_BENCH_WORKLOADS`` to a comma-separated key list (e.g.
``3D-LE,NV-BB,PS-SS``) to run a fast subset.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.workloads import WORKLOAD_KEYS

RESULTS_DIR = Path(__file__).parent / "results"


def selected_workloads() -> list[str]:
    """Workload keys under test (full Table 2 set unless overridden)."""
    override = os.environ.get("REPRO_BENCH_WORKLOADS")
    if not override:
        return list(WORKLOAD_KEYS)
    keys = [key.strip() for key in override.split(",") if key.strip()]
    unknown = set(keys) - set(WORKLOAD_KEYS)
    if unknown:
        raise ValueError(f"unknown workload keys: {sorted(unknown)}")
    return keys


@pytest.fixture(scope="session")
def workload_keys() -> list[str]:
    return selected_workloads()


@pytest.fixture(scope="session")
def record():
    """Persist one figure's rows as JSON for EXPERIMENTS.md."""

    def _record(figure: str, payload) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{figure}.json"
        path.write_text(json.dumps(payload, indent=2, default=float) + "\n")

    return _record


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render a figure's data as an aligned text table."""
    formatted = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell)
         for cell in row]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in formatted))
        if formatted else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in formatted:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
