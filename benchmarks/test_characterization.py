"""Characterization surface: where ARC wins, as a function of the trace.

Not a paper figure, but the synthesis of its two observations: sweep
synthetic traces over intra-warp locality (groups per warp) and thread
participation (mean active lanes) and map ARC's speedup.  The rendering
workloads sit in the high-locality/high-activity corner; pagerank sits in
the scattered corner where ARC is neutral.
"""

from conftest import print_table

from repro.experiments.sweeps import characterization_sweep
from repro.gpu import RTX4090_SIM


def test_characterization_surface(benchmark, record):
    def sweep():
        return characterization_sweep(
            RTX4090_SIM,
            active_levels=(4, 8, 16, 24, 31),
            group_levels=(1, 2, 4, 8),
            n_batches=20_000,
        )

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [p.groups_per_warp, p.mean_active, p.arc_hw_speedup,
         p.arc_sw_speedup]
        for p in points
    ]
    print_table(
        "Characterization: ARC speedup vs trace shape (4090-Sim)",
        ["groups/warp", "mean active", "ARC-HW", "ARC-SW"],
        rows,
    )
    record(
        "characterization_surface",
        [
            {
                "groups_per_warp": p.groups_per_warp,
                "mean_active": p.mean_active,
                "arc_hw": p.arc_hw_speedup,
                "arc_sw": p.arc_sw_speedup,
            }
            for p in points
        ],
    )

    by_cell = {(p.groups_per_warp, p.mean_active): p for p in points}
    # Within the coalesced column, more active lanes -> more reduction
    # opportunity -> larger ARC-HW speedup.
    coalesced = [by_cell[(1, a)].arc_hw_speedup for a in (4, 8, 16, 24, 31)]
    assert coalesced[-1] > coalesced[0]
    # At fixed activity, scattering the warp erodes the win.
    dense = [by_cell[(g, 24)].arc_hw_speedup for g in (1, 2, 4, 8)]
    assert dense[0] > dense[-1]
    # The rendering corner is a clear win; the scattered corner is at
    # worst neutral-ish.
    assert by_cell[(1, 31)].arc_hw_speedup > 2.0
    assert by_cell[(8, 4)].arc_hw_speedup > 0.7
