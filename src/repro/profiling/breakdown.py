"""Training-time breakdown across pipeline phases (paper Figure 4).

One training iteration has three GPU phases: the forward pass (render an
image), the loss computation, and the gradient computation.  The gradient
kernel is the only atomic-bound one; forward and loss are throughput-bound
compute kernels modeled analytically from their work counts.  The paper
measures that on the RTX 4090 the gradient step takes 44% of training time
on average (up to 66% on the large DB-COLMAP scenes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import AtomicStrategy
from repro.core.baseline import BaselineAtomic
from repro.gpu.config import GPUConfig
from repro.gpu.engine import simulate_kernel
from repro.trace.events import KernelTrace

__all__ = ["PhaseBreakdown", "compute_kernel_cycles", "training_breakdown"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Cycles per training-iteration phase on one simulated GPU."""

    workload: str
    gpu: str
    forward_cycles: float
    loss_cycles: float
    grad_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.forward_cycles + self.loss_cycles + self.grad_cycles

    @property
    def fractions(self) -> dict[str, float]:
        """Phase shares of the iteration (sums to 1)."""
        total = self.total_cycles
        if total <= 0:
            return {"forward": 0.0, "loss": 0.0, "grad": 0.0}
        return {
            "forward": self.forward_cycles / total,
            "loss": self.loss_cycles / total,
            "grad": self.grad_cycles / total,
        }

    @property
    def grad_fraction(self) -> float:
        """Share of the iteration spent in gradient computation."""
        return self.fractions["grad"]

    def end_to_end_speedup(self, grad_speedup: float) -> float:
        """Iteration speedup when only the gradient kernel gets faster.

        Amdahl over the three phases: this converts the per-kernel
        speedups of Figures 18-26 into the end-to-end bars of Figure 22.
        """
        if grad_speedup <= 0:
            raise ValueError("grad_speedup must be positive")
        accelerated = (
            self.forward_cycles + self.loss_cycles
            + self.grad_cycles / grad_speedup
        )
        return self.total_cycles / accelerated


def compute_kernel_cycles(work_items: float, cycles_per_item: float,
                          config: GPUConfig) -> float:
    """Duration of a throughput-bound compute kernel.

    The GPU retires one instruction per sub-core per cycle, so a kernel of
    ``work_items x cycles_per_item`` instruction-cycles spread over all
    sub-cores runs for their quotient (forward/loss kernels have ample
    parallelism; §3 notes the forward pass scales with primitive count).
    """
    if work_items < 0 or cycles_per_item < 0:
        raise ValueError("work and cost must be non-negative")
    return work_items * cycles_per_item / config.num_subcores


def training_breakdown(
    trace: KernelTrace,
    forward_pairs: int,
    n_pixels: int,
    config: GPUConfig,
    strategy: AtomicStrategy | None = None,
    launches: int = 1,
    loss_channel_cycles: "float | None" = None,
) -> PhaseBreakdown:
    """Per-phase cycles of one training iteration.

    Parameters
    ----------
    trace:
        Gradient-kernel trace (possibly concatenating several launches;
        pass how many in *launches* so forward/loss are scaled to match).
    forward_pairs:
        (pixel, primitive) pairs composited by one forward pass.
    n_pixels:
        Rendered pixels per iteration.
    strategy:
        Atomic strategy for the gradient kernel (baseline by default).
    loss_channel_cycles:
        Per-channel loss-kernel cost override (workloads without a D-SSIM
        term, like NvDiffRec, pass a lighter value).
    """
    if launches <= 0:
        raise ValueError("launches must be positive")
    cost = config.cost
    forward = launches * compute_kernel_cycles(
        forward_pairs, cost.fwd_pair_cycles, config
    )
    if loss_channel_cycles is None:
        loss_channel_cycles = cost.loss_channel_cycles
    loss = launches * compute_kernel_cycles(
        n_pixels * 3, loss_channel_cycles, config
    )
    grad = simulate_kernel(
        trace, config, strategy or BaselineAtomic()
    ).total_cycles
    return PhaseBreakdown(
        workload=trace.name,
        gpu=config.name,
        forward_cycles=forward,
        loss_cycles=loss,
        grad_cycles=grad,
    )
