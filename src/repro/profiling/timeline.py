"""Timeline exporters and occupancy summaries for engine telemetry.

The engine's :class:`~repro.gpu.telemetry.Telemetry` collector records raw
spans and busy intervals; this module turns them into things people (and
CI) can look at:

* :func:`capture_timeline` -- run one simulation with a fresh collector;
* :func:`to_chrome_trace` -- Chrome trace-event JSON that Perfetto
  (https://ui.perfetto.dev) loads directly: one span track per active
  sub-core plus counter tracks for LSU queue occupancy per SM, busy ROP
  units per partition, interconnect busy state, and active reduction
  units;
* :func:`save_timeline` / :func:`load_timeline` -- compact ``.npz`` or
  ``.json`` round-trip for programmatic analysis;
* :func:`summarize_timeline` -- peak occupancies, per-resource saturation
  fractions, and the hottest address slots (the Figure 8 story in three
  numbers).

All timestamps in the Chrome export are microseconds of simulated time
(``cycles / (clock_ghz * 1e3)``) so Perfetto's time axis reads as
wall-clock *on the simulated GPU* -- a pure function of simulation state,
never of the host clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.telemetry import PHASES, Telemetry

__all__ = [
    "TimelineSummary",
    "capture_timeline",
    "load_timeline",
    "save_timeline",
    "service_trace_ids",
    "spans_from_obslog",
    "stitch_service_trace",
    "summarize_timeline",
    "to_chrome_trace",
]

#: Chrome-trace process ids, one per track family.
_PID_SUBCORES = 0
_PID_LSU = 1
_PID_ROP = 2
_PID_INTERCONNECT = 3
_PID_RU = 4


def capture_timeline(trace, config, strategy) -> Telemetry:
    """Simulate ``trace`` with a fresh collector and return it.

    Bypasses every result cache on purpose: a timeline is a property of
    *this* simulation run, and the engine guarantees the attached
    collector does not change the result.
    """
    from repro.gpu.engine import simulate_kernel

    telemetry = Telemetry()
    simulate_kernel(trace, config, strategy, telemetry=telemetry)
    return telemetry


# --------------------------------------------------------------------- #
# Occupancy math (shared by counters and summaries)
# --------------------------------------------------------------------- #

def _occupancy_steps(intervals) -> "list[tuple[float, int]]":
    """Turn ``(start, end)`` busy intervals into a ``(t, level)`` step fn.

    Ends sort before starts at equal timestamps, so a queue entry freed
    exactly when another is admitted never reads as exceeding capacity.
    """
    deltas = []
    for start, end in intervals:
        deltas.append((start, +1))
        deltas.append((end, -1))
    deltas.sort()
    steps = []
    level = 0
    for t, delta in deltas:
        level += delta
        if steps and steps[-1][0] == t:
            steps[-1] = (t, level)
        else:
            steps.append((t, level))
    return steps


def _peak(steps) -> int:
    return max((level for _, level in steps), default=0)


def _time_at_or_above(steps, level, horizon) -> float:
    """Total time the step function sits at >= ``level`` within horizon."""
    total = 0.0
    for i, (t, value) in enumerate(steps):
        if value < level:
            continue
        t_next = steps[i + 1][0] if i + 1 < len(steps) else horizon
        total += max(0.0, min(t_next, horizon) - t)
    return total


# --------------------------------------------------------------------- #
# Chrome trace-event export
# --------------------------------------------------------------------- #

def to_chrome_trace(telemetry: Telemetry) -> dict:
    """Export a collector as a Chrome trace-event JSON object.

    The returned dict serializes directly with ``json.dump`` and loads in
    Perfetto / ``chrome://tracing``.  Events are globally sorted by
    timestamp, with span ends ordered before same-timestamp begins so
    back-to-back phases nest correctly.
    """
    meta = telemetry.meta
    clock_ghz = float(meta.get("clock_ghz", 1.0))
    # Simulated shader cycles -> microseconds on the simulated GPU.
    to_us = 1.0 / (clock_ghz * 1e3)

    events = []

    def emit_process(pid, name):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": name}})

    def emit_thread(pid, tid, name):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": name}})

    timed = []

    # Span tracks: one thread per active sub-core.
    active_subcores = sorted({span[0] for span in telemetry.spans})
    emit_process(_PID_SUBCORES, "sub-cores")
    for subcore in active_subcores:
        emit_thread(_PID_SUBCORES, subcore, f"sub-core {subcore}")
    for subcore, warp, batch, phase, start, end in telemetry.spans:
        common = {"name": phase, "cat": "subcore",
                  "pid": _PID_SUBCORES, "tid": subcore}
        timed.append({**common, "ph": "B", "ts": start * to_us,
                      "args": {"warp": warp, "batch": batch}})
        timed.append({**common, "ph": "E", "ts": end * to_us})

    def emit_counter(pid, name, steps, value_key):
        for t, level in steps:
            timed.append({"name": name, "ph": "C", "pid": pid, "tid": 0,
                          "ts": t * to_us, "args": {value_key: level}})

    # LSU queue occupancy: one counter track per SM that saw traffic.
    emit_process(_PID_LSU, "LSU queues")
    by_sm: dict[int, list] = {}
    for sm, start, end in telemetry.lsu_intervals:
        by_sm.setdefault(sm, []).append((start, end))
    for sm in sorted(by_sm):
        emit_counter(_PID_LSU, f"lsu_queue[sm{sm}]",
                     _occupancy_steps(by_sm[sm]), "entries")

    # Busy ROP units: one counter track per partition that saw traffic.
    emit_process(_PID_ROP, "ROP partitions")
    by_partition: dict[int, list] = {}
    for partition, _slot, _ops, start, end in telemetry.rop_intervals:
        by_partition.setdefault(partition, []).append((start, end))
    for partition in sorted(by_partition):
        emit_counter(_PID_ROP, f"rop_busy[p{partition}]",
                     _occupancy_steps(by_partition[partition]), "units")

    # Interconnect: serialized, so occupancy is a 0/1 busy flag.
    emit_process(_PID_INTERCONNECT, "interconnect")
    if telemetry.ic_intervals:
        emit_counter(_PID_INTERCONNECT, "interconnect_busy",
                     _occupancy_steps(telemetry.ic_intervals), "busy")

    # Reduction units: how many sub-core FPUs are reducing right now.
    emit_process(_PID_RU, "reduction units")
    if telemetry.ru_intervals:
        emit_counter(_PID_RU, "active_reduction_units",
                     _occupancy_steps(
                         [(s, e) for _, s, e in telemetry.ru_intervals]),
                     "units")

    # Global order: by timestamp, ends before begins on ties (ph "E"
    # sorts before "B" is false alphabetically, so map explicitly).
    order = {"E": 0, "C": 1, "B": 2}
    timed.sort(key=lambda ev: (ev["ts"], order[ev["ph"]]))

    return {
        "traceEvents": events + timed,
        "displayTimeUnit": "ms",
        "otherData": dict(meta),
    }


# --------------------------------------------------------------------- #
# Compact persistence
# --------------------------------------------------------------------- #

def save_timeline(telemetry: Telemetry, path) -> None:
    """Write a collector to ``path`` (``.npz`` if so named, else JSON)."""
    path = str(path)
    if path.endswith(".npz"):
        phase_code = {name: i for i, name in enumerate(PHASES)}
        spans = np.array(
            [[sc, warp, batch, phase_code[phase], start, end]
             for sc, warp, batch, phase, start, end in telemetry.spans],
            dtype=np.float64,
        ).reshape(-1, 6)
        np.savez_compressed(
            path,
            meta=np.frombuffer(
                json.dumps(telemetry.meta).encode(), dtype=np.uint8
            ),
            spans=spans,
            lsu=np.array(telemetry.lsu_intervals,
                         dtype=np.float64).reshape(-1, 3),
            rop=np.array(telemetry.rop_intervals,
                         dtype=np.float64).reshape(-1, 5),
            ic=np.array(telemetry.ic_intervals,
                        dtype=np.float64).reshape(-1, 2),
            ru=np.array(telemetry.ru_intervals,
                        dtype=np.float64).reshape(-1, 3),
        )
    else:
        with open(path, "w") as handle:
            json.dump(telemetry.as_dict(), handle)


def load_timeline(path) -> Telemetry:
    """Read a collector back from :func:`save_timeline` output."""
    path = str(path)
    if path.endswith(".npz"):
        with np.load(path) as data:
            telemetry = Telemetry()
            telemetry.meta = json.loads(bytes(data["meta"]).decode())
            telemetry.spans = [
                (int(sc), int(warp), int(batch), PHASES[int(code)],
                 float(start), float(end))
                for sc, warp, batch, code, start, end in data["spans"]
            ]
            telemetry.lsu_intervals = [
                (int(sm), float(start), float(end))
                for sm, start, end in data["lsu"]
            ]
            telemetry.rop_intervals = [
                (int(p), int(slot), float(ops), float(start), float(end))
                for p, slot, ops, start, end in data["rop"]
            ]
            telemetry.ic_intervals = [
                (float(start), float(end)) for start, end in data["ic"]
            ]
            telemetry.ru_intervals = [
                (int(sc), float(start), float(end))
                for sc, start, end in data["ru"]
            ]
            return telemetry
    with open(path) as handle:
        return Telemetry.from_dict(json.load(handle))


# --------------------------------------------------------------------- #
# Summary
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class TimelineSummary:
    """What the timeline says about where simulated time went."""

    trace_name: str
    gpu: str
    strategy: str
    total_cycles: float
    lsu_full_events: int
    #: Most entries simultaneously held in any SM's LSU queue.  Can
    #: exceed ``lsu_queue_depth``: the engine admits entries lazily in
    #: sub-core event order rather than globally chronologically, so the
    #: honest reconstruction of its admissions on one shared time axis
    #: may transiently over-subscribe the queue.  At-or-above depth
    #: reads as saturated either way.
    peak_lsu_occupancy: int
    lsu_queue_depth: int
    #: Most ROP units simultaneously busy in any one partition.
    peak_rop_busy: int
    rops_per_partition: int
    #: Fraction of kernel time each resource spent saturated
    #: (LSU: some SM queue full; ROP: some partition fully busy;
    #: interconnect: link busy).
    saturated_frac: dict = field(default_factory=dict)
    #: Fraction of kernel time the SM<->L2 link was transferring.
    interconnect_utilization: float = 0.0
    #: ``(slot, busy_cycles, rop_ops)`` hottest address slots, descending.
    hot_slots: list = field(default_factory=list)

    @property
    def lsu_saturated(self) -> bool:
        """Did any SM's LSU queue ever fill to its depth?"""
        return self.peak_lsu_occupancy >= self.lsu_queue_depth

    def to_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "gpu": self.gpu,
            "strategy": self.strategy,
            "total_cycles": self.total_cycles,
            "lsu_full_events": self.lsu_full_events,
            "peak_lsu_occupancy": self.peak_lsu_occupancy,
            "lsu_queue_depth": self.lsu_queue_depth,
            "peak_rop_busy": self.peak_rop_busy,
            "rops_per_partition": self.rops_per_partition,
            "saturated_frac": dict(self.saturated_frac),
            "interconnect_utilization": self.interconnect_utilization,
            "hot_slots": [list(slot) for slot in self.hot_slots],
            "lsu_saturated": self.lsu_saturated,
        }


def summarize_timeline(telemetry: Telemetry, top_k: int = 5,
                       ) -> TimelineSummary:
    """Reduce a timeline to peak occupancies and saturation fractions."""
    meta = telemetry.meta
    horizon = float(meta.get("total_cycles", 0.0)) or max(
        (end for _, _, _, _, _, end in telemetry.spans), default=0.0
    )
    depth = int(meta.get("lsu_queue_depth", 0))
    rops = int(meta.get("rops_per_partition", 0))

    by_sm: dict[int, list] = {}
    for sm, start, end in telemetry.lsu_intervals:
        by_sm.setdefault(sm, []).append((start, end))
    lsu_steps = [_occupancy_steps(ivals) for ivals in by_sm.values()]
    peak_lsu = max((_peak(steps) for steps in lsu_steps), default=0)
    lsu_full_time = max(
        (_time_at_or_above(steps, depth, horizon) for steps in lsu_steps),
        default=0.0,
    ) if depth else 0.0

    by_partition: dict[int, list] = {}
    slot_busy: dict[int, float] = {}
    slot_ops: dict[int, float] = {}
    for partition, slot, ops, start, end in telemetry.rop_intervals:
        by_partition.setdefault(partition, []).append((start, end))
        slot_busy[slot] = slot_busy.get(slot, 0.0) + (end - start)
        slot_ops[slot] = slot_ops.get(slot, 0.0) + ops
    rop_steps = [_occupancy_steps(ivals) for ivals in by_partition.values()]
    peak_rop = max((_peak(steps) for steps in rop_steps), default=0)
    rop_full_time = max(
        (_time_at_or_above(steps, rops, horizon) for steps in rop_steps),
        default=0.0,
    ) if rops else 0.0

    ic_busy = sum(end - start for start, end in telemetry.ic_intervals)

    hot = sorted(
        ((slot, busy, slot_ops[slot]) for slot, busy in slot_busy.items()),
        key=lambda item: (-item[1], item[0]),
    )[:top_k]

    frac = (lambda t: t / horizon if horizon else 0.0)
    return TimelineSummary(
        trace_name=str(meta.get("trace_name", "?")),
        gpu=str(meta.get("gpu", "?")),
        strategy=str(meta.get("strategy", "?")),
        total_cycles=horizon,
        lsu_full_events=int(meta.get("lsu_full_events", 0)),
        peak_lsu_occupancy=peak_lsu,
        lsu_queue_depth=depth,
        peak_rop_busy=peak_rop,
        rops_per_partition=rops,
        saturated_frac={
            "lsu": frac(lsu_full_time),
            "rop": frac(rop_full_time),
            "interconnect": frac(ic_busy),
        },
        interconnect_utilization=frac(ic_busy),
        hot_slots=hot,
    )


# --------------------------------------------------------------------- #
# Service-trace stitching (wall-clock spans + sim-time telemetry)
# --------------------------------------------------------------------- #

#: Chrome-trace process id for the wall-clock request path.  Engine
#: telemetry keeps pids 0-4 (above), so one merged export shows both
#: process families side by side without id collisions.
_PID_SERVICE = 100

#: Track order on the service process: client first, then broker, then
#: workers, mirroring causality top-to-bottom in Perfetto.
_ROLE_TIDS = {"client": 0, "broker": 1, "worker": 2}

_SPAN_CORE_KEYS = frozenset({
    "event", "ts", "pid", "name", "trace_id", "span_id", "parent_id",
    "start_unix", "dur_ms",
})


def spans_from_obslog(events) -> "list[dict]":
    """The ``span`` records of an obslog event list, oldest first.

    Tolerates everything :func:`repro.obslog.read_events` tolerates --
    interleaved multi-process writers, torn tails -- plus records from
    older schema versions (anything without the span core keys is
    skipped, not fatal)."""
    spans = [
        e for e in events
        if e.get("event") == "span"
        and all(k in e for k in ("name", "trace_id", "span_id",
                                 "start_unix", "dur_ms"))
    ]
    spans.sort(key=lambda s: (s["start_unix"], s["span_id"]))
    return spans


def service_trace_ids(events) -> "list[str]":
    """Distinct trace ids in chronological order of first span."""
    seen: "dict[str, None]" = {}
    for span in spans_from_obslog(events):
        seen.setdefault(span["trace_id"], None)
    return list(seen)


def _pick_trace(spans) -> "str | None":
    """Default trace: the one with the most spans (ties: earliest).

    A request that executed (queue wait, attempts, worker span) beats a
    memo hit's two-span trace, which is what a human asking "show me a
    request" wants to see."""
    counts: "dict[str, int]" = {}
    first: "dict[str, float]" = {}
    for span in spans:
        tid = span["trace_id"]
        counts[tid] = counts.get(tid, 0) + 1
        first.setdefault(tid, span["start_unix"])
    if not counts:
        return None
    return min(counts, key=lambda t: (-counts[t], first[t]))


def _span_args(span: dict) -> dict:
    args = {k: v for k, v in span.items()
            if k not in _SPAN_CORE_KEYS and v is not None}
    args["span_id"] = span["span_id"]
    if span.get("parent_id"):
        args["parent_id"] = span["parent_id"]
    return args


def stitch_service_trace(events, trace_id: "str | None" = None,
                         telemetry: "Telemetry | None" = None) -> dict:
    """Merge one request's wall-clock spans with engine telemetry.

    ``events`` is a decoded obslog (:func:`repro.obslog.read_events`);
    ``trace_id`` selects the request (default: the busiest trace).  The
    wall-clock spans become ``ph: "X"`` complete events on the service
    process (client / broker / worker tracks); when ``telemetry`` is
    given, its sim-time Chrome events are time-shifted so cycle zero
    lands on the traced request's successful attempt span -- one
    Perfetto timeline then reads from socket accept down to LSU/ROP
    busy intervals.  (Sim-time durations are simulated-GPU time, not
    host time; the anchor aligns *causality*, not clock rates.)

    Raises ``ValueError`` when the obslog holds no spans for the trace.
    """
    spans = spans_from_obslog(events)
    if trace_id is None:
        trace_id = _pick_trace(spans)
    selected = [s for s in spans if s["trace_id"] == trace_id]
    if not selected:
        raise ValueError(
            f"no span records for trace {trace_id!r}: was the obslog "
            "armed (REPRO_OBSLOG / repro serve --log) while the request "
            "ran?"
        )
    t0 = min(s["start_unix"] for s in selected)

    events_out: "list[dict]" = [
        {"name": "process_name", "ph": "M", "pid": _PID_SERVICE, "tid": 0,
         "args": {"name": f"request path (trace {trace_id[:8]})"}},
    ]
    roles_seen: "dict[int, str]" = {}
    timed: "list[dict]" = []
    for span in selected:
        role = str(span.get("role", "client"))
        tid = _ROLE_TIDS.get(role, len(_ROLE_TIDS))
        roles_seen.setdefault(tid, role)
        timed.append({
            "name": span["name"],
            "cat": "service",
            "ph": "X",
            "pid": _PID_SERVICE,
            "tid": tid,
            "ts": (span["start_unix"] - t0) * 1e6,
            "dur": max(span["dur_ms"], 0.0) * 1e3,
            "args": _span_args(span),
        })
    for tid, role in sorted(roles_seen.items()):
        events_out.append({"name": "thread_name", "ph": "M",
                           "pid": _PID_SERVICE, "tid": tid,
                           "args": {"name": role}})
    timed.sort(key=lambda ev: ev["ts"])

    other = {"trace_id": trace_id, "span_count": len(selected)}
    if telemetry is not None:
        anchored = [s for s in selected
                    if s["name"] == "svc.attempt"
                    and s.get("outcome") == "ok"]
        anchored = anchored or [s for s in selected
                                if s["name"] in ("cell.execute",
                                                 "svc.execute")]
        anchor = anchored[-1]["start_unix"] if anchored else t0
        offset_us = (anchor - t0) * 1e6
        engine = to_chrome_trace(telemetry)
        for ev in engine["traceEvents"]:
            if "ts" in ev:
                ev = dict(ev)
                ev["ts"] = ev["ts"] + offset_us
            timed.append(ev)
        other["engine"] = dict(engine.get("otherData", {}))
        other["anchor_offset_us"] = offset_us

    return {
        "traceEvents": events_out + timed,
        "displayTimeUnit": "ms",
        "otherData": other,
    }
