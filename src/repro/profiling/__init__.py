"""Profiling: training-time breakdowns and warp-stall attribution."""

from repro.profiling.breakdown import (
    PhaseBreakdown,
    compute_kernel_cycles,
    training_breakdown,
)
from repro.profiling.stalls import (
    StallReport,
    atomic_stall_reduction,
    stall_report,
)

__all__ = [
    "PhaseBreakdown",
    "compute_kernel_cycles",
    "training_breakdown",
    "StallReport",
    "atomic_stall_reduction",
    "stall_report",
]
