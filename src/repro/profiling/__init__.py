"""Profiling: training-time breakdowns and warp-stall attribution."""

from repro.profiling.breakdown import (
    PhaseBreakdown,
    compute_kernel_cycles,
    training_breakdown,
)
from repro.profiling.stalls import (
    StallReport,
    atomic_stall_reduction,
    stall_report,
)
from repro.profiling.timeline import (
    TimelineSummary,
    capture_timeline,
    load_timeline,
    save_timeline,
    service_trace_ids,
    spans_from_obslog,
    stitch_service_trace,
    summarize_timeline,
    to_chrome_trace,
)

__all__ = [
    "PhaseBreakdown",
    "compute_kernel_cycles",
    "training_breakdown",
    "StallReport",
    "atomic_stall_reduction",
    "stall_report",
    "TimelineSummary",
    "capture_timeline",
    "load_timeline",
    "save_timeline",
    "service_trace_ids",
    "spans_from_obslog",
    "stitch_service_trace",
    "summarize_timeline",
    "to_chrome_trace",
]
