"""Warp-stall attribution reports (paper Figures 8, 20, 21 and 24).

The paper uses Nsight Compute's stall taxonomy; the simulator's analogue
splits sub-core time into productive issue (math + instruction issue),
LSU stalls (blocked on a full memory-I/O queue -- the atomic bottleneck),
and SM-local-unit stalls (LAB buffer / PHI tag service).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.stats import SimResult

__all__ = ["StallReport", "stall_report", "atomic_stall_reduction"]


@dataclass(frozen=True)
class StallReport:
    """Nsight-style per-kernel stall summary."""

    workload: str
    gpu: str
    strategy: str
    stalls_per_instruction: float
    breakdown: dict[str, float]

    @property
    def lsu_fraction(self) -> float:
        """Share of sub-core time blocked on the LSU (Figure 8's headline:
        >60% for the baseline on both GPUs)."""
        return self.breakdown["lsu_stall"]


def stall_report(result: SimResult) -> StallReport:
    """Summarize one simulation's stall behaviour."""
    return StallReport(
        workload=result.trace_name,
        gpu=result.gpu,
        strategy=result.strategy,
        stalls_per_instruction=result.stalls_per_instruction,
        breakdown=result.stall_breakdown(),
    )


#: Warp-stall noise floor in cycles per instruction.  Real profilers never
#: report a kernel as perfectly stall-free (scoreboard waits, barriers,
#: sampling); a strategy that removes every atomic stall still bottoms out
#: here, which keeps the Figures 20/21 ratios in the regime the paper
#: reports instead of diverging.
STALL_FLOOR_PER_INSTRUCTION = 1.0


def atomic_stall_reduction(baseline: SimResult, improved: SimResult) -> float:
    """Factor by which shader atomic stalls shrank (Figures 20/21).

    Measured on stall cycles per issued instruction, floored at
    :data:`STALL_FLOOR_PER_INSTRUCTION` for both operands.
    """
    if baseline.trace_name != improved.trace_name:
        raise ValueError("stall reduction compares runs of the same trace")
    floor = STALL_FLOOR_PER_INSTRUCTION
    return (
        max(baseline.stalls_per_instruction, floor)
        / max(improved.stalls_per_instruction, floor)
    )
