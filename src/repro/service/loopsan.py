"""Runtime event-loop stall sanitizer: record what *actually* blocks
the loop thread, so the static coroutine-context model can be
cross-checked.

ARC013 (:mod:`repro.lint.rules.asyncsafety`) reasons about a static
model of which blocking calls are reachable in coroutine context.
Static models drift; this module is the runtime ground truth that keeps
ours honest -- the loop-thread sibling of the I/O sanitizer
(:mod:`repro.experiments.iosan`), sharing its ``REPRO_SANITIZE`` gate
and its append-only JSONL discipline.  With ``REPRO_SANITIZE=1`` and a
log path in ``REPRO_LOOPSAN_LOG``, :func:`maybe_install` interposes on
the blocking primitives the classifier is seeded with:

* ``builtins.open`` / ``io.open`` / ``os.open`` (pathlib I/O lands
  here, and so does numpy's savez spooling);
* ``os.replace`` / ``os.rename`` (atomic-rename commits);
* ``time.sleep`` (the canonical injected stall).

A primitive hit is recorded *only when the calling thread is running an
event loop* -- worker threads and executors may block freely, that is
what they are for.  Each record carries the innermost repro frame on
the stack (``module.Class.method``, the same qualified-name vocabulary
the lint layer uses), the measured duration, and a ``stalled`` verdict
against the ``REPRO_LOOPSAN_SLOW_MS`` threshold.  On top of the
primitive shims, :func:`maybe_install` wraps ``asyncio.Handle._run``
with a monotonic per-callback tracker that records any callback
overrunning the threshold, and :func:`arm_loop` sets the loop's own
``slow_callback_duration`` so asyncio's debug-mode reporting agrees
with ours.

The chaos-suite cross-check asserts that the set of frames observed
blocking on the loop thread is a subset of the static
:meth:`~repro.lint.dataflow.asyncctx.AsyncContexts.blocking_model`,
and that an injected ``loop-block`` fault is caught by both layers.
The shim writes its own log through primitives saved at import time
(pre-interposition, iosan's included), so observation never recurses
and never takes down the observed run.  The frame-attribution
vocabulary is deliberately duplicated from the lint layer (the service
must not import ``repro.lint``); the test suite pins the constants
equal.
"""

from __future__ import annotations

import asyncio
import builtins
import io
import json
import os
import sys
import time
from pathlib import Path

__all__ = [
    "DEFAULT_SLOW_MS",
    "LOOPSAN_LOG_ENV",
    "LOOPSAN_SLOW_MS_ENV",
    "SANITIZE_ENV",
    "arm_loop",
    "enabled",
    "installed",
    "maybe_install",
    "observed_frames",
    "read_log",
    "slow_threshold_ms",
    "stalled_frames",
    "uninstall",
]

SANITIZE_ENV = "REPRO_SANITIZE"
LOOPSAN_LOG_ENV = "REPRO_LOOPSAN_LOG"
LOOPSAN_SLOW_MS_ENV = "REPRO_LOOPSAN_SLOW_MS"

#: Default stall threshold.  100 ms is far above any audited append
#: (microseconds) and far below any injected fault (hundreds of ms), so
#: the ``stalled`` verdict is unambiguous on both sides.
DEFAULT_SLOW_MS = 100.0

#: Saved at import, *before* any sanitizer installs: the log writer
#: must bypass every shim (iosan's included) or recording an open would
#: record itself forever.
_pristine_os_open = os.open
_pristine_os_write = os.write
_pristine_os_close = os.close
_pristine_open = builtins.open

#: Directory of the ``repro`` package, for frame attribution.
_REPRO_ROOT = str(Path(__file__).resolve().parents[1])

#: Source files whose frames are sanitizer plumbing, never attribution
#: targets (this module, and iosan's shims which may wrap ours).
_SANITIZER_FILES = (
    str(Path(__file__).resolve()),
    str(Path(__file__).resolve().parents[1] / "experiments" / "iosan.py"),
)

_installed = False
_saved: dict = {}


def enabled() -> bool:
    """Whether the shim should interpose in this process."""
    sanitize = os.environ.get(SANITIZE_ENV, "").strip()
    if sanitize in ("", "0"):
        return False
    return bool(os.environ.get(LOOPSAN_LOG_ENV, "").strip())


def installed() -> bool:
    return _installed


def slow_threshold_ms() -> float:
    """Configured stall threshold in milliseconds."""
    raw = os.environ.get(LOOPSAN_SLOW_MS_ENV, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_SLOW_MS


def _on_loop_thread() -> bool:
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return False
    return True


def _blocking_frame() -> "str | None":
    """Innermost repro frame on the stack, as ``module.Qual.name``.

    This is the frame a stall is *attributed* to: the nearest repro
    code below the primitive, which for ``np.savez_compressed`` is the
    spool writer, not numpy internals.  Returns ``None`` when no repro
    frame is on the stack at all.
    """
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename.startswith(_REPRO_ROOT) \
                and filename not in _SANITIZER_FILES:
            module = frame.f_globals.get("__name__", "")
            qualname = getattr(
                frame.f_code, "co_qualname", frame.f_code.co_name
            )
            return f"{module}.{qualname}" if module else qualname
        frame = frame.f_back
    return None


def _record(op: str, duration_s: float, **fields) -> None:
    """Append one observation via the pristine primitives only."""
    log_path = os.environ.get(LOOPSAN_LOG_ENV, "").strip()
    if not log_path:
        return
    duration_ms = duration_s * 1000.0
    record = {
        "op": op,
        "pid": os.getpid(),
        "duration_ms": round(duration_ms, 3),
        "stalled": duration_ms >= slow_threshold_ms(),
    }
    record.update(fields)
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        fd = _pristine_os_open(
            log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            _pristine_os_write(fd, line.encode("utf-8"))
        finally:
            _pristine_os_close(fd)
    except OSError:
        return  # observation must never take down the observed run


def _timed(op: str, real, detail_fields):
    """A wrapper over primitive *real* that records loop-thread hits."""
    def traced(*args, **kwargs):
        if not _on_loop_thread():
            return real(*args, **kwargs)
        frame = _blocking_frame()
        start = time.perf_counter()
        try:
            return real(*args, **kwargs)
        finally:
            duration = time.perf_counter() - start
            if frame is not None:
                _record(op, duration, frame=frame,
                        **detail_fields(args))
    return traced


def _wrapped_handle_run(real_run):
    """Per-callback stall tracker for ``asyncio.Handle._run``.

    Records only overruns (the per-primitive shims already record every
    attributable hit): a callback that held the loop past the threshold
    yields one ``callback`` record naming the callback, whether or not
    a shimmed primitive was the cause.
    """
    def run(handle):
        start = time.perf_counter()
        try:
            return real_run(handle)
        finally:
            duration = time.perf_counter() - start
            if duration * 1000.0 >= slow_threshold_ms():
                callback = getattr(handle, "_callback", None)
                name = getattr(callback, "__qualname__", None) \
                    or repr(callback)
                _record("callback", duration, callback=name)
    return run


def maybe_install() -> bool:
    """Interpose when :func:`enabled`; True when the shim is active.

    Installs *over* whatever is currently bound (iosan's shims
    included, so both sanitizers observe the same call), and is
    idempotent.  Install iosan first: loopsan saved pristine copies at
    import, so its own log writes bypass both shims either way.
    """
    global _installed
    if not enabled():
        return _installed
    if _installed:
        return True
    _saved.update(
        open=builtins.open, io_open=io.open, os_open=os.open,
        os_replace=os.replace, os_rename=os.rename, sleep=time.sleep,
        handle_run=asyncio.Handle._run,
    )

    def path_of(args):
        return {"detail": str(args[0])} if args else {}

    def dst_of(args):
        return {"detail": str(args[1])} if len(args) > 1 else {}

    def seconds_of(args):
        return {"detail": f"{args[0]:.3f}s"} if args else {}

    builtins.open = _timed("open", _saved["open"], path_of)
    io.open = _timed("open", _saved["io_open"], path_of)
    os.open = _timed("os.open", _saved["os_open"], path_of)
    os.replace = _timed("replace", _saved["os_replace"], dst_of)
    os.rename = _timed("rename", _saved["os_rename"], dst_of)
    time.sleep = _timed("sleep", _saved["sleep"], seconds_of)
    asyncio.Handle._run = _wrapped_handle_run(_saved["handle_run"])
    _installed = True
    return True


def uninstall() -> None:
    """Restore what was bound before install (test cleanup)."""
    global _installed
    if not _saved:
        return
    builtins.open = _saved["open"]
    io.open = _saved["io_open"]
    os.open = _saved["os_open"]
    os.replace = _saved["os_replace"]
    os.rename = _saved["os_rename"]
    time.sleep = _saved["sleep"]
    asyncio.Handle._run = _saved["handle_run"]
    _saved.clear()
    _installed = False


def arm_loop(loop) -> float:
    """Arm asyncio's own slow-callback reporting on *loop*.

    Debug mode makes the loop time every callback and log any that
    exceed ``slow_callback_duration``; aligning it with loopsan's
    threshold means asyncio's report and our JSONL agree on what
    counts as a stall.  Returns the threshold in seconds.
    """
    threshold_s = slow_threshold_ms() / 1000.0
    loop.set_debug(True)
    loop.slow_callback_duration = threshold_s
    return threshold_s


# --------------------------------------------------------------------- #
# Reading a recorded stream back into attributed-frame observations
# --------------------------------------------------------------------- #


def read_log(path) -> list[dict]:
    """Parse a recorded JSONL stream (torn lines skipped, like obslog)."""
    events = []
    try:
        handle = _pristine_open(path, encoding="utf-8")
    except (FileNotFoundError, OSError):
        return events
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
    return events


def observed_frames(events: list[dict]) -> set[str]:
    """Repro frames observed performing a blocking primitive on the
    loop thread.  ``callback`` records carry no frame (they time the
    whole callback, after the fact) and fold out here."""
    return {
        event["frame"] for event in events
        if event.get("frame")
    }


def stalled_frames(events: list[dict]) -> set[str]:
    """The subset of observed frames that overran the threshold."""
    return {
        event["frame"] for event in events
        if event.get("frame") and event.get("stalled")
    }
