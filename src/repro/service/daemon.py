"""The daemon: a unix-socket JSON-lines front end for one broker.

``repro serve`` runs a :class:`ServiceDaemon`; ``repro request`` and
``repro serve --status/--stop`` talk to it with :func:`call`.  The wire
protocol is one JSON object per line in each direction:

* ``{"op": "simulate", "workload": ..., "gpu": ..., "strategy": ...,
  "deadline": ...}`` -> ``{"status": "ok", ...ServiceResponse fields}``
  or ``{"status": "shed"|"deadline"|"failed"|"error", "error": ...}``
  (the status string is the typed rejection's ``kind``, so clients can
  branch without parsing messages);
* ``{"op": "status"}`` -> ``{"status": "ok", "snapshot": {...}}`` (the
  broker's counters, queue occupancy and breaker state);
* ``{"op": "metrics"}`` -> ``{"status": "ok", "metrics": {...},
  "exposition": "..."}`` -- the broker's metrics registry as a JSON
  snapshot plus its Prometheus text rendering (the same bytes served on
  ``--metrics-port``);
* ``{"op": "shutdown"}`` -> ``{"status": "ok"}``; the daemon drains
  in-flight work and exits.

The ``simulate`` op additionally accepts a ``"trace"`` object
(``{"trace_id": ..., "span_id": ...}``): the client's span context,
carried in-band so the broker's ``svc.request`` span joins the client's
trace.  Trace context never travels through the environment -- spawn
workers snapshot env at pool construction (arclint ARC011), so only the
session-scoped ``REPRO_TRACE`` root rides that path.

A unix socket (not TCP) keeps the trust boundary at filesystem
permissions, and line-delimited JSON keeps the protocol debuggable with
``nc -U``.  The daemon installs the runtime sanitizers when
``REPRO_SANITIZE=1`` is set, exactly like the test harness: the I/O
shim (:mod:`repro.experiments.iosan`) cross-checks the static
ARC009-012 write-protocol model, and the loop-stall shim
(:mod:`repro.service.loopsan`) cross-checks the static ARC013
coroutine-blocking model, with ``loop.slow_callback_duration`` armed to
the same threshold.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import tempfile
from pathlib import Path

from repro.experiments import iosan
from repro.service import loopsan
from repro.service.broker import Broker
from repro.service.request import ServiceError, SimRequest

__all__ = ["ServiceDaemon", "call", "default_socket_path"]

SOCKET_ENV = "REPRO_SERVICE_SOCKET"


def default_socket_path() -> Path:
    """``REPRO_SERVICE_SOCKET`` or a per-user path under the tmp dir."""
    raw = os.environ.get(SOCKET_ENV, "").strip()
    if raw:
        return Path(raw)
    return Path(tempfile.gettempdir()) / f"repro-service-{os.getuid()}.sock"


class ServiceDaemon:
    """Serve one :class:`Broker` over a unix socket until shut down."""

    def __init__(self, broker: Broker, socket_path: "str | Path | None" = None,
                 metrics_port: "int | None" = None):
        self.broker = broker
        self.socket_path = Path(
            socket_path if socket_path is not None else default_socket_path()
        )
        self.metrics_port = metrics_port

    async def run(self, ready: "asyncio.Event | None" = None) -> None:
        """Start the broker, listen, and block until a shutdown op."""
        # iosan first, loopsan over it: both then observe one call, and
        # loopsan's pristine-at-import log writer bypasses both shims.
        iosan.maybe_install()
        if loopsan.maybe_install():
            loopsan.arm_loop(asyncio.get_running_loop())
        await self.broker.start()
        self._stopping = asyncio.Event()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.socket_path.unlink(missing_ok=True)
        server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path)
        )
        metrics_server = None
        if self.metrics_port is not None:
            metrics_server = await asyncio.start_server(
                self._handle_metrics, host="127.0.0.1",
                port=self.metrics_port,
            )
            self.broker.emit_event("svc.metrics.listen",
                                   port=self.metrics_port)
        self.broker.emit_event("svc.listen", socket=str(self.socket_path))
        if ready is not None:
            ready.set()
        # SIGINT/SIGTERM request the same clean drain as a shutdown op,
        # so Ctrl-C never strands worker processes or a journal.
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            async with server:
                await self._stopping.wait()
        finally:
            for signum in hooked:
                loop.remove_signal_handler(signum)
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            await self.broker.stop()
            self.socket_path.unlink(missing_ok=True)
            self.broker.emit_event("svc.shutdown",
                                   socket=str(self.socket_path))

    def request_shutdown(self) -> None:
        self._stopping.set()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                shutdown = False
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict):
                        raise ValueError("payload must be a JSON object")
                except ValueError as exc:
                    reply = {"status": "error", "error": f"bad request: {exc}"}
                else:
                    reply = await self._dispatch(payload)
                    shutdown = payload.get("op") == "shutdown"
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()
                if shutdown:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _handle_metrics(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        """One-shot Prometheus scrape: any GET gets the exposition."""
        try:
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            self.broker._refresh_gauges()
            body = self.broker.metrics.render_prometheus().encode("utf-8")
            head = (
                "HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %d\r\n"
                "Connection: close\r\n\r\n" % len(body)
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _dispatch(self, payload: dict) -> dict:
        op = payload.get("op")
        if op == "status":
            return {"status": "ok", "snapshot": self.broker.snapshot()}
        if op == "metrics":
            self.broker._refresh_gauges()
            return {
                "status": "ok",
                "metrics": self.broker.metrics.snapshot(),
                "exposition": self.broker.metrics.render_prometheus(),
            }
        if op == "shutdown":
            self.request_shutdown()
            return {"status": "ok", "stopping": True}
        if op == "simulate":
            trace = payload.get("trace")
            trace = trace if isinstance(trace, dict) else {}
            try:
                request = SimRequest(
                    workload=payload["workload"],
                    gpu=payload.get("gpu", "3060-Sim"),
                    strategy=payload.get("strategy", "baseline"),
                    deadline=payload.get("deadline"),
                    trace_id=trace.get("trace_id"),
                    parent_span=trace.get("span_id"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                return {"status": "error", "error": f"bad request: {exc!r}"}
            try:
                response = await self.broker.submit(request)
            except ServiceError as exc:
                return {"status": exc.kind, "error": str(exc)}
            except Exception as exc:  # never let one request kill the loop
                return {"status": "error", "error": repr(exc)}
            return {"status": "ok", **response.to_dict()}
        return {"status": "error", "error": f"unknown op {op!r}"}


def call(payload: dict, socket_path: "str | Path | None" = None,
         timeout: float = 300.0) -> dict:
    """Send one op to a running daemon and return its decoded reply.

    Synchronous on purpose: this is the client side used by the CLI and
    CI smoke scripts, where an event loop would be overhead.
    """
    path = Path(
        socket_path if socket_path is not None else default_socket_path()
    )
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(path))
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        chunks = []
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ServiceError("daemon closed the connection without replying")
    return json.loads(raw)
