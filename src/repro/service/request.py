"""Typed request/response surface of the simulation service.

A :class:`SimRequest` names *what* to simulate (workload, GPU, strategy
-- the same coordinates as one experiment-matrix cell) plus *how urgent*
it is (an optional deadline).  The broker answers with a
:class:`ServiceResponse` carrying the :class:`~repro.gpu.stats.SimResult`
and its provenance, or raises one of the typed :class:`ServiceError`
rejections so callers can tell "the service refused" (shed, deadline)
apart from "the simulation failed" without parsing strings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu import GPUConfig, SimResult
from repro.obs.tracing import SpanContext

__all__ = [
    "DeadlineExceeded",
    "RequestFailed",
    "RequestShed",
    "ServiceError",
    "ServiceResponse",
    "SimRequest",
]


class ServiceError(RuntimeError):
    """Base of the broker's typed rejections (``kind`` names the class)."""

    kind = "error"


class RequestShed(ServiceError):
    """Admission control rejected the request: the queue is saturated and
    no stale result was available to degrade to."""

    kind = "shed"

    def __init__(self, cell: str, queue_depth: int):
        super().__init__(
            f"request for cell {cell} shed: admission queue "
            f"(depth {queue_depth}) is saturated and no stale result is "
            "available to serve degraded"
        )
        self.cell = cell
        self.queue_depth = queue_depth


class DeadlineExceeded(ServiceError):
    """The request's deadline expired before a result was produced."""

    kind = "deadline"

    def __init__(self, cell: str, deadline: "float | None"):
        super().__init__(
            f"request for cell {cell} missed its deadline"
            + (f" of {deadline:g}s" if deadline is not None else "")
        )
        self.cell = cell
        self.deadline = deadline


class RequestFailed(ServiceError):
    """Every execution avenue (retries, fallback) failed for the request."""

    kind = "failed"

    def __init__(self, cell: str, cause: "BaseException | str"):
        super().__init__(
            f"request for cell {cell} failed terminally: {cause!r}"
        )
        self.cell = cell
        self.cause = cause


@dataclass(frozen=True)
class SimRequest:
    """One simulation request: a matrix cell plus an optional deadline.

    ``deadline`` is relative wall-clock seconds from admission; the
    broker propagates the remaining budget into the per-attempt cell
    timeout (:meth:`~repro.experiments.resilience.RetryPolicy.clamped`)
    and fails the request typed (:class:`DeadlineExceeded`) once it is
    spent -- whether the time went to queueing or to execution.

    ``trace_id`` / ``parent_span`` carry the client's span context
    in-band (the daemon lifts them from the JSON protocol's ``trace``
    object): the broker parents its ``svc.request`` span there so one
    trace runs from the client process into the service.  They change
    nothing about what is computed.
    """

    workload: str
    gpu: "str | GPUConfig"
    strategy: str
    deadline: "float | None" = None
    trace_id: "str | None" = None
    parent_span: "str | None" = None

    def __post_init__(self):
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive seconds (or None)")

    def trace_context(self) -> "SpanContext | None":
        if not self.trace_id or not self.parent_span:
            return None
        return SpanContext(self.trace_id, self.parent_span)


@dataclass
class ServiceResponse:
    """A fulfilled request: the result plus how it was produced.

    ``source`` is where the bytes came from: ``"worker"`` (pool
    execution), ``"inproc"`` (serial degradation -- breaker open or
    retries exhausted), ``"memo"`` (an earlier request for the same key
    completed), ``"journal"`` (recovered from the session journal + disk
    cache after a pool crash) or ``"stale"`` (an engine-mismatched result
    served under load shedding).  ``coalesced`` marks responses that
    piggybacked on another request's execution; ``stale`` responses
    always carry a ``warning``.

    ``trace_id`` / ``span_id`` name the broker's ``svc.request`` span
    for this request; ``exec_span_id`` (when the request executed or
    coalesced onto an execution) names the *shared* ``svc.execute``
    span, so N coalesced client traces all point at the one execution
    that served them.
    """

    cell: str
    key: str
    result: SimResult
    source: str
    coalesced: bool = False
    stale: bool = False
    warning: "str | None" = None
    latency_ms: float = 0.0
    trace_id: "str | None" = None
    span_id: "str | None" = None
    exec_span_id: "str | None" = None

    def to_dict(self) -> dict:
        out = {
            "cell": self.cell,
            "key": self.key,
            "source": self.source,
            "coalesced": self.coalesced,
            "stale": self.stale,
            "warning": self.warning,
            "latency_ms": self.latency_ms,
            "result": self.result.to_dict(),
        }
        if self.trace_id is not None:
            out["trace"] = {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "exec_span_id": self.exec_span_id,
            }
        return out
