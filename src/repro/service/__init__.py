"""Simulation-as-a-service: the async facade over the experiment stack.

The packages below :mod:`repro.experiments` know how to execute one
matrix of cells well (spawn pool, disk cache, manifests, retries); this
package turns them into a *long-running* service:

* :mod:`repro.service.request`    -- typed requests, responses and
  rejections (:class:`SimRequest`, :class:`ServiceResponse`,
  :class:`RequestShed`, :class:`DeadlineExceeded`, :class:`RequestFailed`);
* :mod:`repro.service.broker`     -- admission control, request
  coalescing, deadline propagation, graceful degradation
  (:class:`Broker`);
* :mod:`repro.service.supervisor` -- pool supervision with a
  circuit breaker and health probes (:class:`PoolSupervisor`,
  :class:`CircuitBreaker`);
* :mod:`repro.service.daemon`     -- the ``repro serve`` unix-socket
  JSON-lines daemon and its client (:class:`ServiceDaemon`,
  :func:`call`).

Everything the service persists flows through writer sites the
ARC009-012 process-safety model already certifies (atomic-rename cache
entries, O_APPEND journal and obslog lines); the service layer itself
opens no shared file.
"""

from repro.service.broker import Broker, BrokerStats
from repro.service.daemon import ServiceDaemon, call, default_socket_path
from repro.service.request import (
    DeadlineExceeded,
    RequestFailed,
    RequestShed,
    ServiceError,
    ServiceResponse,
    SimRequest,
)
from repro.service.supervisor import CircuitBreaker, PoolSupervisor

__all__ = [
    "Broker",
    "BrokerStats",
    "CircuitBreaker",
    "DeadlineExceeded",
    "PoolSupervisor",
    "RequestFailed",
    "RequestShed",
    "ServiceDaemon",
    "ServiceError",
    "ServiceResponse",
    "SimRequest",
    "call",
    "default_socket_path",
]
