"""The request broker: admission control, coalescing, degradation.

One :class:`Broker` fronts one persistent spawn worker pool with the
robustness core of the simulation service:

* **fingerprinting** -- every request is content-addressed with the PR 1
  cache key (:func:`~repro.experiments.diskcache.result_key`), so "the
  same simulation" is a fact about bytes, not request identity;
* **coalescing** -- duplicate in-flight requests attach a waiter to the
  existing execution instead of queueing again; the one result fans out
  to every waiter.  Requests for keys that already completed this
  session are answered from the in-memory memo without queueing at all;
* **admission control** -- new work enters a bounded queue.  When it is
  saturated (or a ``queue-full`` fault says to pretend it is) the
  request is *shed* with a typed :class:`RequestShed` -- unless
  degradation is enabled and an engine-mismatched result for the same
  logical request (:func:`~repro.experiments.diskcache.logical_key`)
  exists, in which case that stale result is served with a warning;
* **deadline propagation** -- a request's remaining budget clamps the
  per-attempt cell timeout
  (:meth:`~repro.experiments.resilience.RetryPolicy.clamped`) and
  expires the request typed, whether the time went to queueing or
  execution;
* **supervised execution** -- pool-level failures (crash, timeout) are
  retried with the PR 3 deterministic backoff, reported to the
  :class:`~repro.service.supervisor.PoolSupervisor` (whose breaker may
  take the pool away), recovered from the session journal + disk cache
  where possible, and degraded to in-process serial execution when the
  breaker is open or retries are exhausted.  Recovery never changes
  *what* is computed, so responses stay bit-identical to serial runs.

Process-safety (ARC009-012) shapes the I/O: the broker itself performs
**no direct writes** to any shared file.  Results reach the disk cache
through the worker's existing atomic-rename writer, completions reach
the session journal through :class:`~repro.experiments.manifest.
RunManifest`'s single ``O_APPEND`` write, and telemetry flows through
:func:`repro.obslog.emit` -- all writer sites that the static
process-safety model already proves sound, so the runtime I/O sanitizer
observes nothing new when the daemon runs under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path

from repro import obslog
from repro.experiments import diskcache, faults, parallel, runner
from repro.obs import metrics as obsmetrics
from repro.obs.tracing import Span
from repro.experiments.manifest import RunManifest
from repro.experiments.resilience import RetryPolicy
from repro.gpu import SimResult
from repro.service.request import (
    DeadlineExceeded,
    RequestFailed,
    RequestShed,
    ServiceError,
    ServiceResponse,
    SimRequest,
)
from repro.service.supervisor import CircuitBreaker, PoolSupervisor
from repro.trace.io import save_trace

__all__ = ["Broker", "BrokerStats"]


@dataclass
class BrokerStats:
    """Session counters, exposed verbatim by ``repro serve --status``."""

    requests: int = 0
    admitted: int = 0
    coalesced: int = 0
    memo_hits: int = 0
    shed: int = 0
    degraded: int = 0
    deadline_misses: int = 0
    executions: int = 0
    failures: int = 0
    journal_recoveries: int = 0
    completed: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "coalesced": self.coalesced,
            "memo_hits": self.memo_hits,
            "shed": self.shed,
            "degraded": self.degraded,
            "deadline_misses": self.deadline_misses,
            "executions": self.executions,
            "failures": self.failures,
            "journal_recoveries": self.journal_recoveries,
            "completed": self.completed,
        }


@dataclass
class _Entry:
    """One admitted execution: a unique key plus its attached waiters."""

    spec: parallel.CellSpec
    cell: str
    key: str
    logical: str
    waiters: list = field(default_factory=list)
    deadlines: list = field(default_factory=list)
    #: Tracing: the admitting request's span context (``ctx``) parents
    #: both the queue-wait span (enqueue -> dispatch) and the shared
    #: execution span (dispatch -> completion), which fans out to every
    #: coalesced waiter.
    ctx: object = None
    queue_span: "Span | None" = None
    exec_span: "Span | None" = None

    def effective_deadline(self) -> "float | None":
        """The most generous waiter deadline (None if any waiter has
        none): execution keeps going as long as *someone* can still be
        answered."""
        if any(deadline is None for deadline in self.deadlines):
            return None
        return max(self.deadlines) if self.deadlines else None


class Broker:
    """Asyncio front door to the experiment stack (one per daemon)."""

    def __init__(
        self,
        *,
        jobs: int = 2,
        queue_depth: int = 16,
        concurrency: "int | None" = None,
        policy: "RetryPolicy | None" = None,
        degrade: bool = True,
        breaker: "CircuitBreaker | None" = None,
        probe_timeout: float = 10.0,
        clock=time.monotonic,
        paused: bool = False,
        session: "str | None" = None,
        metrics: "obsmetrics.MetricsRegistry | None" = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.concurrency = concurrency if concurrency is not None else jobs
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.degrade_enabled = degrade
        self.probe_timeout = probe_timeout
        self._breaker = breaker
        self._clock = clock
        self._paused = paused
        self._session = session if session is not None else f"pid{os.getpid()}"
        self.stats = BrokerStats()
        self._started = False
        self._inflight: "dict[str, _Entry]" = {}
        self._results: "dict[str, SimResult]" = {}
        self._stale: "dict[str, tuple[str, SimResult]]" = {}
        self._arrivals: "dict[str, int]" = {}
        self._executions_by_key: "dict[str, int]" = {}
        self._spooled: "set[str]" = set()
        self._journal: "RunManifest | None" = None
        self._journalled: "set[str]" = set()
        self._t0 = self._clock()
        #: Recent wall-clock span durations (ms) by span name, kept in
        #: memory for the bench breakdown -- bounded so a long-lived
        #: daemon cannot grow it without bound.
        self.span_samples: "dict[str, list[float]]" = {}
        self.metrics = (metrics if metrics is not None
                        else obsmetrics.registry())
        self._register_metrics()

    def _register_metrics(self) -> None:
        m = self.metrics
        self._m_requests = m.counter(
            "repro_service_requests_total", "Requests received")
        self._m_admitted = m.counter(
            "repro_service_admitted_total", "Requests admitted to queue")
        self._m_coalesced = m.counter(
            "repro_service_coalesced_total",
            "Requests coalesced onto an in-flight execution")
        self._m_memo = m.counter(
            "repro_service_memo_hits_total",
            "Requests answered from the session memo")
        self._m_shed = m.counter(
            "repro_service_shed_total", "Requests shed at admission")
        self._m_degraded = m.counter(
            "repro_service_degraded_total", "Degraded executions",
            labelnames=("reason",))
        self._m_deadline_miss = m.counter(
            "repro_service_deadline_misses_total",
            "Requests expired before completion")
        self._m_executions = m.counter(
            "repro_service_executions_total", "Pool attempt submissions")
        self._m_failures = m.counter(
            "repro_service_failures_total", "Failed attempts")
        self._m_recoveries = m.counter(
            "repro_service_journal_recoveries_total",
            "Crash recoveries served from journal + disk cache")
        self._m_completed = m.counter(
            "repro_service_completed_total", "Completed executions",
            labelnames=("source",))
        self._m_attempts = m.counter(
            "repro_service_attempts_total", "Attempt outcomes",
            labelnames=("outcome",))
        self._m_queue_depth = m.gauge(
            "repro_service_queue_depth", "Configured queue capacity")
        self._m_queue_size = m.gauge(
            "repro_service_queue_size", "Live queue occupancy")
        self._m_inflight = m.gauge(
            "repro_service_inflight", "In-flight unique executions")
        self._m_deadline_budget = m.histogram(
            "repro_service_deadline_budget_seconds",
            "Deadline budget declared at admission")
        self._m_latency = m.histogram(
            "repro_service_request_latency_seconds",
            "Admission-to-response latency")
        self._m_queue_wait = m.histogram(
            "repro_service_queue_wait_seconds",
            "Enqueue-to-dispatch wait")
        self._m_execute = m.histogram(
            "repro_service_execute_seconds",
            "Dispatch-to-completion execution time")
        self._m_queue_depth.set(self.queue_depth)

    # ----------------------------------------------------------------- #
    # Telemetry plumbing
    # ----------------------------------------------------------------- #

    def emit_event(self, event: str, **fields) -> None:
        """Emit one ``svc.*`` obslog event stamped with ``elapsed_ms``.

        Every service event shares the broker's monotonic clock origin,
        so post-mortem readers can order events without trusting
        wall-clock ``ts`` across processes.
        """
        fields.setdefault(
            "elapsed_ms", round((self._clock() - self._t0) * 1000.0, 3)
        )
        obslog.emit(event, **fields)

    def _sample_span(self, name: str, dur_ms: float) -> None:
        samples = self.span_samples.setdefault(name, [])
        if len(samples) < 4096:
            samples.append(dur_ms)

    def _refresh_gauges(self) -> None:
        self._m_queue_size.set(self._queue.qsize() if self._started else 0)
        self._m_inflight.set(len(self._inflight))

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #

    async def start(self) -> None:
        """Spin up the queue, dispatchers, worker pool and journal."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._queue: "asyncio.Queue[_Entry]" = asyncio.Queue(
            maxsize=self.queue_depth
        )
        self._gate = asyncio.Event()
        if not self._paused:
            self._gate.set()
        self._spool = tempfile.TemporaryDirectory(prefix="repro-svc-")
        cache = diskcache.active_cache()
        cache_root = str(cache.root) if cache is not None else None
        spool_dir = self._spool.name

        def pool_factory():
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=get_context("spawn"),
                initializer=parallel._worker_init,
                initargs=(spool_dir, cache_root, cache_root is not None),
            )

        self._supervisor = PoolSupervisor(
            pool_factory,
            breaker=self._breaker,
            probe_timeout=self.probe_timeout,
            clock=self._clock,
            emit=self.emit_event,
            metrics=self.metrics,
        )
        self._supervisor.start()
        # One thread suffices for serial degradation: it exists so an
        # in-process simulation does not stall the event loop, not for
        # parallelism.  (Deliberately not a process pool: degradation
        # must survive a machine that cannot spawn.)
        self._inproc = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-svc-inproc"
        )
        if cache is not None:
            self._journal = RunManifest.for_service(
                cache.root / "manifests", self._session
            )
            # One journal read at startup, before any request is
            # admitted: nothing is queued yet, so nothing can stall.
            self._journalled = set(self._journal.load())  # arclint: disable=ARC013
        self._dispatchers = [
            self._loop.create_task(self._dispatch_loop())
            for _ in range(max(1, self.concurrency))
        ]
        self._started = True
        self.emit_event("svc.start", jobs=self.jobs,
                        queue_depth=self.queue_depth,
                        concurrency=self.concurrency, session=self._session,
                        degrade=self.degrade_enabled)

    async def stop(self, drain: bool = True) -> None:
        """Stop dispatchers and the pool; optionally drain queued work."""
        if not self._started:
            return
        if drain:
            self.resume()
            await self._queue.join()
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._supervisor.shutdown()
        self._inproc.shutdown(wait=False)
        if self._journal is not None:
            self._journal.discard()
        self._spool.cleanup()
        self._started = False
        self.emit_event("svc.stop", **self.stats.as_dict())

    def pause(self) -> None:
        """Hold dispatchers off the queue (admission keeps running)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    # ----------------------------------------------------------------- #
    # Admission
    # ----------------------------------------------------------------- #

    async def submit(self, request: SimRequest) -> ServiceResponse:
        """Admit one request and await its result.

        Everything up to the enqueue (memo lookup, coalescing, admission
        control) happens synchronously before the first ``await``, so
        requests submitted in order are admitted in order -- which is
        what makes coalesce/shed counts deterministic under test.  (The
        tracing wrapper preserves that: ``await`` on a fresh coroutine
        runs it synchronously up to its first real suspension.)

        The whole call is covered by a ``svc.request`` span parented on
        the client-supplied trace context (carried in-band through the
        JSON protocol, never through the environment -- workers snapshot
        env at pool construction).  Tracing changes no control flow, so
        responses stay bit-identical to the tracing-off path.

        Raises :class:`RequestShed`, :class:`DeadlineExceeded` or
        :class:`RequestFailed`.
        """
        if not self._started:
            raise ServiceError("broker is not started")
        req_span = Span("svc.request", parent=request.trace_context(),
                        role="broker")
        try:
            response = await self._submit(request, req_span)
        except RequestShed:
            req_span.end(outcome="shed")
            raise
        except DeadlineExceeded:
            req_span.end(outcome="deadline")
            raise
        except ServiceError as exc:
            req_span.end(outcome="error", error=type(exc).__name__)
            raise
        self._m_latency.observe(response.latency_ms / 1000.0)
        response.trace_id = req_span.context.trace_id
        response.span_id = req_span.context.span_id
        extra = ({"exec_span_id": response.exec_span_id}
                 if response.exec_span_id else {})
        req_span.end(outcome=response.source, cell=response.cell,
                     coalesced=response.coalesced, **extra)
        return response

    async def _submit(self, request: SimRequest,
                      req_span: Span) -> ServiceResponse:
        admitted_at = self._clock()
        config = runner._gpu_by_name(request.gpu)
        spec = parallel.CellSpec(request.workload, config, request.strategy)
        cell = spec.cell_id
        trace = runner.get_trace(request.workload)
        strategy = runner.make_strategy(request.strategy)
        # result_key hashes the engine fingerprint, whose source read
        # is process-wide memoized: only the first admission ever
        # touches disk, every later call is an in-memory hash.
        key = diskcache.result_key(config, trace, strategy)  # arclint: disable=ARC013
        logical = diskcache.logical_key(config, trace, strategy)
        deadline = (None if request.deadline is None
                    else admitted_at + request.deadline)
        self.stats.requests += 1
        self._m_requests.inc()
        if request.deadline is not None:
            self._m_deadline_budget.observe(request.deadline)
        self.emit_event("svc.accept", cell=cell, key=key,
                        deadline=request.deadline,
                        trace_id=req_span.context.trace_id)

        memo = self._results.get(key)
        if memo is not None:
            self.stats.memo_hits += 1
            self._m_memo.inc()
            return self._response(cell, key, memo, "memo", admitted_at)

        entry = self._inflight.get(key)
        if entry is not None:
            waiter = self._loop.create_future()
            entry.waiters.append(waiter)
            entry.deadlines.append(deadline)
            self.stats.coalesced += 1
            self._m_coalesced.inc()
            self.emit_event("svc.coalesce", cell=cell, key=key,
                            waiters=len(entry.waiters))
            return await self._await_waiter(
                waiter, cell, key, request.deadline, deadline, admitted_at,
                coalesced=True,
            )

        arrival = self._arrivals.get(cell, 0) + 1
        self._arrivals[cell] = arrival
        # Deliberate chaos hook: a planned loop-block fault sleeps on
        # the loop thread right here, so the suite can prove the static
        # rule and the runtime loop sanitizer both catch the stall.
        faults.on_admission(cell, arrival)  # arclint: disable=ARC013
        saturated = (
            self._queue.full() or faults.planned_queue_full(cell, arrival)
        )
        if saturated:
            return self._shed_or_degrade(
                cell, key, logical, admitted_at, deadline
            )

        self._ensure_spooled(request.workload, trace)
        entry = _Entry(spec=spec, cell=cell, key=key, logical=logical)
        entry.ctx = req_span.context
        entry.queue_span = Span("svc.queue_wait", parent=req_span.context,
                                role="broker", cell=cell, key=key)
        waiter = self._loop.create_future()
        entry.waiters.append(waiter)
        entry.deadlines.append(deadline)
        self._inflight[key] = entry
        # Cannot raise QueueFull: occupancy was checked above and no
        # await happened since.
        self._queue.put_nowait(entry)
        self.stats.admitted += 1
        self._m_admitted.inc()
        self._refresh_gauges()
        return await self._await_waiter(
            waiter, cell, key, request.deadline, deadline, admitted_at,
            coalesced=False,
        )

    def _shed_or_degrade(self, cell: str, key: str, logical: str,
                         admitted_at: float,
                         deadline: "float | None") -> ServiceResponse:
        stale = self._stale.get(logical) if self.degrade_enabled else None
        if stale is not None:
            stale_key, result = stale
            self.stats.degraded += 1
            self._m_degraded.inc(reason="queue-full")
            warning = (
                "served stale: queue saturated; result computed for an "
                f"earlier engine fingerprint (key {stale_key[:12]}...)"
            )
            self.emit_event("svc.degrade", cell=cell, key=key,
                            reason="queue-full", stale_key=stale_key)
            response = self._response(
                cell, stale_key, result, "stale", admitted_at
            )
            response.stale = True
            response.warning = warning
            return response
        self.stats.shed += 1
        self._m_shed.inc()
        # Post-mortem correlation needs the state *at shed time*: the
        # live occupancy (queue_size; queue_depth is the configured
        # capacity) and how much of the request's budget was left.
        remaining = (None if deadline is None
                     else max(0.0, deadline - self._clock()))
        self.emit_event("svc.shed", cell=cell, key=key,
                        queue_depth=self.queue_depth,
                        queue_size=self._queue.qsize(),
                        deadline_remaining=remaining)
        raise RequestShed(cell, self.queue_depth)

    async def _await_waiter(self, waiter, cell: str, key: str,
                            deadline_s: "float | None",
                            deadline: "float | None",
                            admitted_at: float,
                            coalesced: bool) -> ServiceResponse:
        timeout = (None if deadline is None
                   else max(0.0, deadline - self._clock()))
        try:
            result, source, exec_span_id = await asyncio.wait_for(
                waiter, timeout
            )
        except asyncio.TimeoutError:
            self.stats.deadline_misses += 1
            self._m_deadline_miss.inc()
            self.emit_event("svc.deadline", cell=cell, deadline=deadline_s)
            raise DeadlineExceeded(cell, deadline_s) from None
        response = self._response(cell, key, result, source, admitted_at)
        response.coalesced = coalesced
        response.exec_span_id = exec_span_id
        return response

    def _response(self, cell: str, key: str, result: SimResult,
                  source: str, admitted_at: float) -> ServiceResponse:
        latency_ms = (self._clock() - admitted_at) * 1000.0
        return ServiceResponse(
            cell=cell, key=key, result=result, source=source,
            latency_ms=latency_ms,
        )

    def _ensure_spooled(self, workload: str, trace) -> None:
        if workload in self._spooled:
            return
        # Once-per-workload spool write; amortized across every request
        # for that workload and measured in the smoke suite.  Loopsan
        # still observes it -- it is in the static model, not hidden.
        save_trace(trace, Path(self._spool.name) / f"{workload}.npz")  # arclint: disable=ARC013
        self._spooled.add(workload)

    # ----------------------------------------------------------------- #
    # Dispatch
    # ----------------------------------------------------------------- #

    async def _dispatch_loop(self) -> None:
        while True:
            await self._gate.wait()
            entry = await self._queue.get()
            try:
                await self._execute(entry)
            except asyncio.CancelledError:
                self._fail(entry, ServiceError(
                    f"service stopped while executing cell {entry.cell}"
                ))
                raise
            except Exception as exc:  # defensive: a loop must not die
                self._fail(entry, RequestFailed(entry.cell, exc))
            finally:
                self._queue.task_done()

    async def _execute(self, entry: _Entry) -> None:
        if entry.queue_span is not None:
            wait_ms = entry.queue_span.end(queue_size=self._queue.qsize())
            self._sample_span("svc.queue_wait", wait_ms)
            self._m_queue_wait.observe(wait_ms / 1000.0)
            entry.queue_span = None
        parent = entry.ctx
        # One execution span covers every attempt and fans out to every
        # coalesced waiter (its context rides the waiter result tuple).
        entry.exec_span = Span("svc.execute", parent=parent, role="broker",
                               cell=entry.cell, key=entry.key)
        self._refresh_gauges()
        last_error: "BaseException | str" = "no attempt ran"
        for attempt in range(1, self.policy.max_attempts + 1):
            deadline = entry.effective_deadline()
            remaining = (None if deadline is None
                         else deadline - self._clock())
            if remaining is not None and remaining <= 0:
                self.stats.deadline_misses += 1
                self._m_deadline_miss.inc()
                self.emit_event("svc.deadline", cell=entry.cell,
                                in_queue=True)
                self._fail(entry, DeadlineExceeded(entry.cell, None))
                return
            policy = self.policy.clamped(remaining)
            attempt_span = Span(
                "svc.attempt", parent=entry.exec_span.context,
                role="broker", cell=entry.cell, attempt=attempt,
            )
            pool = await self._supervisor.acquire()
            if pool is None:
                attempt_span.end(outcome="breaker-open")
                self._m_attempts.inc(outcome="breaker-open")
                await self._degrade_inproc(entry, attempt, "breaker-open")
                return
            self.stats.executions += 1
            self._m_executions.inc()
            self._executions_by_key[entry.key] = (
                self._executions_by_key.get(entry.key, 0) + 1
            )
            cell_future = None
            try:
                # submit() itself can raise: a worker crash elsewhere
                # breaks the shared pool between acquire() and here.
                cell_future = pool.submit(
                    parallel._run_spec, entry.spec, attempt
                )
                result = await asyncio.wait_for(
                    asyncio.wrap_future(cell_future), policy.timeout
                )
            except asyncio.TimeoutError:
                cell_future.cancel()
                self._supervisor.fail("timeout")
                last_error = f"attempt exceeded {policy.timeout:g}s"
                outcome = "timeout"
            except asyncio.CancelledError:
                if not cell_future.cancelled():
                    attempt_span.end(outcome="cancelled")
                    raise  # our own task was cancelled (shutdown)
                # The pool was abandoned under us by another dispatcher's
                # failure; treat like a crash of our own future.
                if self._recover_from_journal(entry, attempt_span):
                    return
                last_error = "pool abandoned mid-flight"
                outcome = "crash"
            except BrokenProcessPool as exc:
                self._supervisor.fail("crash")
                if self._recover_from_journal(entry, attempt_span):
                    return
                last_error = exc
                outcome = "crash"
            except Exception as exc:
                if cell_future is None:
                    # submit() failed before a future existed: the pool
                    # was abandoned by another dispatcher's failure
                    # ("cannot schedule new futures after shutdown") --
                    # a pool-level incident, not a cell failure.
                    self._supervisor.fail("crash")
                    if self._recover_from_journal(entry, attempt_span):
                        return
                    last_error = exc
                    outcome = "crash"
                else:
                    # Task-level error: the pool answered, so the
                    # breaker sees a healthy pool even though the cell
                    # failed.
                    self._supervisor.ok()
                    last_error = exc
                    outcome = "error"
            else:
                self._supervisor.ok()
                attempt_span.end(outcome="ok")
                self._m_attempts.inc(outcome="ok")
                self._complete(entry, result, "worker")
                return
            self.stats.failures += 1
            self._m_failures.inc()
            attempt_span.end(outcome=outcome)
            self._m_attempts.inc(outcome=outcome)
            self.emit_event("svc.attempt", cell=entry.cell, attempt=attempt,
                            outcome=outcome, error=repr(last_error))
            if attempt < self.policy.max_attempts:
                await asyncio.sleep(self.policy.delay(entry.key, attempt + 1))
        await self._degrade_inproc(
            entry, self.policy.max_attempts + 1, "retries-exhausted",
            last_error,
        )

    async def _degrade_inproc(self, entry: _Entry, attempt: int,
                              reason: str,
                              last_error: "BaseException | str | None" = None,
                              ) -> None:
        """Serial in-process execution: the service's answer of last
        resort, mirroring the resilience layer's fallback (and the
        paper's own philosophy -- degrade, don't fail)."""
        self.stats.degraded += 1
        self._m_degraded.inc(reason=reason)
        self.emit_event("svc.degrade", cell=entry.cell, reason=reason,
                        attempt=attempt)
        try:
            result = await self._loop.run_in_executor(
                self._inproc, parallel._fallback_spec, entry.spec, attempt
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.failures += 1
            self._m_failures.inc()
            self._fail(entry, RequestFailed(entry.cell, exc))
            return
        self._complete(entry, result, "inproc")

    def _recover_from_journal(self, entry: _Entry,
                              attempt_span: "Span | None" = None) -> bool:
        """After a pool crash, serve the entry from journal + disk cache
        instead of re-executing, when a previous completion wrote both."""
        if entry.key not in self._journalled and self._journal is not None:
            # Crash-recovery path only: the pool just died, every
            # in-flight request is already stalled on its restart.
            self._journalled = set(self._journal.load())  # arclint: disable=ARC013
        if entry.key not in self._journalled:
            return False
        cache = diskcache.active_cache()
        if cache is None:
            return False
        # Same crash-recovery path: one cache read replaces a full
        # re-execution through a freshly respawned pool.
        result = cache.load(entry.key)  # arclint: disable=ARC013
        if result is None:
            return False
        self.stats.journal_recoveries += 1
        self._m_recoveries.inc()
        if attempt_span is not None:
            attempt_span.end(outcome="crash", recovered=True)
            self._m_attempts.inc(outcome="crash")
        self.emit_event("svc.recover", cell=entry.cell, key=entry.key,
                        source="journal")
        self._complete(entry, result, "journal")
        return True

    # ----------------------------------------------------------------- #
    # Completion
    # ----------------------------------------------------------------- #

    def _complete(self, entry: _Entry, result: SimResult,
                  source: str) -> None:
        self._inflight.pop(entry.key, None)
        self._results[entry.key] = result
        self._stale[entry.logical] = (entry.key, result)
        runner.seed_result(
            entry.spec.workload, entry.spec.gpu, entry.spec.strategy, result
        )
        if self._journal is not None:
            self._journal.record(entry.key, {
                "workload": entry.spec.workload,
                "gpu": entry.spec.gpu.name,
                "strategy": entry.spec.strategy,
            })
            self._journalled.add(entry.key)
        self.stats.completed += 1
        self._m_completed.inc(source=source)
        exec_span_id = None
        if entry.exec_span is not None:
            exec_span_id = entry.exec_span.context.span_id
            exec_ms = entry.exec_span.end(
                outcome="ok", source=source, fanout=len(entry.waiters)
            )
            self._sample_span("svc.execute", exec_ms)
            self._m_execute.observe(exec_ms / 1000.0)
            entry.exec_span = None
        self._refresh_gauges()
        self.emit_event("svc.finish", cell=entry.cell, key=entry.key,
                        source=source, waiters=len(entry.waiters))
        for waiter in entry.waiters:
            if not waiter.done():
                waiter.set_result((result, source, exec_span_id))

    def _fail(self, entry: _Entry, error: ServiceError) -> None:
        self._inflight.pop(entry.key, None)
        if entry.queue_span is not None:
            entry.queue_span.end(status="error")
            entry.queue_span = None
        if entry.exec_span is not None:
            entry.exec_span.end(
                outcome="fail", kind=getattr(error, "kind", "error"),
                fanout=len(entry.waiters),
            )
            entry.exec_span = None
        self._refresh_gauges()
        self.emit_event("svc.fail", cell=entry.cell, key=entry.key,
                        kind=getattr(error, "kind", "error"),
                        error=str(error))
        for waiter in entry.waiters:
            if not waiter.done():
                waiter.set_exception(error)

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #

    def executions_for(self, key: str) -> int:
        """Pool submissions recorded for *key* (test/diagnostic hook)."""
        return self._executions_by_key.get(key, 0)

    def snapshot(self) -> dict:
        snap = {
            "session": self._session,
            "jobs": self.jobs,
            "queue": {
                "depth": self.queue_depth,
                "size": self._queue.qsize() if self._started else 0,
            },
            "inflight": len(self._inflight),
            "memoized": len(self._results),
            "stats": self.stats.as_dict(),
        }
        if self._started:
            snap["supervisor"] = self._supervisor.snapshot()
        return snap
