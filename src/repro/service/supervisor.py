"""Worker-pool supervision: circuit breaker + health-probed respawn.

The broker's spawn pool can fail in two pool-level ways -- a worker
crash (:class:`BrokenProcessPool`) or a hung cell that forces the pool
to be abandoned -- and both are *expensive*: every respawn pays spawn
start-up for ``jobs`` interpreters.  A machine that is out of memory or
has a poisoned environment will fail every respawn the same way, so
blindly respawning per failure turns one sick host into a crash loop.

:class:`CircuitBreaker` implements the classic three-state machine:

* ``closed``    -- normal operation; consecutive pool-level failures are
  counted and reset on any success;
* ``open``      -- ``threshold`` consecutive failures tripped the
  breaker; the pool is abandoned and requests degrade to in-process
  serial execution (the broker's job) until a backoff expires.  The
  backoff grows exponentially with consecutive trips, so a persistently
  sick host is probed ever less often;
* ``half-open`` -- the backoff expired; the next acquisition runs a
  single cheap health probe (:func:`_pool_probe`) on a *fresh* pool.
  Success closes the breaker, failure re-opens it with a doubled
  backoff.

Time comes from an injectable ``clock`` so the chaos suite can walk the
state machine deterministically.  State transitions are published as
``svc.breaker`` obslog events.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures.process import BrokenProcessPool

from repro import obslog
from repro.experiments.resilience import _abandon_pool
from repro.obs import metrics as obsmetrics

__all__ = ["CircuitBreaker", "PoolSupervisor"]


def _pool_probe() -> str:
    """Worker-side health probe: proves the pool can spawn, receive a
    task and answer.  Reads no globals and no environment -- a probe
    must not depend on any state the spawned interpreter could lack."""
    return "ok"


class CircuitBreaker:
    """Consecutive-failure breaker with exponential probe backoff."""

    def __init__(
        self,
        threshold: int = 3,
        backoff_base: float = 0.25,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self._clock = clock
        self._failures = 0   # consecutive pool-level failures
        self._trips = 0      # consecutive trips (resets on success)
        self.trips_total = 0
        self.open_backoff = 0.0
        self._state = "closed"
        self._open_until = 0.0

    @property
    def state(self) -> str:
        """``closed`` | ``open`` | ``half-open`` (open with backoff spent)."""
        if self._state == "open" and self._clock() >= self._open_until:
            return "half-open"
        return self._state

    def record_failure(self) -> bool:
        """Count one pool-level failure; True when this one tripped it.

        While the breaker is already open (a failed half-open probe
        lands here), the trip is renewed with the next, larger backoff.
        """
        self._failures += 1
        if self._state == "open" or self._failures >= self.threshold:
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self.open_backoff = min(
            self.backoff_base * self.backoff_factor ** self._trips,
            self.backoff_max,
        )
        self._trips += 1
        self.trips_total += 1
        self._state = "open"
        self._open_until = self._clock() + self.open_backoff

    def record_success(self) -> None:
        self._failures = 0
        self._trips = 0
        self._state = "closed"

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "trips_total": self.trips_total,
            "open_backoff": self.open_backoff,
        }


class PoolSupervisor:
    """Owns the broker's spawn pool and mediates access through the
    breaker.

    Dispatchers call :meth:`acquire` before each pool submission; it
    returns the live executor, or ``None`` while the breaker holds
    traffic off the pool (the caller then degrades).  Pool-level
    failures are reported through :meth:`fail`, successes through
    :meth:`ok`.
    """

    #: Breaker state encoded for the ``repro_service_breaker_state``
    #: gauge (Prometheus wants a number, not a string).
    _STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}

    def __init__(self, pool_factory, *, breaker: "CircuitBreaker | None" = None,
                 probe_timeout: float = 10.0, clock=time.monotonic,
                 emit=None, metrics=None):
        self._pool_factory = pool_factory
        self.breaker = breaker if breaker is not None else (
            CircuitBreaker(clock=clock)
        )
        self.probe_timeout = probe_timeout
        self.restarts = 0
        self.probes = 0
        self.probe_failures = 0
        self._pool = None
        self._probe_lock = asyncio.Lock()
        # The broker injects its elapsed_ms-stamping emitter so every
        # svc.* event shares one timing field; standalone supervisors
        # (unit tests) fall back to the raw obslog writer.
        self._emit = emit if emit is not None else obslog.emit
        if metrics is None:
            metrics = obsmetrics.registry()
        self._m_state = metrics.gauge(
            "repro_service_breaker_state",
            "Circuit breaker state (0 closed, 1 half-open, 2 open)")
        self._m_trips = metrics.counter(
            "repro_service_breaker_trips_total", "Breaker trips")
        self._m_restarts = metrics.counter(
            "repro_service_pool_restarts_total", "Worker pool respawns")
        self._m_probes = metrics.counter(
            "repro_service_pool_probes_total", "Half-open health probes",
            labelnames=("outcome",))
        self._m_state.set(self._STATE_CODES.get(self.breaker.state, 0))

    def _set_state_gauge(self) -> None:
        self._m_state.set(self._STATE_CODES.get(self.breaker.state, 0))

    def start(self) -> None:
        if self._pool is None:
            self._pool = self._pool_factory()

    async def acquire(self):
        """The live pool, or ``None`` while the breaker is open."""
        state = self.breaker.state
        if state == "closed":
            if self._pool is None:
                self._respawn()
            return self._pool
        if state == "open":
            return None
        # Half-open: exactly one probe decides for everyone waiting.
        async with self._probe_lock:
            if self.breaker.state == "closed":
                return self._pool  # a concurrent probe already healed it
            if self.breaker.state == "open":
                return None  # a concurrent probe already failed
            return await self._probe()

    async def _probe(self):
        self.probes += 1
        self._m_state.set(self._STATE_CODES["half-open"])
        self._emit("svc.breaker", state="half-open", probes=self.probes)
        if self._pool is None:
            self._pool = self._pool_factory()
        probe_future = self._pool.submit(_pool_probe)
        try:
            await asyncio.wait_for(
                asyncio.wrap_future(probe_future), self.probe_timeout
            )
        except (asyncio.TimeoutError, BrokenProcessPool, OSError) as exc:
            self._probe_failed(repr(exc))
            return None
        except asyncio.CancelledError:
            if probe_future.cancelled():
                self._probe_failed("probe future cancelled")
                return None
            raise
        self.breaker.record_success()
        self._m_probes.inc(outcome="ok")
        self._set_state_gauge()
        self._emit("svc.breaker", state="closed", reason="probe-ok")
        return self._pool

    def _probe_failed(self, error: str) -> None:
        self.probe_failures += 1
        self._abandon()
        self.breaker.record_failure()
        self._m_probes.inc(outcome="failed")
        self._m_trips.inc()
        self._set_state_gauge()
        self._emit("svc.breaker", state="open", reason="probe-failed",
                   error=error, backoff=self.breaker.open_backoff)

    def fail(self, reason: str) -> None:
        """A dispatcher observed a pool-level failure (crash/timeout).

        The pool is always abandoned (it is broken or hosts a hung
        worker either way).  While the breaker stays closed the pool is
        respawned immediately; the failure that trips it leaves the pool
        down until a half-open probe heals it.
        """
        self._abandon()
        if self.breaker.state != "closed":
            # Already open: concurrent dispatchers reporting the same
            # incident must not extend the backoff.
            return
        if self.breaker.record_failure():
            self._m_trips.inc()
            self._set_state_gauge()
            self._emit(
                "svc.breaker", state="open", reason=reason,
                failures=self.breaker.threshold,
                backoff=self.breaker.open_backoff,
            )
        else:
            self._respawn()

    def ok(self) -> None:
        self.breaker.record_success()
        self._set_state_gauge()

    def _abandon(self) -> None:
        if self._pool is not None:
            _abandon_pool(self._pool)
            self._pool = None

    def _respawn(self) -> None:
        self.restarts += 1
        self._m_restarts.inc()
        self._emit("svc.pool.restart", restarts=self.restarts)
        self._pool = self._pool_factory()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def snapshot(self) -> dict:
        return {
            "breaker": self.breaker.snapshot(),
            "restarts": self.restarts,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "pool_live": self._pool is not None,
        }
