"""Warp-level primitives: lane masks and active-thread bookkeeping.

A warp is 32 threads executing in lock-step.  Throughout the simulator a
warp's *active mask* is a 32-bit integer where bit ``i`` set means lane ``i``
participates in the current operation, mirroring CUDA's ``__activemask()``
semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WARP_SIZE",
    "FULL_MASK",
    "popcount",
    "mask_from_lanes",
    "lanes_from_mask",
    "mask_from_bools",
    "bools_from_mask",
    "lowest_lane",
]

#: Number of threads in a warp on every NVIDIA GPU generation modeled here.
WARP_SIZE = 32

#: Mask with all 32 lanes active (CUDA's ``0xffffffff``).
FULL_MASK = (1 << WARP_SIZE) - 1


def popcount(mask: int) -> int:
    """Number of set bits (active lanes) in *mask* -- CUDA's ``__popc``."""
    if not 0 <= mask <= FULL_MASK:
        raise ValueError(f"mask {mask:#x} outside 32-bit range")
    return int(mask).bit_count()


def mask_from_lanes(lanes: "list[int] | np.ndarray") -> int:
    """Build an active mask from an iterable of lane indices."""
    mask = 0
    for lane in lanes:
        lane = int(lane)
        if not 0 <= lane < WARP_SIZE:
            raise ValueError(f"lane {lane} outside warp of {WARP_SIZE}")
        mask |= 1 << lane
    return mask


def lanes_from_mask(mask: int) -> list[int]:
    """Lane indices set in *mask*, in ascending order."""
    if not 0 <= mask <= FULL_MASK:
        raise ValueError(f"mask {mask:#x} outside 32-bit range")
    return [lane for lane in range(WARP_SIZE) if mask >> lane & 1]


def mask_from_bools(active: np.ndarray) -> int:
    """Active mask from a length-32 boolean array (lane ``i`` = index ``i``)."""
    active = np.asarray(active, dtype=bool)
    if active.shape != (WARP_SIZE,):
        raise ValueError(f"expected shape ({WARP_SIZE},), got {active.shape}")
    return int(np.packbits(active, bitorder="little").view(np.uint32)[0])


def bools_from_mask(mask: int) -> np.ndarray:
    """Length-32 boolean array from an active mask."""
    if not 0 <= mask <= FULL_MASK:
        raise ValueError(f"mask {mask:#x} outside 32-bit range")
    bits = np.frombuffer(np.uint32(mask).tobytes(), dtype=np.uint8)
    return np.unpackbits(bits, bitorder="little").astype(bool)


def lowest_lane(mask: int) -> int:
    """Lowest set lane -- the "leader" thread in ARC-SW's serialized path.

    Raises :class:`ValueError` on an empty mask because a leaderless group
    is a programming error in every caller.
    """
    if mask == 0:
        raise ValueError("empty mask has no leader lane")
    if not 0 <= mask <= FULL_MASK:
        raise ValueError(f"mask {mask:#x} outside 32-bit range")
    return (mask & -mask).bit_length() - 1
