"""ARC-HW area-overhead model (paper §5.4).

The paper synthesizes the reduction-unit FPU with Yosys and reports it
under 70K transistors; one FPU per sub-core on an RTX 4090 (128 SMs x 4
sub-cores) adds ~35.8M transistors, about 0.047% of the GPU's 76 billion.
This module reproduces that arithmetic for any simulated configuration.
"""

from __future__ import annotations

from repro.gpu.config import GPUConfig

__all__ = [
    "TRANSISTORS_PER_FPU",
    "GPU_TOTAL_TRANSISTORS",
    "reduction_unit_transistors",
    "area_overhead_fraction",
]

#: Yosys-estimated transistor count of one reduction-unit FPU (§5.4).
TRANSISTORS_PER_FPU = 70_000

#: Published total transistor counts of the modeled GPUs.
GPU_TOTAL_TRANSISTORS: dict[str, float] = {
    "4090-Sim": 76.3e9,   # AD102
    "3060-Sim": 12.0e9,   # GA106
}


def reduction_unit_transistors(config: GPUConfig) -> int:
    """Total transistors ARC-HW adds: one FPU per sub-core."""
    return config.num_subcores * TRANSISTORS_PER_FPU


def area_overhead_fraction(config: GPUConfig,
                           total_transistors: float | None = None) -> float:
    """ARC-HW transistor overhead as a fraction of the whole GPU.

    Uses the published total for known configs; pass *total_transistors*
    for custom ones.
    """
    if total_transistors is None:
        try:
            total_transistors = GPU_TOTAL_TRANSISTORS[config.name]
        except KeyError:
            raise ValueError(
                f"no published transistor count for {config.name!r}; "
                "pass total_transistors explicitly"
            ) from None
    if total_transistors <= 0:
        raise ValueError("total_transistors must be positive")
    return reduction_unit_transistors(config) / total_transistors
