"""Opt-in time-resolved instrumentation for the timing engine.

:func:`~repro.gpu.engine.simulate_kernel` accepts an optional
:class:`Telemetry` collector.  When one is supplied, the engine records
*where simulated time went*, not just the end-of-kernel aggregates of
:class:`~repro.gpu.stats.SimResult`:

* **sub-core phase spans** -- per warp batch, one span per phase the
  sub-core moved through: gradient math (``compute``), strategy
  instruction issue (``issue``), blocking on an SM-local unit
  (``local_unit``: LAB buffer / PHI tag service), and waiting for a full
  LSU queue (``lsu_wait``);
* **resource busy intervals** -- LSU queue entries held per SM, ROP-unit
  service per memory partition (with the destination slot, for
  hot-address attribution), interconnect occupancy, and ARC-HW
  reduction-unit busy time per sub-core.

Every stamp is *simulation* time in shader cycles -- the collector never
reads a wall clock (ARC002) -- so recording is deterministic and the
engine's event order, results and ``SimResult`` output are bit-identical
with telemetry on or off.  The collector is deliberately dumb: plain
list appends on the hot path, no binning, no derived state.  Exporters
and summaries (Perfetto trace-event JSON, compact NPZ/JSON timelines,
occupancy statistics) live in :mod:`repro.profiling.timeline`, outside
the engine packages.

With ``telemetry=None`` (the default) the engine pays one predicate test
per instrumentation point and allocates nothing, which keeps the hot
path within noise of the uninstrumented engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.base import AtomicStrategy
    from repro.gpu.config import GPUConfig
    from repro.gpu.stats import SimResult
    from repro.trace.events import KernelTrace

__all__ = ["PHASES", "Telemetry"]

#: Sub-core phase names, in the order a batch moves through them.
PHASES = ("compute", "issue", "local_unit", "lsu_wait")


class Telemetry:
    """Collects per-batch spans and resource busy intervals.

    All times are simulated shader cycles.  The record layouts are plain
    tuples (documented per attribute) so the engine's appends stay cheap;
    :meth:`as_dict` converts to a JSON-friendly structure for exporters.
    """

    __slots__ = ("meta", "spans", "lsu_intervals", "rop_intervals",
                 "ic_intervals", "ru_intervals")

    def __init__(self) -> None:
        #: Simulation identity and topology, filled by :meth:`attach` /
        #: :meth:`finish`.
        self.meta: dict = {}
        #: ``(subcore, warp, batch, phase, start, end)`` per batch phase.
        self.spans: list[tuple] = []
        #: ``(sm, start, end)`` -- one LSU queue entry held on *sm*.
        self.lsu_intervals: list[tuple] = []
        #: ``(partition, slot, rop_ops, start, end)`` -- one transaction
        #: serviced by a ROP unit of *partition*.
        self.rop_intervals: list[tuple] = []
        #: ``(start, end)`` -- SM<->L2 interconnect busy interval.
        self.ic_intervals: list[tuple] = []
        #: ``(subcore, start, end)`` -- reduction-FPU busy interval.
        self.ru_intervals: list[tuple] = []

    # ------------------------------------------------------------------ #
    # Engine lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, trace: "KernelTrace", config: "GPUConfig",
               strategy: "AtomicStrategy") -> None:
        """Stamp the simulation's identity and topology (engine-called)."""
        self.meta = {
            "trace_name": trace.name,
            "gpu": config.name,
            "strategy": strategy.name,
            "n_batches": trace.n_batches,
            "num_sms": config.num_sms,
            "subcores_per_sm": config.subcores_per_sm,
            "num_partitions": config.num_partitions,
            "rops_per_partition": config.rops_per_partition,
            "lsu_queue_depth": config.lsu_queue_depth,
            "interconnect_bw": config.interconnect_bw,
            "clock_ghz": config.clock_ghz,
        }

    def finish(self, result: "SimResult") -> None:
        """Stamp end-of-kernel aggregates (engine-called, last)."""
        self.meta["total_cycles"] = result.total_cycles
        self.meta["lsu_full_events"] = result.lsu_full_events

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def total_cycles(self) -> float:
        """Kernel duration recorded by :meth:`finish` (0 before it)."""
        return float(self.meta.get("total_cycles", 0.0))

    def as_dict(self) -> dict:
        """JSON-compatible snapshot of everything recorded.

        Record tuples become lists; consumers index by position using the
        layouts documented on the attributes above.
        """
        return {
            "format": 1,
            "meta": dict(self.meta),
            "spans": [list(record) for record in self.spans],
            "lsu": [list(record) for record in self.lsu_intervals],
            "rop": [list(record) for record in self.rop_intervals],
            "ic": [list(record) for record in self.ic_intervals],
            "ru": [list(record) for record in self.ru_intervals],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Telemetry":
        """Rebuild a collector from :meth:`as_dict` output."""
        if data.get("format") != 1:
            raise ValueError("unknown telemetry payload format")
        telemetry = cls()
        telemetry.meta = dict(data["meta"])
        telemetry.spans = [tuple(record) for record in data["spans"]]
        telemetry.lsu_intervals = [tuple(record) for record in data["lsu"]]
        telemetry.rop_intervals = [tuple(record) for record in data["rop"]]
        telemetry.ic_intervals = [tuple(record) for record in data["ic"]]
        telemetry.ru_intervals = [tuple(record) for record in data["ru"]]
        return telemetry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Telemetry {self.meta.get('strategy', '?')} "
            f"{len(self.spans)} spans, {len(self.rop_intervals)} rop, "
            f"{len(self.lsu_intervals)} lsu>"
        )
