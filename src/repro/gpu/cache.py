"""L2 cache residency model for gradient buffers (§3.2 sanity check).

The paper observes ~97% L2 hit rates for the gradient-computation kernels
on both GPUs -- evidence that the memory stalls are caused by atomic
*processing*, not by cache misses.  This module provides the matching
analysis: the gradient buffer all atomics target is small (primitives x
parameters x 4 bytes) and, once resident, every atomic update hits.

The model is deliberately simple -- compulsory (cold) misses for the
resident fraction of the footprint, full misses for the excess -- because
that is the regime the workloads are in: footprints of a few hundred KB
against multi-MB L2s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.config import GPUConfig
from repro.trace.events import KernelTrace

__all__ = ["CacheReport", "gradient_buffer_bytes", "l2_report"]

#: Cache line size on every modeled GPU.
LINE_BYTES = 128
#: Bytes per gradient scalar (fp32, like the real kernels).
VALUE_BYTES = 4


def gradient_buffer_bytes(trace: KernelTrace) -> int:
    """Footprint of the gradient buffer the kernel's atomics update."""
    return trace.n_slots * trace.num_params * VALUE_BYTES


@dataclass(frozen=True)
class CacheReport:
    """L2 behaviour of one gradient kernel."""

    footprint_bytes: int
    l2_bytes: int
    accesses: int
    misses: int

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.misses / self.accesses

    @property
    def fits_in_l2(self) -> bool:
        return self.footprint_bytes <= self.l2_bytes


def l2_report(trace: KernelTrace, config: GPUConfig) -> CacheReport:
    """L2 hit behaviour of *trace*'s atomic traffic on *config*.

    Accesses are the per-lane atomic operations reaching the L2.  Lines of
    the resident fraction of the footprint miss exactly once (compulsory);
    accesses to the non-resident excess miss every time (capacity).
    """
    footprint = gradient_buffer_bytes(trace)
    l2_bytes = int(config.l2_mib * 1024 * 1024)
    accesses = trace.total_lane_ops
    touched_lines = int(np.ceil(footprint / LINE_BYTES))

    if footprint <= l2_bytes:
        misses = min(touched_lines, accesses)
    else:
        resident_fraction = l2_bytes / footprint
        compulsory = int(np.ceil(touched_lines * resident_fraction))
        capacity = int((1.0 - resident_fraction) * accesses)
        misses = min(compulsory + capacity, accesses)
    return CacheReport(
        footprint_bytes=footprint,
        l2_bytes=l2_bytes,
        accesses=accesses,
        misses=misses,
    )
