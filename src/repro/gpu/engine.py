"""Discrete-event timing engine for the GPU atomic pipeline.

The engine replays a :class:`~repro.trace.events.KernelTrace` through the
resource topology of Figure 1 in the paper:

* each **sub-core** executes its resident warps' batches in order: gradient
  math, then the strategy's extra instructions, then memory traffic;
* the per-SM **LSU queue** has finite depth; a full queue blocks the
  sub-core (recorded as LSU stall -- the paper's headline bottleneck);
* accepted transactions cross a bandwidth-limited **interconnect** to a
  **memory partition**, where a free **ROP unit** serializes the
  transaction's same-address lane operations;
* strategy-specific SM-local units (ARC-HW reduction FPUs, LAB SRAM
  buffers, PHI L1 tag pipelines) are additional serial resources.

The model is cycle-approximate: resources are servers with deterministic
service times and the event order follows sub-core readiness.  That is
enough to reproduce the queueing effects the paper measures (who stalls,
where, and by how much) without modeling a full out-of-order memory system.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import replace

import numpy as np

from repro.core.base import AtomicStrategy, BatchView, EngineView, MemRequest
from repro.gpu.config import GPUConfig
from repro.gpu.stats import SimResult

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.trace.events import KernelTrace

__all__ = ["simulate_kernel"]


class _EngineState(EngineView):
    """Shared mutable simulation state (also the strategies' EngineView)."""

    def __init__(self, config: GPUConfig):
        self.config = config
        # Optional Telemetry collector (None: every probe is one dead
        # predicate test; no allocation, no recording).
        self.telemetry = None
        self.now = 0.0
        self.ic_free = 0.0
        self.ic_step = 1.0 / config.interconnect_bw
        # Per-partition min-heaps of ROP-unit free times.
        self.partitions = [
            [0.0] * config.rops_per_partition
            for _ in range(config.num_partitions)
        ]
        # Per-SM LSU in-flight completion heaps.
        self.lsu: list[list[float]] = [[] for _ in range(config.num_sms)]
        self.lsu_depth = config.lsu_queue_depth
        # Per-SM local units and per-sub-core reduction units.
        self.buf_free = np.zeros(config.num_sms)
        self.l1_free = np.zeros(config.num_sms)
        self.ru_free = np.zeros(config.num_subcores)
        # Hot-address serialization at the ROPs.
        self.slot_free: dict[int, float] = {}
        self.last_completion = 0.0
        self.lsu_full_events = 0

    # EngineView ------------------------------------------------------- #

    def lsu_pressure(self, sm: int) -> float:
        heap = self.lsu[sm]
        now = self.now
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return len(heap) / self.lsu_depth

    def ru_backlog(self, subcore: int) -> float:
        return max(0.0, float(self.ru_free[subcore]) - self.now)

    # Resource helpers -------------------------------------------------- #

    def lsu_admit(self, sm: int, ready: float) -> float:
        """Earliest time a new request fits in *sm*'s LSU queue."""
        heap = self.lsu[sm]
        while heap and heap[0] <= ready:
            heapq.heappop(heap)
        if len(heap) < self.lsu_depth:
            return ready
        self.lsu_full_events += 1
        return heapq.heappop(heap)

    def lsu_hold(self, sm: int, until: float) -> None:
        """Occupy one LSU queue entry of *sm* until *until*."""
        heapq.heappush(self.lsu[sm], until)

    def service_rop(self, request: MemRequest, accepted: float) -> float:
        """Route an accepted transaction to its partition's ROPs.

        Returns the completion time.  The transaction's operations occupy
        one ROP unit for their total service time (aggregate throughput),
        while the *per-address* dependency chain -- the paper's same-address
        serialization -- only advances by ``rop_ops / addresses``
        operations, because operations to a primitive's different
        parameters hit different addresses and can overlap.
        """
        cfg = self.config
        ic_start = max(accepted, self.ic_free)
        self.ic_free = ic_start + request.addresses * self.ic_step
        arrive = ic_start + cfg.cost.interconnect_latency

        rops = self.partitions[request.slot % cfg.num_partitions]
        unit_free = heapq.heappop(rops)
        start = max(arrive, unit_free, self.slot_free.get(request.slot, 0.0))
        service = request.rop_ops * cfg.cost.atomic_service
        end = start + service
        heapq.heappush(rops, end)
        self.slot_free[request.slot] = start + service / request.addresses
        self.last_completion = max(self.last_completion, end)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.rop_intervals.append(
                (request.slot % cfg.num_partitions, request.slot,
                 request.rop_ops, start, end)
            )
            telemetry.ic_intervals.append((ic_start, self.ic_free))
        return end


def _route_request(
    state: _EngineState,
    stats: SimResult,
    sm: int,
    request: MemRequest,
    ready: float,
) -> tuple[float, float]:
    """Send one transaction toward the ROPs.

    Returns ``(admission_time, completion_time)``; the caller decides who
    (sub-core or reduction unit) absorbs any admission wait.
    """
    if request.bypass_lsu:
        admission = ready
    else:
        admission = state.lsu_admit(sm, ready)
    completion = state.service_rop(request, admission)
    if not request.bypass_lsu:
        # The queue entry frees when the ROP retires the transaction; that
        # coupling is what backs atomic pressure up into the SMs.
        state.lsu_hold(sm, completion)
        if state.telemetry is not None:
            state.telemetry.lsu_intervals.append((sm, admission, completion))
    stats.transactions += request.addresses
    stats.rop_ops += request.rop_ops
    stats.rop_busy_cycles += request.rop_ops * state.config.cost.atomic_service
    return admission, completion


def simulate_kernel(
    trace: KernelTrace,
    config: GPUConfig,
    strategy: AtomicStrategy,
    telemetry=None,
) -> SimResult:
    """Simulate one gradient-computation kernel launch.

    Parameters
    ----------
    trace:
        The kernel's warp atomic trace (see :mod:`repro.trace.events`).
    config:
        Simulated GPU (:data:`~repro.gpu.config.RTX4090_SIM` or similar).
    strategy:
        Atomic-handling approach under test.
    telemetry:
        Optional :class:`~repro.gpu.telemetry.Telemetry` collector.  When
        given, the engine records per-batch phase spans and resource busy
        intervals into it, stamped with simulation time only; results are
        bit-identical with telemetry on or off, and ``None`` (the
        default) adds no work beyond dead predicate tests.

    Returns
    -------
    SimResult
        Cycle counts, stall attribution, and event tallies.
    """
    strategy.begin_kernel(trace, config)
    state = _EngineState(config)
    stats = SimResult(
        strategy=strategy.name, gpu=config.name, trace_name=trace.name
    )
    stats.n_batches = trace.n_batches
    stats.lane_ops = trace.total_lane_ops
    tel = telemetry
    if tel is not None:
        tel.attach(trace, config, strategy)
    if trace.n_batches == 0:
        if tel is not None:
            tel.finish(stats)
        return stats
    state.telemetry = tel

    coalesced = trace.coalesced
    n_subcores = config.num_subcores

    # Group batches by warp, preserving trace (program) order per warp.
    # Warps are dispatched to sub-cores greedily in first-appearance order,
    # like the hardware block scheduler: a sub-core that drains its warp
    # pulls the next pending one.  This is what balances uneven tiles
    # across the GPU.
    warp_order: list[int] = []
    batches_by_warp: dict[int, list[int]] = {}
    for index, warp in enumerate(trace.warp_id):
        warp = int(warp)
        if warp not in batches_by_warp:
            batches_by_warp[warp] = []
            warp_order.append(warp)
        batches_by_warp[warp].append(index)
    pending_warps = deque(warp_order)

    view = BatchView(0, 0, 0, None, None, trace.num_params, trace.bfly_eligible)
    cost = config.cost
    # Plain Python lists: batch-granularity access beats numpy scalars on
    # the event-loop hot path.
    compute_per_batch = trace.compute_cycles_per_batch.tolist()
    subcores_per_sm = config.subcores_per_sm
    offsets = coalesced.offsets.tolist()
    group_slots = coalesced.slots.tolist()
    group_sizes = coalesced.sizes.tolist()
    sm_last_time = [0.0] * config.num_sms
    warp_ids = trace.warp_id

    # Local accumulators (folded into stats after the loop).
    acc_compute = 0.0
    acc_issue = 0.0
    acc_shuffles = 0
    acc_lsu_stall = 0.0
    acc_local_stall = 0.0
    acc_buffer_ops = 0
    acc_tag_ops = 0
    acc_ru_busy = 0.0
    acc_ru_values = 0

    # Event loop: pop the sub-core that becomes ready earliest, run its next
    # batch to completion (from the sub-core's point of view), repeat.
    # Every heap entry is ``(time, subcore, push_seq)``: same-timestamp
    # events pop in the engine's established deterministic sub-core order,
    # and the trailing monotonic sequence number makes the tuple totally
    # ordered by explicit scalars alone -- a future payload element can
    # never be reached by tuple comparison, so tie order can never fall
    # back to whatever that payload happens to compare as (ARC007).
    # REPRO_SANITIZE=1 turns on a runtime assert that the popped stream
    # honors that total order.
    sanitize = os.environ.get("REPRO_SANITIZE") == "1"
    current_batches: list[list[int]] = [[] for _ in range(n_subcores)]
    cursors = [0] * n_subcores
    ready_heap = []
    push_seq = 0
    for subcore in range(n_subcores):
        if not pending_warps:
            break
        current_batches[subcore] = batches_by_warp[pending_warps.popleft()]
        ready_heap.append((0.0, subcore, push_seq))
        push_seq += 1
    heapq.heapify(ready_heap)

    last_popped = (-1.0, -1, -1)
    while ready_heap:
        t0, subcore, seq = heapq.heappop(ready_heap)
        if sanitize:
            assert last_popped < (t0, subcore, seq), (
                f"event-tie order violated: popped {(t0, subcore, seq)} "
                f"after {last_popped}; pushes must be monotonic in "
                "(time, subcore, seq)"
            )
            last_popped = (t0, subcore, seq)
        index = current_batches[subcore][cursors[subcore]]
        cursors[subcore] += 1
        sm = subcore // subcores_per_sm

        state.now = t0
        lo, hi = offsets[index], offsets[index + 1]
        view.index = index
        view.sm = sm
        view.subcore = subcore
        view.slots = group_slots[lo:hi]
        view.sizes = group_sizes[lo:hi]
        plan = strategy.plan_batch(view, state)

        compute = compute_per_batch[index]
        t = t0 + compute + plan.issue_cycles
        acc_compute += compute
        acc_issue += plan.issue_cycles
        acc_shuffles += plan.shuffle_ops
        if tel is not None:
            warp = int(warp_ids[index])
            if compute:
                tel.spans.append(
                    (subcore, warp, index, "compute", t0, t0 + compute)
                )
            if plan.issue_cycles:
                tel.spans.append(
                    (subcore, warp, index, "issue", t0 + compute, t)
                )

        # SM-local buffering (LAB / PHI): the sub-core streams lane values
        # into a shared per-SM unit and is blocked until it finishes
        # accepting them.  When the traffic traverses the MIO/LSU path
        # (local_absorb), a queue entry is held until the local unit starts
        # servicing the bundle.
        # LAB SRAM buffer: traffic transits the LSU briefly (the buffer has
        # its own downstream queue), then serializes at the per-SM buffer.
        if plan.sm_buffer_ops:
            if plan.local_absorb:
                admission = state.lsu_admit(sm, t)
                acc_lsu_stall += admission - t
                if tel is not None:
                    if admission > t:
                        tel.spans.append(
                            (subcore, warp, index, "lsu_wait", t, admission)
                        )
                    tel.lsu_intervals.append(
                        (sm, admission, admission + cost.lsu_transit)
                    )
                t = admission
                state.lsu_hold(sm, admission + cost.lsu_transit)
            start = max(t, state.buf_free[sm])
            end = start + plan.sm_buffer_ops * cost.lab_buffer_op
            state.buf_free[sm] = end
            acc_local_stall += end - t
            acc_buffer_ops += plan.sm_buffer_ops
            if tel is not None:
                tel.spans.append(
                    (subcore, warp, index, "local_unit", t, end)
                )
            t = end
        # PHI L1 tags: the queue entry is held until the L1 pipeline
        # finishes the per-lane lookups -- this is how the flood of atomic
        # requests overwhelms the LSU *before* aggregation (§7.1).
        if plan.l1_tag_ops:
            if plan.local_absorb:
                admission = state.lsu_admit(sm, t)
                acc_lsu_stall += admission - t
                if tel is not None and admission > t:
                    tel.spans.append(
                        (subcore, warp, index, "lsu_wait", t, admission)
                    )
                t = admission
            start = max(t, state.l1_free[sm])
            end = start + plan.l1_tag_ops * cost.phi_tag_op
            state.l1_free[sm] = end
            if plan.local_absorb:
                state.lsu_hold(sm, end)
                if tel is not None:
                    tel.lsu_intervals.append((sm, t, end))
            acc_local_stall += end - t
            acc_tag_ops += plan.l1_tag_ops
            if tel is not None:
                tel.spans.append(
                    (subcore, warp, index, "local_unit", t, end)
                )
            t = end

        # ARC-HW reduction unit: dedicated serial FPU per sub-core.  The
        # sub-core hands over the transaction and moves on; only the
        # reduced request waits for the FPU.
        ru_done = t
        if plan.ru_values:
            ru_start = max(t, state.ru_free[subcore])
            ru_done = ru_start + plan.ru_values * cost.reduction_unit_op
            state.ru_free[subcore] = ru_done
            acc_ru_busy += ru_done - ru_start
            acc_ru_values += plan.ru_values
            if tel is not None:
                tel.ru_intervals.append((subcore, ru_start, ru_done))

        for request in plan.requests:
            ready = ru_done if request.after_ru else t
            admission, _ = _route_request(state, stats, sm, request, ready)
            wait = admission - ready
            if wait > 0:
                if request.after_ru:
                    # The reduction unit holds its result until the LSU
                    # accepts it; the sub-core itself is not blocked.
                    state.ru_free[subcore] = max(
                        state.ru_free[subcore], admission
                    )
                else:
                    acc_lsu_stall += wait
                    if tel is not None:
                        tel.spans.append(
                            (subcore, warp, index, "lsu_wait",
                             ready, admission)
                        )
                    t = max(t, admission)

        if t > sm_last_time[sm]:
            sm_last_time[sm] = t
        if cursors[subcore] >= len(current_batches[subcore]):
            # Warp drained: pull the next pending warp, if any.
            cursors[subcore] = 0
            if pending_warps:
                current_batches[subcore] = batches_by_warp[
                    pending_warps.popleft()
                ]
            else:
                current_batches[subcore] = []
        if current_batches[subcore]:
            heapq.heappush(ready_heap, (t, subcore, push_seq))
            push_seq += 1
        else:
            state.last_completion = max(state.last_completion, t)

    stats.compute_cycles = acc_compute
    stats.issue_cycles = acc_issue
    stats.shuffle_ops = acc_shuffles
    stats.lsu_stall_cycles = acc_lsu_stall
    stats.local_unit_stall_cycles = acc_local_stall
    stats.buffer_ops = acc_buffer_ops
    stats.l1_tag_ops = acc_tag_ops
    stats.ru_busy_cycles = acc_ru_busy
    stats.ru_values = acc_ru_values

    # Kernel-exit flush of residual buffered state (LAB / PHI).  No warps
    # remain to block, so the writeback streams without occupying LSU
    # entries; draining in SM-completion order keeps the shared
    # interconnect FIFO causally consistent.
    flushes = [
        (float(sm_last_time[sm]), sm, request)
        for sm, request in strategy.end_kernel(state)
    ]
    flushes.sort(key=lambda item: item[0])
    for ready, sm, request in flushes:
        _route_request(
            state, stats, sm, replace(request, bypass_lsu=True), ready
        )

    stats.total_cycles = state.last_completion
    stats.lsu_full_events = state.lsu_full_events
    if tel is not None:
        tel.finish(stats)
    return stats
