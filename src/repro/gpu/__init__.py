"""GPU substrate: configurations, warp primitives, and the timing engine."""

from repro.gpu.config import (
    RTX3060_SIM,
    RTX4090_SIM,
    SIMULATED_GPUS,
    CostModel,
    EnergyModel,
    GPUConfig,
)
from repro.gpu.area import area_overhead_fraction, reduction_unit_transistors
from repro.gpu.cache import CacheReport, gradient_buffer_bytes, l2_report
from repro.gpu.engine import simulate_kernel
from repro.gpu.stats import SimResult
from repro.gpu.telemetry import PHASES, Telemetry
from repro.gpu.warp import FULL_MASK, WARP_SIZE

__all__ = [
    "CostModel",
    "EnergyModel",
    "GPUConfig",
    "RTX3060_SIM",
    "RTX4090_SIM",
    "SIMULATED_GPUS",
    "PHASES",
    "SimResult",
    "Telemetry",
    "simulate_kernel",
    "area_overhead_fraction",
    "reduction_unit_transistors",
    "CacheReport",
    "gradient_buffer_bytes",
    "l2_report",
    "FULL_MASK",
    "WARP_SIZE",
]
