"""GPU configurations for the cycle-approximate simulator.

The two presets, :data:`RTX4090_SIM` and :data:`RTX3060_SIM`, mirror Table 1
of the ARC paper (ASPLOS 2025).  The key architectural ratio the paper
exploits -- the number of streaming multiprocessors (SMs) relative to the
number of L2 atomic units (ROPs) -- is preserved exactly: the RTX 4090 has
4.57x more SMs than the RTX 3060 but only about 3.6x more ROP units, which
is why atomic contention (and therefore ARC's speedup) is larger on the
4090.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

__all__ = [
    "CostModel",
    "EnergyModel",
    "GPUConfig",
    "RTX4090_SIM",
    "RTX3060_SIM",
    "SIMULATED_GPUS",
]


#: Memory-domain service times in nanoseconds.  L2/ROP atomics, the
#: interconnect, and cache pipelines run in clock domains that do not scale
#: with the shader clock, so their *cycle* cost grows on faster-clocked
#: GPUs -- the physical root of the paper's observation (§3.2) that the
#: RTX 4090 suffers more atomic stalls than the RTX 3060.
MEMORY_DOMAIN_NS = {
    "atomic_service": 0.95,
    "interconnect_latency": 13.4,
    "lab_buffer_op": 0.58,
    "phi_tag_op": 0.70,
}


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs used by the timing engine.

    All values are in shader-core cycles.  They parameterize every atomic
    strategy uniformly, so relative results between strategies come from
    *how many* of each operation a strategy performs, not from per-strategy
    fudge factors.  Memory-domain entries should be derived from
    :data:`MEMORY_DOMAIN_NS` via :meth:`scaled_to_clock` so they track the
    shader clock correctly.
    """

    #: Cycles to issue one atomic instruction from a sub-core LDST port.
    atomic_issue: float = 1.0
    #: Cycles for one ``__shfl_sync`` plus the dependent add.
    shuffle: float = 2.0
    #: Cycles for a ``__match_any_sync`` instruction.
    match_op: float = 1.0
    #: Cycles for a ``__popc`` instruction.
    popc_op: float = 1.0
    #: Cycles of divergence/branch overhead per dynamic branch.
    branch: float = 2.0
    #: Fixed per-call overhead of the ARC-SW function prologue.
    sw_call_overhead: float = 2.0
    #: Extra fixed overhead of the (generic) CCCL warp-reduce entry path.
    cccl_overhead: float = 10.0
    #: ROP-unit service cycles per serialized same-address lane operation.
    atomic_service: float = 1.8
    #: Service cycles per lane value at a LAB SRAM atomic buffer.
    lab_buffer_op: float = 0.9
    #: Service cycles per lane value for a PHI L1 tag-lookup + update.
    phi_tag_op: float = 1.0
    #: Cycles per value summed by the ARC-HW per-sub-core reduction FPU.
    reduction_unit_op: float = 1.0
    #: One-way latency from LSU acceptance to ROP arrival (interconnect).
    interconnect_latency: float = 20.0
    #: Default gradient-math cycles charged per warp loop iteration.
    grad_compute: float = 120.0
    #: Forward-pass cycles per (pixel, primitive) compositing pair.
    fwd_pair_cycles: float = 14.0
    #: Loss-kernel cycles per pixel channel (L1 + D-SSIM windows +
    #: reductions; the real 3DGS loss step runs several kernels).
    loss_channel_cycles: float = 110.0
    #: Cycles an LSU queue entry is held for traffic absorbed by an
    #: SM-local buffer with its own downstream queue (LAB).
    lsu_transit: float = 6.0

    @classmethod
    def scaled_to_clock(cls, clock_ghz: float, **overrides: float) -> "CostModel":
        """Cost model with memory-domain times converted to shader cycles.

        ``cycles = nanoseconds x clock_ghz`` for every entry of
        :data:`MEMORY_DOMAIN_NS`; SM-domain costs keep their defaults.
        """
        if clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        scaled = {
            name: ns * clock_ghz for name, ns in MEMORY_DOMAIN_NS.items()
        }
        scaled.update(overrides)
        return cls(**scaled)


@dataclass(frozen=True)
class EnergyModel:
    """Activity-based energy model (substitute for pyNVML/pyRAPL).

    Energies are in picojoules per event; static power in watts.  The model
    captures the two effects the paper attributes energy savings to: fewer
    interconnect/ROP transactions and shorter runtime.
    """

    issue_pj: float = 8.0
    shuffle_pj: float = 6.0
    rop_op_pj: float = 40.0
    interconnect_flit_pj: float = 60.0
    lab_buffer_pj: float = 10.0
    phi_tag_pj: float = 14.0
    reduction_fpu_pj: float = 4.0
    static_watts: float = 95.0


@dataclass(frozen=True)
class GPUConfig:
    """Architectural parameters of one simulated GPU (paper Table 1)."""

    name: str
    num_sms: int
    subcores_per_sm: int
    num_rops: int
    num_partitions: int
    lsu_queue_depth: int
    #: Transactions per cycle accepted by the SM<->L2 interconnect.
    interconnect_bw: float
    clock_ghz: float
    registers_per_sm: int
    l1_kib_per_sm: int
    l2_mib: float
    dram_channels: int
    dram_banks: int
    dram_gib: int
    cost: CostModel = field(default_factory=CostModel)
    energy: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.subcores_per_sm <= 0:
            raise ValueError("GPU must have at least one SM and sub-core")
        if self.num_rops <= 0 or self.num_partitions <= 0:
            raise ValueError("GPU must have at least one ROP and partition")
        if self.num_rops % self.num_partitions:
            raise ValueError(
                f"num_rops ({self.num_rops}) must divide evenly across "
                f"num_partitions ({self.num_partitions})"
            )
        if self.lsu_queue_depth <= 0:
            raise ValueError("lsu_queue_depth must be positive")
        if self.interconnect_bw <= 0:
            raise ValueError("interconnect_bw must be positive")

    @property
    def num_subcores(self) -> int:
        """Total sub-cores across the whole GPU."""
        return self.num_sms * self.subcores_per_sm

    @property
    def rops_per_partition(self) -> int:
        return self.num_rops // self.num_partitions

    @property
    def sm_to_rop_ratio(self) -> float:
        """SM count per ROP unit; higher means more atomic contention."""
        return self.num_sms / self.num_rops

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert shader cycles to milliseconds at this GPU's clock."""
        return cycles / (self.clock_ghz * 1e6)

    def with_cost(self, **overrides: float) -> "GPUConfig":
        """Return a copy with some :class:`CostModel` fields replaced."""
        return replace(self, cost=replace(self.cost, **overrides))

    def to_dict(self) -> dict:
        """All architectural parameters (cost/energy models nested) as
        plain JSON-compatible values."""
        return asdict(self)

    def fingerprint(self) -> str:
        """Deterministic content hash over every field, nested models
        included.

        Two configs with equal fields produce the same digest regardless
        of construction order or process; any field change (including a
        single :class:`CostModel` entry) changes it.  This is what keys
        the persistent experiment cache, so simulation results can never
        be served for a config they were not produced with.

        Computed once per instance: the dataclass is frozen, so the
        digest can be memoized on the object, keeping hot in-memory
        memoization lookups (which key on it) a cheap dict access rather
        than a recursive ``asdict`` + hash on every call.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            payload = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


#: Simulated NVIDIA RTX 4090 (paper Table 1, "4090-Sim").
RTX4090_SIM = GPUConfig(
    name="4090-Sim",
    num_sms=128,
    subcores_per_sm=4,
    num_rops=176,
    num_partitions=16,
    lsu_queue_depth=16,
    interconnect_bw=24.0,
    clock_ghz=2.24,
    registers_per_sm=32768,
    l1_kib_per_sm=128,
    l2_mib=72.0,
    dram_channels=12,
    dram_banks=16,
    dram_gib=24,
    cost=CostModel.scaled_to_clock(2.24),
)

#: Simulated NVIDIA RTX 3060 (paper Table 1, "3060-Sim").
RTX3060_SIM = GPUConfig(
    name="3060-Sim",
    num_sms=28,
    subcores_per_sm=4,
    num_rops=48,
    num_partitions=12,
    lsu_queue_depth=16,
    interconnect_bw=8.0,
    clock_ghz=1.32,
    registers_per_sm=32768,
    l1_kib_per_sm=128,
    l2_mib=3.0,
    dram_channels=12,
    dram_banks=16,
    dram_gib=12,
    cost=CostModel.scaled_to_clock(1.32),
)

#: All simulator presets, keyed the way the paper names them.
SIMULATED_GPUS: dict[str, GPUConfig] = {
    RTX4090_SIM.name: RTX4090_SIM,
    RTX3060_SIM.name: RTX3060_SIM,
}
