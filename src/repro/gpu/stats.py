"""Simulation results: cycle counts, stall attribution and event tallies.

The stall taxonomy mirrors what NVIDIA Nsight Compute reports and what the
paper's Figures 8, 20, 21 and 24 plot: time a warp spends blocked on the
LSU (the atomic bottleneck), on SM-local atomic units (LAB buffer / PHI
tags), versus time spent doing useful math and instruction issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.gpu.config import GPUConfig

__all__ = ["SimResult"]


@dataclass
class SimResult:
    """Outcome of simulating one kernel launch under one strategy."""

    strategy: str
    gpu: str
    trace_name: str = ""

    #: Kernel duration: cycle of the last completion anywhere in the GPU.
    total_cycles: float = 0.0
    #: Gradient-math cycles across all sub-cores.
    compute_cycles: float = 0.0
    #: Instruction-issue cycles added by the atomic strategy.
    issue_cycles: float = 0.0
    #: Cycles sub-cores spent blocked on a full LSU queue.
    lsu_stall_cycles: float = 0.0
    #: Cycles sub-cores spent blocked on LAB buffer / PHI tag service.
    local_unit_stall_cycles: float = 0.0
    #: Busy cycles of the ARC-HW reduction FPUs.
    ru_busy_cycles: float = 0.0
    #: Busy cycles summed over all ROP units.
    rop_busy_cycles: float = 0.0

    n_batches: int = 0
    #: Per-lane atomic adds the kernel semantically performs.
    lane_ops: int = 0
    #: Same-address operations actually serviced by the ROP units.
    rop_ops: int = 0
    #: Transactions that crossed the SM<->L2 interconnect.
    transactions: int = 0
    #: Warp-wide shuffle instructions (ARC-SW / CCCL).
    shuffle_ops: int = 0
    #: Values summed by ARC-HW reduction units.
    ru_values: int = 0
    #: Values applied at LAB SRAM buffers.
    buffer_ops: int = 0
    #: Values applied at PHI L1 tags.
    l1_tag_ops: int = 0
    #: Requests that found the LSU queue full.
    lsu_full_events: int = 0

    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def busy_cycles(self) -> float:
        """Sub-core cycles doing useful work (math plus issue)."""
        return self.compute_cycles + self.issue_cycles

    @property
    def stall_cycles(self) -> float:
        """All sub-core stall cycles regardless of cause."""
        return self.lsu_stall_cycles + self.local_unit_stall_cycles

    @property
    def atomic_stall_cycles(self) -> float:
        """Stalls attributable to atomic processing (Figures 20/21)."""
        return self.stall_cycles

    @property
    def instructions(self) -> float:
        """Estimated dynamic warp instructions (1 issue slot per cycle)."""
        return max(self.busy_cycles, 1.0)

    @property
    def stalls_per_instruction(self) -> float:
        """Mean warp stall cycles per issued instruction (Figures 8/24)."""
        return self.stall_cycles / self.instructions

    def stall_breakdown(self) -> dict[str, float]:
        """Fractions of sub-core time per cause; sums to 1."""
        total = self.busy_cycles + self.stall_cycles
        if total <= 0:
            return {"compute": 0.0, "issue": 0.0, "lsu_stall": 0.0,
                    "local_unit_stall": 0.0}
        return {
            "compute": self.compute_cycles / total,
            "issue": self.issue_cycles / total,
            "lsu_stall": self.lsu_stall_cycles / total,
            "local_unit_stall": self.local_unit_stall_cycles / total,
        }

    def runtime_ms(self, config: GPUConfig) -> float:
        """Wall-clock duration at the GPU's shader clock."""
        return config.cycles_to_ms(self.total_cycles)

    def interconnect_busy_cycles(self, config: GPUConfig) -> float:
        """Cycles the SM<->L2 interconnect spent transferring.

        Each transaction occupies the (serialized) link for
        ``addresses / interconnect_bw`` cycles in the engine, and
        ``transactions`` accumulates exactly those addresses, so this is
        the link's total busy time -- no telemetry needed.
        """
        return self.transactions / config.interconnect_bw

    def interconnect_utilization(self, config: GPUConfig) -> float:
        """Fraction of the kernel the interconnect was busy.

        The timeline summarizer derives the same number by integrating
        the recorded busy intervals
        (:func:`repro.profiling.timeline.summarize_timeline`); the two
        agree because the engine serializes link occupancy.
        """
        if self.total_cycles <= 0:
            return 0.0
        return self.interconnect_busy_cycles(config) / self.total_cycles

    def energy_joules(self, config: GPUConfig) -> float:
        """Activity-based energy estimate (see :class:`EnergyModel`)."""
        e = config.energy
        dynamic_pj = (
            e.issue_pj * self.busy_cycles
            + e.shuffle_pj * self.shuffle_ops
            + e.rop_op_pj * self.rop_ops
            + e.interconnect_flit_pj * self.transactions
            + e.lab_buffer_pj * self.buffer_ops
            + e.phi_tag_pj * self.l1_tag_ops
            + e.reduction_fpu_pj * self.ru_values
        )
        seconds = self.total_cycles / (config.clock_ghz * 1e9)
        return dynamic_pj * 1e-12 + e.static_watts * seconds

    def speedup_over(self, baseline: "SimResult") -> float:
        """Speedup of *self* relative to *baseline* (same trace and GPU)."""
        if self.total_cycles <= 0:
            raise ValueError("cannot compute speedup of an empty simulation")
        return baseline.total_cycles / self.total_cycles

    # ------------------------------------------------------------------ #
    # Serialization (persistent experiment cache, worker transport)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Every field as JSON-compatible values (``extra`` must be)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Rebuild a result written by :meth:`to_dict`.

        Unknown keys are rejected rather than dropped, so a cache entry
        written by a different schema never deserializes silently.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimResult fields: {sorted(unknown)}")
        return cls(**data)

    def summary(self, config: "GPUConfig | None" = None) -> str:
        """One-line human-readable digest.

        With a :class:`GPUConfig`, the digest also reports LSU-full
        events, wall-clock runtime and interconnect utilization -- the
        queueing numbers that need hardware parameters to interpret.
        """
        text = (
            f"{self.trace_name or 'kernel'} on {self.gpu} [{self.strategy}]: "
            f"{self.total_cycles:,.0f} cycles, "
            f"{self.rop_ops:,} ROP ops, "
            f"{self.stalls_per_instruction:.2f} stalls/instr"
        )
        if config is not None:
            text += (
                f", {self.lsu_full_events:,} LSU-full events, "
                f"{self.runtime_ms(config):.3f} ms, "
                f"ic util {self.interconnect_utilization(config):.1%}"
            )
        return text
