"""Pulsar-style differentiable sphere rendering (§6 workload "PS").

Pulsar (Lassner & Zollhofer 2021) represents scenes as opaque-ish spheres
and rasterizes them with soft edges so coverage is differentiable.  We model
each projected sphere as an isotropic screen-space splat whose footprint
scales with the projected radius, and reuse the shared tile compositor.
The backward kernel accumulates gradients for the same per-primitive
parameter block as the other workloads; Pulsar's kernel cannot eliminate
thread divergence, so its traces are marked ineligible for ARC-SW's
butterfly variant (§7.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.camera import Camera
from repro.render.loss import l1_loss, l1_loss_grad
from repro.render.rasterizer import Splats, rasterize, rasterize_backward
from repro.render.splatting import GradientsAndTrace, RenderContext

__all__ = ["SphereScene", "SphereRenderer"]

#: Footprint: the splat's Gaussian sigma is the projected radius over this.
SIGMA_DIVISOR = 2.0


@dataclass
class SphereScene:
    """Learnable sphere cloud: centers, log radii, colors, opacity logits."""

    centers: np.ndarray
    log_radii: np.ndarray
    colors: np.ndarray
    opacity_logits: np.ndarray

    #: Gradient parameters accumulated atomically per sphere.
    ATOMIC_PARAMS = 9

    def __post_init__(self) -> None:
        n = len(self.centers)
        shapes = {
            "centers": (n, 3),
            "log_radii": (n,),
            "colors": (n, 3),
            "opacity_logits": (n,),
        }
        for name, shape in shapes.items():
            value = np.ascontiguousarray(getattr(self, name), dtype=np.float64)
            if value.shape != shape:
                raise ValueError(f"{name} must have shape {shape}")
            setattr(self, name, value)

    def __len__(self) -> int:
        return len(self.centers)

    @property
    def radii(self) -> np.ndarray:
        return np.exp(self.log_radii)

    @property
    def opacities(self) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.opacity_logits))

    def parameters(self) -> dict[str, np.ndarray]:
        """Named learnable arrays (views, not copies) for optimizers."""
        return {
            "centers": self.centers,
            "log_radii": self.log_radii,
            "colors": self.colors,
            "opacity_logits": self.opacity_logits,
        }

    @classmethod
    def random(cls, n_spheres: int, extent: float = 1.0, seed: int = 0,
               base_radius: float = 0.08) -> "SphereScene":
        if n_spheres <= 0:
            raise ValueError("n_spheres must be positive")
        rng = np.random.default_rng(seed)
        return cls(
            centers=rng.uniform(-extent, extent, size=(n_spheres, 3)),
            log_radii=np.log(base_radius)
            + rng.uniform(-0.5, 0.5, size=n_spheres),
            colors=rng.uniform(0.05, 0.95, size=(n_spheres, 3)),
            opacity_logits=rng.uniform(0.5, 2.5, size=n_spheres),
        )


@dataclass
class _SphereProjection:
    """Per-sphere projection intermediates kept for backward."""

    t: np.ndarray        # (N, 3) camera-space centers
    sigma: np.ndarray    # (N,) splat sigma in pixels
    valid: np.ndarray    # (N,)


class SphereRenderer:
    """Differentiable renderer for a :class:`SphereScene`."""

    def __init__(self, scene: SphereScene,
                 background: np.ndarray | None = None,
                 compute_cycles: float = 90.0):
        self.scene = scene
        self.background = (
            np.zeros(3) if background is None
            else np.asarray(background, dtype=np.float64)
        )
        self.compute_cycles = compute_cycles
        self._last_projection: _SphereProjection | None = None

    def _project(self, camera: Camera) -> tuple[Splats, _SphereProjection]:
        scene = self.scene
        t = camera.world_to_camera(scene.centers)
        depth = t[:, 2]
        valid = depth > camera.near
        safe_z = np.where(valid, depth, 1.0)

        mean2d = np.stack(
            [
                camera.fx * t[:, 0] / safe_z + camera.cx,
                camera.fy * t[:, 1] / safe_z + camera.cy,
            ],
            axis=1,
        )
        mean2d = np.where(valid[:, None], mean2d, 0.0)
        sigma = camera.fx * scene.radii / (SIGMA_DIVISOR * safe_z)
        sigma = np.maximum(sigma, 1e-6)
        inv_var = 1.0 / sigma**2
        conic = np.stack(
            [inv_var, np.zeros_like(inv_var), inv_var], axis=1
        )
        radius = np.where(valid, np.ceil(3.0 * sigma), 0.0)
        splats = Splats(
            mean2d=mean2d,
            conic=conic,
            radius=radius,
            depth=depth,
            colors=np.clip(scene.colors, 0.0, 1.0),
            opacities=scene.opacities,
        )
        return splats, _SphereProjection(t=t, sigma=sigma, valid=valid)

    def forward(self, camera: Camera) -> RenderContext:
        """Render the spheres from *camera*; keep backward intermediates."""
        splats, projection = self._project(camera)
        raster = rasterize(
            splats, camera.width, camera.height, self.background
        )
        self._last_projection = projection
        return RenderContext(image=raster.image, projected=None, raster=raster)

    def render(self, camera: Camera) -> np.ndarray:
        """Convenience: just the (H, W, 3) image."""
        return self.forward(camera).image

    def backward(
        self,
        camera: Camera,
        context: RenderContext,
        target: np.ndarray,
        capture_trace: bool = False,
        with_values: bool = False,
        trace_name: str = "pulsar",
    ) -> GradientsAndTrace:
        """L1 loss against *target* and gradients for all parameters."""
        if self._last_projection is None:
            raise RuntimeError("backward called before forward")
        projection = self._last_projection
        loss = l1_loss(context.image, target)
        grad_image = l1_loss_grad(context.image, target)
        screen = rasterize_backward(
            context.raster,
            grad_image,
            capture_trace=capture_trace,
            with_values=with_values,
            compute_cycles=self.compute_cycles,
            bfly_eligible=False,  # Pulsar cannot remove divergence (§7.2)
            trace_name=trace_name,
        )

        scene = self.scene
        t = projection.t
        valid = projection.valid
        safe_z = np.where(valid, t[:, 2], 1.0)
        fx, fy = camera.fx, camera.fy
        inv_z = 1.0 / safe_z

        grad_mean2d = np.where(valid[:, None], screen.grad_mean2d, 0.0)
        grad_conic = np.where(valid[:, None], screen.grad_conic, 0.0)

        # conic = diag(sigma^-2): only xx and yy entries depend on sigma.
        sigma = projection.sigma
        grad_sigma = (grad_conic[:, 0] + grad_conic[:, 2]) * (-2.0 / sigma**3)
        # sigma = fx * r / (SIGMA_DIVISOR * z).
        grad_log_radii = grad_sigma * sigma  # d sigma / d log r = sigma
        grad_z_from_sigma = -grad_sigma * sigma * inv_z

        grad_t = np.zeros_like(t)
        grad_t[:, 0] = grad_mean2d[:, 0] * fx * inv_z
        grad_t[:, 1] = grad_mean2d[:, 1] * fy * inv_z
        grad_t[:, 2] = (
            -grad_mean2d[:, 0] * fx * t[:, 0] * inv_z**2
            - grad_mean2d[:, 1] * fy * t[:, 1] * inv_z**2
            + grad_z_from_sigma
        )
        grad_centers = grad_t @ camera.rotation
        grad_centers[~valid] = 0.0
        grad_log_radii = np.where(valid, grad_log_radii, 0.0)

        opacities = scene.opacities
        gradients = {
            "centers": grad_centers,
            "log_radii": grad_log_radii,
            "colors": screen.grad_colors,
            "opacity_logits": screen.grad_opacities
            * opacities * (1.0 - opacities),
        }
        return GradientsAndTrace(
            loss=loss, gradients=gradients, trace=screen.trace, screen=screen
        )

    def loss_only(self, camera: Camera, target: np.ndarray) -> float:
        """Forward + loss without keeping gradients (for grad checks)."""
        return l1_loss(self.forward(camera).image, target)
