"""Gradient-descent optimizers over named numpy parameter dicts.

The training loops update scene parameters in place, like the PyTorch
optimizers the real applications use.  Parameters are identified by name so
per-parameter learning rates (3DGS uses different rates for positions,
opacities, etc.) are easy to express.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0,
                 lr_overrides: dict[str, float] | None = None):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.lr_overrides = dict(lr_overrides or {})
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray]) -> None:
        """Apply one update in place; missing grads are skipped."""
        for name, value in params.items():
            grad = grads.get(name)
            if grad is None:
                continue
            if grad.shape != value.shape:
                raise ValueError(f"gradient shape mismatch for {name!r}")
            lr = self.lr_overrides.get(name, self.lr)
            if self.momentum:
                velocity = self._velocity.setdefault(
                    name, np.zeros_like(value)
                )
                velocity *= self.momentum
                velocity -= lr * grad
                value += velocity
            else:
                value -= lr * grad


class Adam:
    """Adam (Kingma & Ba) with per-parameter learning-rate overrides."""

    def __init__(self, lr: float = 0.01, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 lr_overrides: dict[str, float] | None = None):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.lr_overrides = dict(lr_overrides or {})
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._step_count = 0

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray]) -> None:
        """Apply one Adam update in place; missing grads are skipped."""
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for name, value in params.items():
            grad = grads.get(name)
            if grad is None:
                continue
            if grad.shape != value.shape:
                raise ValueError(f"gradient shape mismatch for {name!r}")
            m = self._m.setdefault(name, np.zeros_like(value))
            v = self._v.setdefault(name, np.zeros_like(value))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            lr = self.lr_overrides.get(name, self.lr)
            value -= lr * (m / correction1) / (
                np.sqrt(v / correction2) + self.eps
            )
