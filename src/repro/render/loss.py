"""Image losses and quality metrics for differentiable-rendering training.

Training uses an L1 photometric loss (the dominant term in 3DGS); PSNR and
a windowed SSIM are provided as the quality metrics the paper's artifact
reports (PSNR up, L1 down).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

__all__ = ["l1_loss", "l1_loss_grad", "mse", "psnr", "ssim"]


def _check_pair(rendered: np.ndarray, target: np.ndarray) -> None:
    if rendered.shape != target.shape:
        raise ValueError(
            f"image shapes differ: {rendered.shape} vs {target.shape}"
        )
    if rendered.size == 0:
        raise ValueError("images must be non-empty")


def l1_loss(rendered: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error between two images."""
    _check_pair(rendered, target)
    return float(np.mean(np.abs(rendered - target)))


def l1_loss_grad(rendered: np.ndarray, target: np.ndarray) -> np.ndarray:
    """dL/d(rendered) of :func:`l1_loss` (sign / count)."""
    _check_pair(rendered, target)
    return np.sign(rendered - target) / rendered.size


def mse(rendered: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    _check_pair(rendered, target)
    return float(np.mean((rendered - target) ** 2))


def psnr(rendered: np.ndarray, target: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better)."""
    error = mse(rendered, target)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(peak**2 / error))


def ssim(
    rendered: np.ndarray, target: np.ndarray, window: int = 11,
    peak: float = 1.0,
) -> float:
    """Mean structural similarity with a uniform window (metric only).

    A simplified (box-window) SSIM: enough to track reconstruction quality,
    not used as a training loss.
    """
    _check_pair(rendered, target)
    if window < 3 or window % 2 == 0:
        raise ValueError("window must be an odd integer >= 3")
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    size = (window, window) + (1,) * (rendered.ndim - 2)

    mu_x = uniform_filter(rendered, size=size)
    mu_y = uniform_filter(target, size=size)
    sigma_x = uniform_filter(rendered**2, size=size) - mu_x**2
    sigma_y = uniform_filter(target**2, size=size) - mu_y**2
    sigma_xy = uniform_filter(rendered * target, size=size) - mu_x * mu_y

    numerator = (2 * mu_x * mu_y + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x**2 + mu_y**2 + c1) * (sigma_x + sigma_y + c2)
    return float(np.mean(numerator / denominator))
