"""Differentiable rendering substrates: 3DGS, Pulsar spheres, NvDiffRec."""

from repro.render.camera import Camera, look_at_rotation, orbit_cameras
from repro.render.densify import DensificationController, DensifyStats
from repro.render.gaussians import GaussianScene
from repro.render.loss import l1_loss, l1_loss_grad, mse, psnr, ssim
from repro.render.optim import SGD, Adam
from repro.render.rasterizer import Splats, rasterize, rasterize_backward
from repro.render.sh import SHGaussianScene, eval_sh_colors, sh_from_rgb
from repro.render.splatting import GaussianRenderer

__all__ = [
    "Camera",
    "look_at_rotation",
    "orbit_cameras",
    "GaussianScene",
    "DensificationController",
    "DensifyStats",
    "GaussianRenderer",
    "SHGaussianScene",
    "eval_sh_colors",
    "sh_from_rgb",
    "Splats",
    "rasterize",
    "rasterize_backward",
    "l1_loss",
    "l1_loss_grad",
    "mse",
    "psnr",
    "ssim",
    "SGD",
    "Adam",
]
