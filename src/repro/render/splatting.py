"""End-to-end differentiable 3D Gaussian splatting (forward + backward).

``GaussianRenderer`` composes the projection (:mod:`repro.render.projection`)
and the tile rasterizer (:mod:`repro.render.rasterizer`) into the full 3DGS
pipeline: render an image, compare against a target, and back-propagate the
loss to every scene parameter.  The backward pass can capture the warp-level
atomic trace of its gradient-accumulation stage -- the kernel the ARC paper
identifies as the training bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.camera import Camera
from repro.render.gaussians import GaussianScene
from repro.render.loss import l1_loss, l1_loss_grad
from repro.render.projection import (
    ProjectedGaussians,
    project_backward,
    project_gaussians,
)
from repro.render.rasterizer import (
    BackwardOutput,
    RasterOutput,
    Splats,
    rasterize,
    rasterize_backward,
)
from repro.trace.events import KernelTrace

__all__ = ["GaussianRenderer", "RenderContext", "GradientsAndTrace"]


@dataclass
class RenderContext:
    """Forward intermediates needed by the backward pass."""

    image: np.ndarray
    projected: ProjectedGaussians
    raster: RasterOutput
    #: Pre-clamp SH evaluation, kept when the scene has SH color.
    sh_pre_clamp: np.ndarray | None = None

    @property
    def forward_pairs(self) -> int:
        """(pixel, splat) compositing pairs -- forward compute work."""
        return self.raster.n_pixel_splat_pairs


@dataclass
class GradientsAndTrace:
    """Backward result: loss value, parameter gradients, optional trace."""

    loss: float
    gradients: dict[str, np.ndarray]
    trace: KernelTrace | None
    screen: BackwardOutput


class GaussianRenderer:
    """Differentiable renderer for a :class:`GaussianScene`."""

    def __init__(self, scene: GaussianScene,
                 background: np.ndarray | None = None,
                 compute_cycles: float = 120.0):
        self.scene = scene
        self.background = (
            np.zeros(3) if background is None
            else np.asarray(background, dtype=np.float64)
        )
        self.compute_cycles = compute_cycles

    def forward(self, camera: Camera) -> RenderContext:
        """Render the scene from *camera*; keep backward intermediates."""
        from repro.render.sh import SHGaussianScene, eval_sh_colors

        projected = project_gaussians(self.scene, camera)
        sh_pre_clamp = None
        if isinstance(self.scene, SHGaussianScene):
            colors, sh_pre_clamp = eval_sh_colors(
                self.scene.sh_coeffs, self.scene.positions, camera.position
            )
        else:
            colors = self.scene.colors
        splats = Splats(
            mean2d=projected.mean2d,
            conic=projected.conic,
            radius=projected.radius,
            depth=projected.depth,
            colors=np.clip(colors, 0.0, 1.0),
            opacities=self.scene.opacities,
        )
        raster = rasterize(
            splats, camera.width, camera.height, self.background
        )
        return RenderContext(
            image=raster.image, projected=projected, raster=raster,
            sh_pre_clamp=sh_pre_clamp,
        )

    def render(self, camera: Camera) -> np.ndarray:
        """Convenience: just the (H, W, 3) image."""
        return self.forward(camera).image

    def backward(
        self,
        camera: Camera,
        context: RenderContext,
        target: np.ndarray,
        capture_trace: bool = False,
        with_values: bool = False,
        trace_name: str = "3dgs",
    ) -> GradientsAndTrace:
        """L1 loss against *target* and gradients for all parameters."""
        loss = l1_loss(context.image, target)
        grad_image = l1_loss_grad(context.image, target)

        screen = rasterize_backward(
            context.raster,
            grad_image,
            capture_trace=capture_trace,
            with_values=with_values,
            compute_cycles=self.compute_cycles,
            bfly_eligible=True,
            trace_name=trace_name,
        )
        geometry = project_backward(
            self.scene,
            camera,
            context.projected,
            screen.grad_mean2d,
            screen.grad_conic,
        )

        opacities = self.scene.opacities
        gradients = {
            "positions": geometry["positions"],
            "log_scales": geometry["log_scales"],
            "quaternions": geometry["quaternions"],
            "opacity_logits": screen.grad_opacities
            * opacities * (1.0 - opacities),
        }
        if context.sh_pre_clamp is not None:
            from repro.render.sh import eval_sh_backward

            # The rasterizer clips colors to [0, 1]; the upper clip gates.
            gated = np.where(
                context.sh_pre_clamp <= 1.0, screen.grad_colors, 0.0
            )
            grad_sh, grad_pos_sh = eval_sh_backward(
                self.scene.sh_coeffs,
                self.scene.positions,
                camera.position,
                context.sh_pre_clamp,
                gated,
            )
            gradients["sh_coeffs"] = grad_sh
            gradients["positions"] = gradients["positions"] + grad_pos_sh
        else:
            gradients["colors"] = screen.grad_colors
        return GradientsAndTrace(
            loss=loss, gradients=gradients, trace=screen.trace, screen=screen
        )

    def loss_only(self, camera: Camera, target: np.ndarray) -> float:
        """Forward + loss without keeping gradients (for grad checks)."""
        return l1_loss(self.forward(camera).image, target)
