"""NvDiffRec-style cubemap texture learning (§6 workload "NV").

NvDiffRec (Munkberg et al. 2022) learns material/lighting parameters by
differentiable rendering; the paper's evaluation trains a *specular cubemap
texture* from rendered mesh images.  We reproduce that task with a fixed
mirror sphere: each pixel's view ray reflects off the sphere and samples
the learnable cubemap with bilinear filtering.  The backward pass scatters
``dL/dC`` into the four bilinear texels of each hit pixel.

Atomic-traffic character (and why it matters for ARC): neighbouring pixels
reflect into *nearby but different* texels, so a warp's lanes split into
several same-address groups, and background/miss lanes are inactive.  This
is the low intra-warp-locality, many-inactive-threads regime where the
paper reports CCCL gains little (§7.2, Figure 26).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.render.camera import Camera
from repro.render.loss import l1_loss, l1_loss_grad
from repro.trace.events import INACTIVE, KernelTrace

__all__ = ["Cubemap", "CubemapRenderer", "procedural_cubemap"]

#: Image tile edge used for warp mapping (matches the rasterizer).
_TILE = 16
_WARPS_PER_TILE = _TILE * _TILE // WARP_SIZE
#: Channels scattered atomically per texel update.
N_TEXEL_PARAMS = 3
#: Bilinear filtering touches four texels per sample.
BILINEAR_CORNERS = 4


@dataclass
class Cubemap:
    """A learnable 6-face RGB cubemap."""

    texels: np.ndarray  # (6, R, R, 3)

    def __post_init__(self) -> None:
        texels = np.ascontiguousarray(self.texels, dtype=np.float64)
        if texels.ndim != 4 or texels.shape[0] != 6 or texels.shape[3] != 3:
            raise ValueError("texels must have shape (6, R, R, 3)")
        if texels.shape[1] != texels.shape[2]:
            raise ValueError("cubemap faces must be square")
        object.__setattr__(self, "texels", texels)

    @property
    def resolution(self) -> int:
        return self.texels.shape[1]

    @property
    def n_texels(self) -> int:
        return 6 * self.resolution**2

    def parameters(self) -> dict[str, np.ndarray]:
        """Named learnable arrays (views, not copies) for optimizers."""
        return {"texels": self.texels}

    @classmethod
    def constant(cls, resolution: int, value: float = 0.5) -> "Cubemap":
        return cls(np.full((6, resolution, resolution, 3), value))


def procedural_cubemap(resolution: int, seed: int = 0,
                       n_blobs: int = 24) -> Cubemap:
    """A colourful target environment map (Gaussian blobs per face)."""
    rng = np.random.default_rng(seed)
    texels = np.full((6, resolution, resolution, 3), 0.1)
    grid = (np.arange(resolution) + 0.5) / resolution
    v, u = np.meshgrid(grid, grid, indexing="ij")
    for _ in range(n_blobs):
        face = rng.integers(0, 6)
        center = rng.uniform(0.1, 0.9, size=2)
        width = rng.uniform(0.05, 0.25)
        color = rng.uniform(0.2, 1.0, size=3)
        blob = np.exp(
            -((u - center[0]) ** 2 + (v - center[1]) ** 2) / (2 * width**2)
        )
        texels[face] += blob[:, :, None] * color
    return Cubemap(np.clip(texels, 0.0, 1.0))


def _direction_to_cube(directions: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map unit directions to (face, u, v) with u, v in [-1, 1]."""
    x, y, z = directions[..., 0], directions[..., 1], directions[..., 2]
    ax, ay, az = np.abs(x), np.abs(y), np.abs(z)
    face = np.zeros(directions.shape[:-1], dtype=np.int64)
    u = np.zeros_like(x)
    v = np.zeros_like(x)

    # +x / -x
    m = (ax >= ay) & (ax >= az)
    pos = m & (x >= 0)
    neg = m & (x < 0)
    face[pos], face[neg] = 0, 1
    with np.errstate(divide="ignore", invalid="ignore"):
        u[pos], v[pos] = -z[pos] / ax[pos], -y[pos] / ax[pos]
        u[neg], v[neg] = z[neg] / ax[neg], -y[neg] / ax[neg]
        # +y / -y
        m = (ay > ax) & (ay >= az)
        pos = m & (y >= 0)
        neg = m & (y < 0)
        face[pos], face[neg] = 2, 3
        u[pos], v[pos] = x[pos] / ay[pos], z[pos] / ay[pos]
        u[neg], v[neg] = x[neg] / ay[neg], -z[neg] / ay[neg]
        # +z / -z
        m = (az > ax) & (az > ay)
        pos = m & (z >= 0)
        neg = m & (z < 0)
        face[pos], face[neg] = 4, 5
        u[pos], v[pos] = x[pos] / az[pos], -y[pos] / az[pos]
        u[neg], v[neg] = -x[neg] / az[neg], -y[neg] / az[neg]
    return face, u, v


@dataclass
class _SampleContext:
    """Bilinear sampling state kept for backward and trace capture."""

    hit: np.ndarray            # (H, W) bool
    texel_flat: np.ndarray     # (H, W, 4) flat texel index per corner
    weights: np.ndarray        # (H, W, 4) bilinear weights


class CubemapRenderer:
    """Mirror-sphere renderer over a learnable cubemap."""

    def __init__(self, cubemap: Cubemap, sphere_radius: float = 1.0,
                 background: np.ndarray | None = None,
                 compute_cycles: float = 60.0):
        if sphere_radius <= 0:
            raise ValueError("sphere_radius must be positive")
        self.cubemap = cubemap
        self.sphere_radius = sphere_radius
        self.background = (
            np.zeros(3) if background is None
            else np.asarray(background, dtype=np.float64)
        )
        self.compute_cycles = compute_cycles
        self._last_context: _SampleContext | None = None

    # ------------------------------------------------------------------ #

    def _reflection_dirs(self, camera: Camera) -> tuple[np.ndarray, np.ndarray]:
        """Per-pixel reflection directions and the hit mask."""
        h, w = camera.height, camera.width
        ys, xs = np.meshgrid(np.arange(h) + 0.5, np.arange(w) + 0.5,
                             indexing="ij")
        dirs_cam = np.stack(
            [
                (xs - camera.cx) / camera.fx,
                (ys - camera.cy) / camera.fy,
                np.ones_like(xs),
            ],
            axis=-1,
        )
        dirs_cam /= np.linalg.norm(dirs_cam, axis=-1, keepdims=True)
        dirs = dirs_cam @ camera.rotation  # world-space ray directions

        origin = camera.position
        # |o + t d|^2 = rho^2 -> t^2 + 2 (o.d) t + |o|^2 - rho^2 = 0.
        b = dirs @ origin
        c = origin @ origin - self.sphere_radius**2
        disc = b**2 - c
        hit = disc > 0.0
        t_hit = -b - np.sqrt(np.where(hit, disc, 0.0))
        hit &= t_hit > 0.0

        points = origin + t_hit[..., None] * dirs
        normals = points / self.sphere_radius
        reflections = dirs - 2.0 * np.sum(dirs * normals, axis=-1,
                                          keepdims=True) * normals
        return reflections, hit

    def _sample_context(self, camera: Camera) -> _SampleContext:
        reflections, hit = self._reflection_dirs(camera)
        face, u, v = _direction_to_cube(
            np.where(hit[..., None], reflections, np.array([0.0, 0.0, 1.0]))
        )
        res = self.cubemap.resolution
        uf = np.clip((u * 0.5 + 0.5) * res - 0.5, 0.0, res - 1.0)
        vf = np.clip((v * 0.5 + 0.5) * res - 0.5, 0.0, res - 1.0)
        u0 = np.floor(uf).astype(np.int64)
        v0 = np.floor(vf).astype(np.int64)
        u1 = np.minimum(u0 + 1, res - 1)
        v1 = np.minimum(v0 + 1, res - 1)
        du = uf - u0
        dv = vf - v0

        weights = np.stack(
            [
                (1 - du) * (1 - dv),
                du * (1 - dv),
                (1 - du) * dv,
                du * dv,
            ],
            axis=-1,
        )
        base = face * res * res
        texel_flat = np.stack(
            [
                base + v0 * res + u0,
                base + v0 * res + u1,
                base + v1 * res + u0,
                base + v1 * res + u1,
            ],
            axis=-1,
        )
        return _SampleContext(hit=hit, texel_flat=texel_flat, weights=weights)

    # ------------------------------------------------------------------ #

    def forward(self, camera: Camera) -> np.ndarray:
        """Render the mirror sphere under the current cubemap."""
        if camera.width % _TILE or camera.height % _TILE:
            raise ValueError(f"image dimensions must be multiples of {_TILE}")
        ctx = self._sample_context(camera)
        flat = self.cubemap.texels.reshape(-1, 3)
        sampled = np.einsum(
            "hwk,hwkc->hwc", ctx.weights, flat[ctx.texel_flat]
        )
        image = np.where(ctx.hit[..., None], sampled, self.background)
        self._last_context = ctx
        return image

    render = forward

    def backward(
        self,
        camera: Camera,
        image: np.ndarray,
        target: np.ndarray,
        capture_trace: bool = False,
        with_values: bool = False,
        trace_name: str = "nvdiff",
    ):
        """L1 loss and texel gradients; optionally the atomic trace."""
        if self._last_context is None:
            raise RuntimeError("backward called before forward")
        ctx = self._last_context
        loss = l1_loss(image, target)
        grad_image = l1_loss_grad(image, target)
        grad_image = np.where(ctx.hit[..., None], grad_image, 0.0)

        grad_flat = np.zeros((self.cubemap.n_texels, 3))
        contrib = ctx.weights[..., None] * grad_image[..., None, :]
        np.add.at(
            grad_flat,
            ctx.texel_flat.reshape(-1),
            contrib.reshape(-1, 3),
        )

        trace = None
        if capture_trace:
            trace = self._capture_trace(
                camera, ctx, contrib, with_values, trace_name
            )
        gradients = {
            "texels": grad_flat.reshape(self.cubemap.texels.shape)
        }
        return loss, gradients, trace

    def loss_only(self, camera: Camera, target: np.ndarray) -> float:
        """Forward + loss without keeping gradients (for grad checks)."""
        return l1_loss(self.forward(camera), target)

    # ------------------------------------------------------------------ #

    def _capture_trace(self, camera, ctx, contrib, with_values, trace_name):
        """Warp trace: per tile, one batch per warp per bilinear corner."""
        h, w = camera.height, camera.width
        tiles_y, tiles_x = h // _TILE, w // _TILE

        # (H, W) -> (tiles, 256) pixel-major inside each tile.
        def tile_pixels(array):
            reshaped = array.reshape(
                tiles_y, _TILE, tiles_x, _TILE, *array.shape[2:]
            )
            return reshaped.transpose(
                0, 2, 1, 3, *range(4, reshaped.ndim)
            ).reshape(tiles_y * tiles_x, _TILE * _TILE, *array.shape[2:])

        hit_tiles = tile_pixels(ctx.hit)                  # (T, 256)
        texel_tiles = tile_pixels(ctx.texel_flat)         # (T, 256, 4)
        n_tiles = tiles_y * tiles_x

        lanes = np.where(
            hit_tiles[:, :, None], texel_tiles, INACTIVE
        )  # (T, 256, 4)
        # (T, warps, 32, corners) -> batches ordered corner-major per warp.
        lanes = lanes.reshape(n_tiles, _WARPS_PER_TILE, WARP_SIZE,
                              BILINEAR_CORNERS)
        lanes = lanes.transpose(0, 3, 1, 2)  # (T, 4, warps, 32)
        lane_slots = lanes.reshape(-1, WARP_SIZE)

        warp_ids = np.tile(
            np.repeat(np.arange(_WARPS_PER_TILE), 1),
            n_tiles * BILINEAR_CORNERS,
        ).reshape(n_tiles, BILINEAR_CORNERS, _WARPS_PER_TILE)
        warp_ids += (
            np.arange(n_tiles)[:, None, None] * _WARPS_PER_TILE
        )
        warp_ids = warp_ids.reshape(-1)

        values = None
        if with_values:
            contrib_tiles = tile_pixels(contrib)  # (T, 256, 4, 3)
            values = contrib_tiles.reshape(
                n_tiles, _WARPS_PER_TILE, WARP_SIZE, BILINEAR_CORNERS, 3
            ).transpose(0, 3, 1, 2, 4).reshape(-1, WARP_SIZE, 3)

        # Warps whose rays all miss the sphere early-out cheaply.
        any_active = (lane_slots != INACTIVE).any(axis=1)
        compute = np.where(any_active, self.compute_cycles, 10.0)

        return KernelTrace(
            lane_slots=lane_slots,
            num_params=N_TEXEL_PARAMS,
            n_slots=self.cubemap.n_texels,
            warp_id=warp_ids,
            compute_cycles=compute,
            values=values,
            bfly_eligible=True,
            name=trace_name,
        )
