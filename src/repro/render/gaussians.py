"""3D Gaussian scene model (the 3DGS substrate, Kerbl et al. 2023).

A scene is a set of anisotropic 3D Gaussians, each parameterized by a
position, per-axis log-scales, an orientation quaternion, an RGB color and
an opacity logit -- all learnable.  This module provides the parameter
container plus the covariance construction ``Sigma = R S S^T R^T`` and its
exact backward pass (needed to chain screen-space gradients to the
quaternion/scale parameters, as the real 3DGS CUDA kernels do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "GaussianScene",
    "quat_to_rotation",
    "quat_rotation_backward",
    "build_covariance",
    "covariance_backward",
]


def quat_to_rotation(quats: np.ndarray) -> np.ndarray:
    """Rotation matrices from (N, 4) quaternions in (w, x, y, z) order.

    Quaternions are normalized internally; gradients through the
    normalization are handled by :func:`quat_rotation_backward`.
    """
    quats = np.asarray(quats, dtype=np.float64)
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    if np.any(norms < 1e-12):
        raise ValueError("zero-norm quaternion")
    w, x, y, z = (quats / norms).T
    rotation = np.empty((len(quats), 3, 3))
    rotation[:, 0, 0] = 1 - 2 * (y * y + z * z)
    rotation[:, 0, 1] = 2 * (x * y - w * z)
    rotation[:, 0, 2] = 2 * (x * z + w * y)
    rotation[:, 1, 0] = 2 * (x * y + w * z)
    rotation[:, 1, 1] = 1 - 2 * (x * x + z * z)
    rotation[:, 1, 2] = 2 * (y * z - w * x)
    rotation[:, 2, 0] = 2 * (x * z - w * y)
    rotation[:, 2, 1] = 2 * (y * z + w * x)
    rotation[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return rotation


def quat_rotation_backward(
    quats: np.ndarray, grad_rotation: np.ndarray
) -> np.ndarray:
    """dL/dquat given dL/dR, including the normalization Jacobian."""
    quats = np.asarray(quats, dtype=np.float64)
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    unit = quats / norms
    w, x, y, z = unit.T
    g = grad_rotation

    # Partials of each R entry w.r.t. the *normalized* quaternion.
    dw = 2 * (
        -z * g[:, 0, 1] + y * g[:, 0, 2]
        + z * g[:, 1, 0] - x * g[:, 1, 2]
        - y * g[:, 2, 0] + x * g[:, 2, 1]
    )
    dx = 2 * (
        y * g[:, 0, 1] + z * g[:, 0, 2]
        + y * g[:, 1, 0] - 2 * x * g[:, 1, 1] - w * g[:, 1, 2]
        + z * g[:, 2, 0] + w * g[:, 2, 1] - 2 * x * g[:, 2, 2]
    )
    dy = 2 * (
        -2 * y * g[:, 0, 0] + x * g[:, 0, 1] + w * g[:, 0, 2]
        + x * g[:, 1, 0] + z * g[:, 1, 2]
        - w * g[:, 2, 0] + z * g[:, 2, 1] - 2 * y * g[:, 2, 2]
    )
    dz = 2 * (
        -2 * z * g[:, 0, 0] - w * g[:, 0, 1] + x * g[:, 0, 2]
        + w * g[:, 1, 0] - 2 * z * g[:, 1, 1] + y * g[:, 1, 2]
        + x * g[:, 2, 0] + y * g[:, 2, 1]
    )
    grad_unit = np.stack([dw, dx, dy, dz], axis=1)

    # Through q_unit = q / |q|: (I - u u^T) / |q|.
    dot = np.sum(grad_unit * unit, axis=1, keepdims=True)
    return (grad_unit - dot * unit) / norms


def build_covariance(
    log_scales: np.ndarray, quats: np.ndarray
) -> np.ndarray:
    """3D covariances ``Sigma = M M^T`` with ``M = R diag(exp(log_s))``."""
    scales = np.exp(np.asarray(log_scales, dtype=np.float64))
    rotation = quat_to_rotation(quats)
    m = rotation * scales[:, None, :]
    return m @ m.transpose(0, 2, 1)


def covariance_backward(
    log_scales: np.ndarray,
    quats: np.ndarray,
    grad_sigma: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """dL/dlog_scales and dL/dquats from symmetric dL/dSigma (N, 3, 3)."""
    scales = np.exp(np.asarray(log_scales, dtype=np.float64))
    rotation = quat_to_rotation(quats)
    m = rotation * scales[:, None, :]
    grad_sym = grad_sigma + grad_sigma.transpose(0, 2, 1)
    grad_m = grad_sym @ m  # d(M M^T)/dM with symmetric upstream
    grad_scales = np.einsum("nij,nij->nj", rotation, grad_m)
    grad_log_scales = grad_scales * scales
    grad_rotation = grad_m * scales[:, None, :]
    grad_quats = quat_rotation_backward(quats, grad_rotation)
    return grad_log_scales, grad_quats


@dataclass
class GaussianScene:
    """Learnable 3D Gaussian scene parameters (all float64 numpy arrays).

    The trace-relevant parameter count per Gaussian during the backward
    pass is 9 (the values the real 3DGS kernel accumulates atomically):
    2 for the 2D mean, 3 for the conic, 3 for the color, 1 for opacity.
    """

    positions: np.ndarray
    log_scales: np.ndarray
    quaternions: np.ndarray
    colors: np.ndarray
    opacity_logits: np.ndarray

    #: Atomically-accumulated gradient parameters per primitive (§3).
    ATOMIC_PARAMS = 9

    def __post_init__(self) -> None:
        n = len(self.positions)
        arrays = {
            "positions": (n, 3),
            "log_scales": (n, 3),
            "quaternions": (n, 4),
            "colors": (n, 3),
            "opacity_logits": (n,),
        }
        for name, shape in arrays.items():
            value = np.ascontiguousarray(getattr(self, name), dtype=np.float64)
            if value.shape != shape:
                raise ValueError(f"{name} must have shape {shape}, got {value.shape}")
            setattr(self, name, value)

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def opacities(self) -> np.ndarray:
        """Opacities in (0, 1) via the sigmoid activation."""
        return 1.0 / (1.0 + np.exp(-self.opacity_logits))

    def covariances(self) -> np.ndarray:
        """3D covariance matrix of every Gaussian."""
        return build_covariance(self.log_scales, self.quaternions)

    def parameters(self) -> dict[str, np.ndarray]:
        """Named learnable arrays (views, not copies) for optimizers."""
        return {
            "positions": self.positions,
            "log_scales": self.log_scales,
            "quaternions": self.quaternions,
            "colors": self.colors,
            "opacity_logits": self.opacity_logits,
        }

    def zero_gradients(self) -> dict[str, np.ndarray]:
        """A fresh gradient buffer per parameter array."""
        return {name: np.zeros_like(value)
                for name, value in self.parameters().items()}

    @classmethod
    def random(
        cls,
        n_gaussians: int,
        extent: float = 1.0,
        seed: int = 0,
        base_scale: float = 0.08,
    ) -> "GaussianScene":
        """A random cloud of Gaussians inside a cube of half-width *extent*."""
        if n_gaussians <= 0:
            raise ValueError("n_gaussians must be positive")
        rng = np.random.default_rng(seed)
        quats = rng.standard_normal((n_gaussians, 4))
        quats /= np.linalg.norm(quats, axis=1, keepdims=True)
        return cls(
            positions=rng.uniform(-extent, extent, size=(n_gaussians, 3)),
            log_scales=np.log(base_scale)
            + rng.uniform(-0.7, 0.7, size=(n_gaussians, 3)),
            quaternions=quats,
            colors=rng.uniform(0.05, 0.95, size=(n_gaussians, 3)),
            opacity_logits=rng.uniform(0.0, 2.0, size=n_gaussians),
        )
