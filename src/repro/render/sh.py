"""Degree-1 spherical-harmonics color for Gaussian scenes.

Real 3DGS stores view-dependent color as spherical-harmonics coefficients
per Gaussian and evaluates them along the camera→Gaussian direction each
frame.  This module implements the degree-1 band (4 coefficients per
channel -- the dominant appearance terms) with the reference
implementation's constants and conventions, including the exact backward
pass to both the coefficients and the viewing direction (and through the
direction's normalization to the Gaussian position).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.gaussians import GaussianScene

__all__ = [
    "SH_C0",
    "SH_C1",
    "N_SH_COEFFS",
    "SHGaussianScene",
    "eval_sh_colors",
    "eval_sh_backward",
    "sh_from_rgb",
]

#: Band-0 (constant) basis coefficient, as in the 3DGS reference code.
SH_C0 = 0.28209479177387814
#: Band-1 basis coefficient.
SH_C1 = 0.4886025119029199
#: Coefficients per color channel at degree 1.
N_SH_COEFFS = 4


def sh_from_rgb(colors: np.ndarray) -> np.ndarray:
    """Degree-1 coefficients whose evaluation equals a constant *colors*.

    The inverse of the band-0 term: ``(rgb - 0.5) / SH_C0`` in the first
    coefficient, zeros in the direction-dependent band.
    """
    colors = np.asarray(colors, dtype=np.float64)
    if colors.ndim != 2 or colors.shape[1] != 3:
        raise ValueError("colors must be (N, 3)")
    coeffs = np.zeros((len(colors), N_SH_COEFFS, 3))
    coeffs[:, 0, :] = (colors - 0.5) / SH_C0
    return coeffs


def _directions(positions: np.ndarray, camera_position: np.ndarray):
    deltas = positions - camera_position
    norms = np.linalg.norm(deltas, axis=1, keepdims=True)
    norms = np.maximum(norms, 1e-12)
    return deltas / norms, norms


def eval_sh_colors(
    coeffs: np.ndarray,
    positions: np.ndarray,
    camera_position: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate degree-1 SH along the camera→Gaussian directions.

    Follows the 3DGS reference:
    ``c = SH_C0*sh0 - SH_C1*(y*sh1) + SH_C1*(z*sh2) - SH_C1*(x*sh3)``
    followed by a ``+0.5`` shift and clamping at zero.

    Returns ``(colors, pre_clamp)``; the pre-clamp values are needed by
    the backward pass (the clamp gates gradients).
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.ndim != 3 or coeffs.shape[1:] != (N_SH_COEFFS, 3):
        raise ValueError(f"coeffs must be (N, {N_SH_COEFFS}, 3)")
    dirs, _ = _directions(positions, camera_position)
    x, y, z = dirs[:, 0:1], dirs[:, 1:2], dirs[:, 2:3]
    pre_clamp = (
        SH_C0 * coeffs[:, 0]
        - SH_C1 * y * coeffs[:, 1]
        + SH_C1 * z * coeffs[:, 2]
        - SH_C1 * x * coeffs[:, 3]
        + 0.5
    )
    return np.maximum(pre_clamp, 0.0), pre_clamp


def eval_sh_backward(
    coeffs: np.ndarray,
    positions: np.ndarray,
    camera_position: np.ndarray,
    pre_clamp: np.ndarray,
    grad_colors: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """dL/dcoeffs and dL/dpositions for :func:`eval_sh_colors`."""
    dirs, norms = _directions(positions, camera_position)
    gated = np.where(pre_clamp > 0.0, grad_colors, 0.0)  # clamp gate

    x, y, z = dirs[:, 0:1], dirs[:, 1:2], dirs[:, 2:3]
    grad_coeffs = np.empty_like(np.asarray(coeffs, dtype=np.float64))
    grad_coeffs[:, 0] = SH_C0 * gated
    grad_coeffs[:, 1] = -SH_C1 * y * gated
    grad_coeffs[:, 2] = SH_C1 * z * gated
    grad_coeffs[:, 3] = -SH_C1 * x * gated

    # d(color)/d(dir): the band-1 terms are linear in the direction.
    grad_dir = np.stack(
        [
            -SH_C1 * np.sum(coeffs[:, 3] * gated, axis=1),
            -SH_C1 * np.sum(coeffs[:, 1] * gated, axis=1),
            SH_C1 * np.sum(coeffs[:, 2] * gated, axis=1),
        ],
        axis=1,
    )
    # Through dir = delta / |delta|: (I - dir dir^T) / |delta|.
    dot = np.sum(grad_dir * dirs, axis=1, keepdims=True)
    grad_positions = (grad_dir - dot * dirs) / norms
    return grad_coeffs, grad_positions


@dataclass
class SHGaussianScene(GaussianScene):
    """Gaussian scene with view-dependent (degree-1 SH) color.

    The inherited ``colors`` array becomes a derived per-view quantity;
    the learnable appearance parameters are ``sh_coeffs`` of shape
    ``(N, 4, 3)``.
    """

    sh_coeffs: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sh_coeffs is None:
            self.sh_coeffs = sh_from_rgb(self.colors)
        sh_coeffs = np.ascontiguousarray(self.sh_coeffs, dtype=np.float64)
        if sh_coeffs.shape != (len(self), N_SH_COEFFS, 3):
            raise ValueError(
                f"sh_coeffs must be ({len(self)}, {N_SH_COEFFS}, 3)"
            )
        self.sh_coeffs = sh_coeffs

    def parameters(self) -> dict[str, np.ndarray]:
        """Learnable arrays: SH coefficients replace the static colors."""
        params = super().parameters()
        del params["colors"]
        params["sh_coeffs"] = self.sh_coeffs
        return params

    @classmethod
    def from_scene(cls, scene: GaussianScene) -> "SHGaussianScene":
        """Wrap a static-color scene; SH band 0 reproduces its colors."""
        return cls(
            positions=scene.positions.copy(),
            log_scales=scene.log_scales.copy(),
            quaternions=scene.quaternions.copy(),
            colors=scene.colors.copy(),
            opacity_logits=scene.opacity_logits.copy(),
            sh_coeffs=sh_from_rgb(scene.colors),
        )
