"""EWA projection of 3D Gaussians to screen space, with exact backward.

Forward (per Gaussian, mirroring the 3DGS preprocess kernel):

* camera-space mean ``t = R (p - c)``; cull ``t_z <= near``;
* 2D mean via pinhole projection;
* 2D covariance ``cov2d = U Sigma U^T + eps I`` with ``U = J R`` where
  ``J`` is the local affine (Jacobian) approximation of the projection;
* conic = cov2d^{-1} and a 3-sigma screen radius for tile binning.

Backward chains the atomically-accumulated screen-space gradients
(dL/dmean2d, dL/dconic) to dL/dposition, dL/dlog_scale, dL/dquaternion --
this is the non-atomic per-Gaussian stage of the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.camera import Camera
from repro.render.gaussians import GaussianScene, covariance_backward

__all__ = ["ProjectedGaussians", "project_gaussians", "project_backward"]

#: Screen-space dilation added to 2D covariances (same constant as 3DGS).
EPS_2D = 0.3


@dataclass
class ProjectedGaussians:
    """Screen-space Gaussians plus the intermediates backward needs."""

    mean2d: np.ndarray        # (N, 2) pixel coordinates
    depth: np.ndarray         # (N,) camera-space z
    conic: np.ndarray         # (N, 3) inverse 2D covariance (xx, xy, yy)
    radius: np.ndarray        # (N,) 3-sigma extent in pixels (0 if culled)
    valid: np.ndarray         # (N,) bool: in front of the near plane
    # Intermediates retained for the backward pass:
    t: np.ndarray             # (N, 3) camera-space means
    u: np.ndarray             # (N, 2, 3) J @ R
    cov2d: np.ndarray         # (N, 2, 2)
    sigma3d: np.ndarray       # (N, 3, 3)

    def __len__(self) -> int:
        return len(self.mean2d)


def project_gaussians(scene: GaussianScene, camera: Camera) -> ProjectedGaussians:
    """Project every Gaussian of *scene* through *camera*."""
    t = camera.world_to_camera(scene.positions)
    depth = t[:, 2]
    valid = depth > camera.near
    safe_z = np.where(valid, depth, 1.0)

    mean2d = np.stack(
        [
            camera.fx * t[:, 0] / safe_z + camera.cx,
            camera.fy * t[:, 1] / safe_z + camera.cy,
        ],
        axis=1,
    )

    n = len(scene)
    jac = np.zeros((n, 2, 3))
    jac[:, 0, 0] = camera.fx / safe_z
    jac[:, 0, 2] = -camera.fx * t[:, 0] / safe_z**2
    jac[:, 1, 1] = camera.fy / safe_z
    jac[:, 1, 2] = -camera.fy * t[:, 1] / safe_z**2
    u = jac @ camera.rotation

    sigma3d = scene.covariances()
    cov2d = u @ sigma3d @ u.transpose(0, 2, 1)
    cov2d[:, 0, 0] += EPS_2D
    cov2d[:, 1, 1] += EPS_2D

    det = cov2d[:, 0, 0] * cov2d[:, 1, 1] - cov2d[:, 0, 1] ** 2
    det = np.maximum(det, 1e-12)
    conic = np.stack(
        [
            cov2d[:, 1, 1] / det,
            -cov2d[:, 0, 1] / det,
            cov2d[:, 0, 0] / det,
        ],
        axis=1,
    )

    mid = 0.5 * (cov2d[:, 0, 0] + cov2d[:, 1, 1])
    eig_max = mid + np.sqrt(np.maximum(mid**2 - det, 0.0))
    radius = np.where(valid, np.ceil(3.0 * np.sqrt(eig_max)), 0.0)

    mean2d = np.where(valid[:, None], mean2d, 0.0)
    return ProjectedGaussians(
        mean2d=mean2d,
        depth=depth,
        conic=conic,
        radius=radius,
        valid=valid,
        t=t,
        u=u,
        cov2d=cov2d,
        sigma3d=sigma3d,
    )


def project_backward(
    scene: GaussianScene,
    camera: Camera,
    projected: ProjectedGaussians,
    grad_mean2d: np.ndarray,
    grad_conic: np.ndarray,
) -> dict[str, np.ndarray]:
    """Chain screen-space gradients back to the 3D scene parameters.

    Parameters
    ----------
    grad_mean2d:
        (N, 2) accumulated dL/d(2D mean).
    grad_conic:
        (N, 3) accumulated dL/d(conic xx, xy, yy).

    Returns
    -------
    dict with ``positions``, ``log_scales``, ``quaternions`` gradient
    arrays.  Culled Gaussians receive zero gradients.
    """
    n = len(scene)
    valid = projected.valid
    grad_mean2d = np.where(valid[:, None], grad_mean2d, 0.0)
    grad_conic = np.where(valid[:, None], grad_conic, 0.0)

    # --- conic -> cov2d (inverse of a symmetric 2x2) --------------------
    conic_mat = np.empty((n, 2, 2))
    conic_mat[:, 0, 0] = projected.conic[:, 0]
    conic_mat[:, 0, 1] = conic_mat[:, 1, 0] = projected.conic[:, 1]
    conic_mat[:, 1, 1] = projected.conic[:, 2]
    grad_conic_mat = np.empty((n, 2, 2))
    grad_conic_mat[:, 0, 0] = grad_conic[:, 0]
    grad_conic_mat[:, 0, 1] = grad_conic_mat[:, 1, 0] = grad_conic[:, 1] / 2
    grad_conic_mat[:, 1, 1] = grad_conic[:, 2]
    grad_cov2d = -conic_mat @ grad_conic_mat @ conic_mat

    # --- cov2d = U Sigma U^T + eps I ------------------------------------
    u = projected.u
    sigma3d = projected.sigma3d
    grad_cov2d_sym = grad_cov2d + grad_cov2d.transpose(0, 2, 1)
    grad_u = grad_cov2d_sym @ u @ sigma3d
    grad_sigma3d = u.transpose(0, 2, 1) @ grad_cov2d @ u

    # --- U = J R: gradients w.r.t. the projection Jacobian --------------
    grad_jac = grad_u @ camera.rotation.T

    # --- J and mean2d depend on the camera-space mean t -----------------
    t = projected.t
    safe_z = np.where(valid, t[:, 2], 1.0)
    fx, fy = camera.fx, camera.fy
    inv_z = 1.0 / safe_z
    inv_z2 = inv_z**2
    inv_z3 = inv_z2 * inv_z

    grad_t = np.zeros((n, 3))
    # mean2d path: x = fx tx/tz + cx, y = fy ty/tz + cy.
    grad_t[:, 0] += grad_mean2d[:, 0] * fx * inv_z
    grad_t[:, 1] += grad_mean2d[:, 1] * fy * inv_z
    grad_t[:, 2] += (
        -grad_mean2d[:, 0] * fx * t[:, 0] * inv_z2
        - grad_mean2d[:, 1] * fy * t[:, 1] * inv_z2
    )
    # J path: J00 = fx/tz, J02 = -fx tx/tz^2, J11 = fy/tz, J12 = -fy ty/tz^2.
    grad_t[:, 0] += grad_jac[:, 0, 2] * (-fx * inv_z2)
    grad_t[:, 1] += grad_jac[:, 1, 2] * (-fy * inv_z2)
    grad_t[:, 2] += (
        grad_jac[:, 0, 0] * (-fx * inv_z2)
        + grad_jac[:, 0, 2] * (2 * fx * t[:, 0] * inv_z3)
        + grad_jac[:, 1, 1] * (-fy * inv_z2)
        + grad_jac[:, 1, 2] * (2 * fy * t[:, 1] * inv_z3)
    )

    # --- t = R (p - c) ---------------------------------------------------
    grad_positions = grad_t @ camera.rotation

    # --- Sigma3 -> scales and quaternions --------------------------------
    grad_log_scales, grad_quats = covariance_backward(
        scene.log_scales, scene.quaternions, grad_sigma3d
    )

    invalid = ~valid
    grad_positions[invalid] = 0.0
    grad_log_scales[invalid] = 0.0
    grad_quats[invalid] = 0.0
    return {
        "positions": grad_positions,
        "log_scales": grad_log_scales,
        "quaternions": grad_quats,
    }
