"""Adaptive density control for Gaussian scenes (the 3DGS training loop).

Real 3DGS training interleaves gradient descent with *densification*:
Gaussians whose accumulated screen-space gradient is large are either
**split** (if already big -- the region is under-fitted by a too-coarse
primitive) or **cloned** (if small -- more primitives are needed), and
Gaussians whose opacity collapses are **pruned**.  Densification is why
real scenes grow to millions of primitives -- and therefore why the atomic
traffic the ARC paper attacks keeps growing during training.

The controller accumulates per-Gaussian gradient norms between
densification steps, then rewrites the scene arrays.  Optimizer state must
be reset afterwards (the arrays change length), as in the reference
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render.gaussians import GaussianScene

__all__ = ["DensifyStats", "DensificationController"]


@dataclass(frozen=True)
class DensifyStats:
    """What one densification step did."""

    cloned: int
    split: int
    pruned: int
    n_before: int
    n_after: int


class DensificationController:
    """Split / clone / prune controller for a :class:`GaussianScene`.

    Parameters
    ----------
    grad_threshold:
        Mean accumulated positional-gradient norm above which a Gaussian
        is densified.
    scale_threshold:
        World-space extent separating "clone" (small) from "split" (big).
    opacity_threshold:
        Gaussians whose opacity falls below this are pruned.
    split_factor:
        Scale shrink applied to the two halves of a split.
    """

    def __init__(
        self,
        grad_threshold: float = 2e-6,
        scale_threshold: float = 0.05,
        opacity_threshold: float = 0.02,
        split_factor: float = 1.6,
        seed: int = 0,
    ):
        if grad_threshold <= 0 or scale_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if not 0.0 <= opacity_threshold < 1.0:
            raise ValueError("opacity_threshold must be in [0, 1)")
        if split_factor <= 1.0:
            raise ValueError("split_factor must exceed 1")
        self.grad_threshold = grad_threshold
        self.scale_threshold = scale_threshold
        self.opacity_threshold = opacity_threshold
        self.split_factor = split_factor
        self._rng = np.random.default_rng(seed)
        self._grad_accum: np.ndarray | None = None
        self._steps = 0

    def accumulate(self, gradients: dict[str, np.ndarray]) -> None:
        """Record one iteration's positional gradient norms."""
        norms = np.linalg.norm(gradients["positions"], axis=1)
        if self._grad_accum is None:
            self._grad_accum = norms.copy()
        else:
            if len(norms) != len(self._grad_accum):
                raise ValueError(
                    "gradient length changed; call reset() after densify"
                )
            self._grad_accum += norms
        self._steps += 1

    def reset(self) -> None:
        """Clear accumulated statistics (after a densification step)."""
        self._grad_accum = None
        self._steps = 0

    def densify(self, scene: GaussianScene) -> tuple[GaussianScene, DensifyStats]:
        """One split/clone/prune pass; returns the new scene and stats."""
        if self._grad_accum is None or self._steps == 0:
            raise RuntimeError("no gradients accumulated since last reset")
        if len(self._grad_accum) != len(scene):
            raise ValueError("accumulated stats do not match the scene")

        mean_grad = self._grad_accum / self._steps
        scales = np.exp(scene.log_scales).max(axis=1)
        opacities = scene.opacities

        keep = opacities >= self.opacity_threshold
        hot = (mean_grad >= self.grad_threshold) & keep
        to_split = hot & (scales > self.scale_threshold)
        to_clone = hot & ~to_split

        clone_idx = np.nonzero(to_clone)[0]
        split_idx = np.nonzero(to_split)[0]

        # Split parents are replaced by their children; everything else
        # that survives the opacity prune is kept as-is.
        kept_mask = keep & ~to_split
        parts = {name: [value[kept_mask]]
                 for name, value in scene.parameters().items()}

        def append(indices, positions, log_scales):
            parts["positions"].append(positions)
            parts["log_scales"].append(log_scales)
            parts["quaternions"].append(scene.quaternions[indices])
            parts["colors"].append(scene.colors[indices])
            parts["opacity_logits"].append(scene.opacity_logits[indices])

        # Clone: duplicate, nudged along a random offset scaled by size.
        if len(clone_idx):
            offsets = self._rng.normal(
                scale=np.exp(scene.log_scales[clone_idx]),
                size=(len(clone_idx), 3),
            )
            append(clone_idx, scene.positions[clone_idx] + offsets,
                   scene.log_scales[clone_idx])

        # Split: two shrunken children sampled inside each parent.
        for _ in range(2 if len(split_idx) else 0):
            jitter = self._rng.normal(
                scale=np.exp(scene.log_scales[split_idx]),
                size=(len(split_idx), 3),
            )
            append(split_idx, scene.positions[split_idx] + jitter,
                   scene.log_scales[split_idx] - np.log(self.split_factor))

        new_scene = GaussianScene(
            positions=np.concatenate(parts["positions"]),
            log_scales=np.concatenate(parts["log_scales"]),
            quaternions=np.concatenate(parts["quaternions"]),
            colors=np.concatenate(parts["colors"]),
            opacity_logits=np.concatenate(parts["opacity_logits"]),
        )
        stats = DensifyStats(
            cloned=len(clone_idx),
            split=len(split_idx),
            pruned=int((~keep).sum()),
            n_before=len(scene),
            n_after=len(new_scene),
        )
        self.reset()
        return new_scene, stats
