"""Tile-based alpha-compositing rasterizer with atomic-trace capture.

Forward pass mirrors the 3DGS renderer: the screen is divided into 16x16
tiles, each tile gets the depth-sorted list of splats overlapping it, and
every pixel composites them front to back, terminating once transmittance
drops below 1e-4.

Backward pass mirrors the paper's Figure 5 kernel: each pixel walks its
tile's splat list and computes gradient contributions for the nine
screen-space parameters the real kernel accumulates *atomically*
(2D mean x/y, conic xx/xy/yy, color r/g/b, opacity).  When requested, the
backward pass also captures the warp-level atomic trace -- one batch per
(tile, splat, warp) with the lanes' activity determined by the same dynamic
conditions (in-extent, alpha threshold, transmittance termination) that
cause control divergence on a real GPU (paper Observations 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.trace.events import INACTIVE, KernelTrace

__all__ = [
    "TILE",
    "WARPS_PER_TILE",
    "Splats",
    "RasterOutput",
    "BackwardOutput",
    "rasterize",
    "rasterize_backward",
]

#: Tile edge in pixels (3DGS uses 16x16 thread blocks).
TILE = 16
#: 16*16 pixels / 32 lanes.
WARPS_PER_TILE = TILE * TILE // WARP_SIZE

#: Minimum alpha for a splat to contribute to a pixel (1/255, as in 3DGS).
ALPHA_MIN = 1.0 / 255.0
#: Maximum alpha per splat (numerical guard, as in 3DGS).
ALPHA_MAX = 0.99
#: Transmittance below which a pixel stops compositing.
T_MIN = 1e-4

#: Parameters accumulated atomically per splat in the backward kernel.
N_SCREEN_PARAMS = 9

#: Cycles a warp spends on a splat all its lanes skip (early-out checks).
SKIP_CYCLES = 10.0


@dataclass
class Splats:
    """Screen-space splats ready for rasterization (any primitive type)."""

    mean2d: np.ndarray      # (N, 2)
    conic: np.ndarray       # (N, 3) inverse 2D covariance (xx, xy, yy)
    radius: np.ndarray      # (N,) extent in pixels; 0 disables the splat
    depth: np.ndarray       # (N,) for front-to-back ordering
    colors: np.ndarray      # (N, 3) RGB in [0, 1]
    opacities: np.ndarray   # (N,) in (0, 1)

    def __post_init__(self) -> None:
        n = len(self.mean2d)
        shapes = {
            "mean2d": (n, 2), "conic": (n, 3), "radius": (n,),
            "depth": (n,), "colors": (n, 3), "opacities": (n,),
        }
        for name, shape in shapes.items():
            value = np.asarray(getattr(self, name), dtype=np.float64)
            if value.shape != shape:
                raise ValueError(f"{name} must have shape {shape}")
            setattr(self, name, value)

    def __len__(self) -> int:
        return len(self.mean2d)


@dataclass
class _TileWork:
    """One tile's compositing intermediates, kept for the backward pass."""

    tile_index: int
    x0: int
    y0: int
    splat_ids: np.ndarray        # (G,) depth-sorted global splat indices
    alpha: np.ndarray            # (P, G) effective alpha after termination
    transmittance: np.ndarray    # (P, G) T before each splat
    dx: np.ndarray               # (P, G)
    dy: np.ndarray               # (P, G)
    final_t: np.ndarray          # (P,)


@dataclass
class RasterOutput:
    """Rendered image plus everything the backward pass needs."""

    image: np.ndarray            # (H, W, 3)
    splats: Splats
    width: int
    height: int
    background: np.ndarray      # (3,)
    tiles: list[_TileWork] = field(default_factory=list)

    @property
    def n_pixel_splat_pairs(self) -> int:
        """Total (pixel, splat) pairs composited -- forward-work metric."""
        return sum(t.alpha.size for t in self.tiles)


@dataclass
class BackwardOutput:
    """Screen-space gradients and (optionally) the atomic trace."""

    grad_mean2d: np.ndarray      # (N, 2)
    grad_conic: np.ndarray       # (N, 3)
    grad_colors: np.ndarray      # (N, 3)
    grad_opacities: np.ndarray   # (N,)
    trace: KernelTrace | None = None


def _tile_bins(splats: Splats, width: int, height: int) -> list[np.ndarray]:
    """Splat ids per tile (row-major tile order)."""
    tiles_x = width // TILE
    tiles_y = height // TILE
    bins: list[list[int]] = [[] for _ in range(tiles_x * tiles_y)]
    live = np.nonzero(splats.radius > 0)[0]
    mean = splats.mean2d
    radius = splats.radius
    for idx in live:
        x_lo = max(int((mean[idx, 0] - radius[idx]) // TILE), 0)
        x_hi = min(int((mean[idx, 0] + radius[idx]) // TILE), tiles_x - 1)
        y_lo = max(int((mean[idx, 1] - radius[idx]) // TILE), 0)
        y_hi = min(int((mean[idx, 1] + radius[idx]) // TILE), tiles_y - 1)
        if x_hi < 0 or y_hi < 0 or x_lo >= tiles_x or y_lo >= tiles_y:
            continue
        for ty in range(y_lo, y_hi + 1):
            row = ty * tiles_x
            for tx in range(x_lo, x_hi + 1):
                bins[row + tx].append(idx)
    return [np.asarray(b, dtype=np.int64) for b in bins]


def _exclusive_cumprod(values: np.ndarray) -> np.ndarray:
    """Exclusive product along the last axis, starting at 1."""
    result = np.ones_like(values)
    np.cumprod(values[..., :-1], axis=-1, out=result[..., 1:])
    return result


def rasterize(
    splats: Splats,
    width: int,
    height: int,
    background: np.ndarray | None = None,
) -> RasterOutput:
    """Composite *splats* into an image, front to back per tile.

    *width* and *height* must be multiples of the 16-pixel tile size.
    """
    if width % TILE or height % TILE:
        raise ValueError(f"image dimensions must be multiples of {TILE}")
    background = (
        np.zeros(3) if background is None
        else np.asarray(background, dtype=np.float64)
    )
    if background.shape != (3,):
        raise ValueError("background must be an RGB triple")

    image = np.tile(background, (height, width, 1))
    output = RasterOutput(
        image=image, splats=splats, width=width, height=height,
        background=background,
    )

    bins = _tile_bins(splats, width, height)
    tiles_x = width // TILE
    # Pixel coordinates inside a tile (pixel centers), row-major.
    local = np.arange(TILE * TILE)
    px_local = (local % TILE) + 0.5
    py_local = (local // TILE) + 0.5

    for tile_index, ids in enumerate(bins):
        if len(ids) == 0:
            continue
        order = np.argsort(splats.depth[ids], kind="stable")
        ids = ids[order]
        x0 = (tile_index % tiles_x) * TILE
        y0 = (tile_index // tiles_x) * TILE

        dx = (x0 + px_local)[:, None] - splats.mean2d[ids, 0][None, :]
        dy = (y0 + py_local)[:, None] - splats.mean2d[ids, 1][None, :]
        cxx = splats.conic[ids, 0][None, :]
        cxy = splats.conic[ids, 1][None, :]
        cyy = splats.conic[ids, 2][None, :]
        power = -0.5 * (cxx * dx * dx + cyy * dy * dy) - cxy * dx * dy

        alpha = np.minimum(
            splats.opacities[ids][None, :] * np.exp(power), ALPHA_MAX
        )
        alpha = np.where((power <= 0.0) & (alpha >= ALPHA_MIN), alpha, 0.0)

        # Front-to-back termination: once transmittance crosses T_MIN the
        # pixel is done; zeroing later alphas freezes the cumulative
        # product, which exactly reproduces the sequential semantics.
        t_raw = _exclusive_cumprod(1.0 - alpha)
        alpha = np.where(t_raw < T_MIN, 0.0, alpha)
        transmittance = _exclusive_cumprod(1.0 - alpha)
        final_t = transmittance[:, -1] * (1.0 - alpha[:, -1])

        weights = alpha * transmittance
        tile_rgb = weights @ splats.colors[ids] + final_t[:, None] * background
        image[y0:y0 + TILE, x0:x0 + TILE] = tile_rgb.reshape(TILE, TILE, 3)

        output.tiles.append(
            _TileWork(
                tile_index=tile_index, x0=x0, y0=y0, splat_ids=ids,
                alpha=alpha, transmittance=transmittance,
                dx=dx, dy=dy, final_t=final_t,
            )
        )
    return output


def rasterize_backward(
    output: RasterOutput,
    grad_image: np.ndarray,
    capture_trace: bool = False,
    with_values: bool = False,
    compute_cycles: float = 120.0,
    bfly_eligible: bool = True,
    trace_name: str = "",
) -> BackwardOutput:
    """Backward pass of :func:`rasterize` plus optional trace capture.

    The returned trace has one slot per splat and ``N_SCREEN_PARAMS``
    atomic adds per active lane, matching the structure of the real 3DGS
    backward kernel.
    """
    splats = output.splats
    if grad_image.shape != output.image.shape:
        raise ValueError("grad_image must match the rendered image shape")

    n = len(splats)
    grad_mean2d = np.zeros((n, 2))
    grad_conic = np.zeros((n, 3))
    grad_colors = np.zeros((n, 3))
    grad_opacities = np.zeros(n)

    lane_slot_chunks: list[np.ndarray] = []
    warp_id_chunks: list[np.ndarray] = []
    value_chunks: list[np.ndarray] = []
    compute_chunks: list[np.ndarray] = []

    for tile in output.tiles:
        ids = tile.splat_ids
        n_splats = len(ids)
        pixel_grad = grad_image[
            tile.y0:tile.y0 + TILE, tile.x0:tile.x0 + TILE
        ].reshape(TILE * TILE, 3)

        alpha = tile.alpha
        trans = tile.transmittance
        weights = alpha * trans                       # (P, G)
        colors = splats.colors[ids]                    # (G, 3)
        active = alpha > 0.0

        # Suffix sums: S[p, j] = sum_{k > j} w[p,k] c[k] + final_T * bg.
        wc = weights[:, :, None] * colors[None, :, :]  # (P, G, 3)
        suffix = np.zeros_like(wc)
        if n_splats > 1:
            suffix[:, :-1] = np.cumsum(wc[:, ::-1], axis=1)[:, ::-1][:, 1:]
        suffix += (tile.final_t[:, None] * output.background[None, :])[:, None, :]

        one_minus_alpha = np.where(active, 1.0 - alpha, 1.0)
        dc_dalpha = colors[None, :, :] * trans[:, :, None] - suffix / one_minus_alpha[:, :, None]
        grad_alpha = np.einsum("pc,pgc->pg", pixel_grad, dc_dalpha)
        grad_alpha = np.where(active, grad_alpha, 0.0)

        # alpha = opacity * exp(power); the ALPHA_MAX clamp blocks gradients.
        clamped = alpha >= ALPHA_MAX
        grad_alpha_eff = np.where(clamped, 0.0, grad_alpha)
        opac = splats.opacities[ids][None, :]
        grad_opac_pg = grad_alpha_eff * np.where(active, alpha / opac, 0.0)
        grad_power = grad_alpha_eff * alpha

        cxx = splats.conic[ids, 0][None, :]
        cxy = splats.conic[ids, 1][None, :]
        cyy = splats.conic[ids, 2][None, :]
        dx, dy = tile.dx, tile.dy
        # d(power)/d(dx) with delta = pixel - mean; d(delta)/d(mean) = -1.
        grad_mean_x = grad_power * (cxx * dx + cxy * dy)
        grad_mean_y = grad_power * (cyy * dy + cxy * dx)
        grad_cxx = grad_power * (-0.5 * dx * dx)
        grad_cxy = grad_power * (-dx * dy)
        grad_cyy = grad_power * (-0.5 * dy * dy)
        grad_col_pg = weights[:, :, None] * pixel_grad[:, None, :]  # (P, G, 3)
        grad_col_pg = np.where(active[:, :, None], grad_col_pg, 0.0)

        # Scatter-add per splat (the reference semantics of the atomics).
        np.add.at(grad_mean2d[:, 0], ids, grad_mean_x.sum(axis=0))
        np.add.at(grad_mean2d[:, 1], ids, grad_mean_y.sum(axis=0))
        np.add.at(grad_conic[:, 0], ids, grad_cxx.sum(axis=0))
        np.add.at(grad_conic[:, 1], ids, grad_cxy.sum(axis=0))
        np.add.at(grad_conic[:, 2], ids, grad_cyy.sum(axis=0))
        np.add.at(grad_colors, ids, grad_col_pg.sum(axis=0))
        np.add.at(grad_opacities, ids, grad_opac_pg.sum(axis=0))

        if not capture_trace:
            continue

        # --- Warp trace: batches ordered back-to-front per warp ---------
        # Pixel p (row-major in the tile) maps to lane p % 32 of warp
        # p // 32, exactly like a 16x16 CUDA block.
        act = active.T.reshape(n_splats, WARPS_PER_TILE, WARP_SIZE)
        act = act[::-1]  # the backward kernel walks splats back-to-front
        gid = ids[::-1, None, None]
        lanes = np.where(act, gid, INACTIVE)          # (G, W, 32)
        lane_slot_chunks.append(lanes.reshape(-1, WARP_SIZE))
        # Warps with no active lane fail the early-out checks quickly and
        # skip the gradient math entirely.
        any_active = act.any(axis=2)
        compute_chunks.append(
            np.where(any_active, compute_cycles, SKIP_CYCLES).reshape(-1)
        )
        warp_base = tile.tile_index * WARPS_PER_TILE
        warp_id_chunks.append(
            np.tile(np.arange(warp_base, warp_base + WARPS_PER_TILE),
                    n_splats)
        )
        if with_values:
            vals = np.stack(
                [
                    grad_mean_x, grad_mean_y, grad_cxx, grad_cxy, grad_cyy,
                    grad_col_pg[:, :, 0], grad_col_pg[:, :, 1],
                    grad_col_pg[:, :, 2], grad_opac_pg,
                ],
                axis=-1,
            )  # (P, G, 9)
            vals = vals.transpose(1, 0, 2).reshape(
                n_splats, WARPS_PER_TILE, WARP_SIZE, N_SCREEN_PARAMS
            )[::-1]
            value_chunks.append(
                vals.reshape(-1, WARP_SIZE, N_SCREEN_PARAMS)
            )

    trace = None
    if capture_trace:
        if lane_slot_chunks:
            lane_slots = np.concatenate(lane_slot_chunks)
            warp_ids = np.concatenate(warp_id_chunks)
            values = np.concatenate(value_chunks) if with_values else None
            compute = np.concatenate(compute_chunks)
        else:
            lane_slots = np.zeros((0, WARP_SIZE), dtype=np.int64)
            warp_ids = np.zeros(0, dtype=np.int64)
            compute = np.zeros(0)
            values = (
                np.zeros((0, WARP_SIZE, N_SCREEN_PARAMS))
                if with_values else None
            )
        trace = KernelTrace(
            lane_slots=lane_slots,
            num_params=N_SCREEN_PARAMS,
            n_slots=max(n, 1),
            warp_id=warp_ids,
            compute_cycles=compute,
            values=values,
            bfly_eligible=bfly_eligible,
            name=trace_name,
        )

    return BackwardOutput(
        grad_mean2d=grad_mean2d,
        grad_conic=grad_conic,
        grad_colors=grad_colors,
        grad_opacities=grad_opacities,
        trace=trace,
    )
