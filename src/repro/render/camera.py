"""Pinhole cameras and training viewpoints.

The renderers use a classic pinhole model: world points are transformed to
camera space with a rigid transform and projected with per-axis focal
lengths.  ``orbit_cameras`` produces the ring of training viewpoints the
synthetic datasets use (§6 of the paper trains each scene from many views).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Camera", "look_at_rotation", "orbit_cameras"]


def look_at_rotation(position: np.ndarray, target: np.ndarray,
                     up: np.ndarray | None = None) -> np.ndarray:
    """World-to-camera rotation for a camera at *position* facing *target*.

    Camera convention: +x right, +y down, +z forward (into the scene).
    """
    position = np.asarray(position, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.array([0.0, 1.0, 0.0]) if up is None else np.asarray(up, float)

    forward = target - position
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("camera position and target coincide")
    forward = forward / norm
    right = np.cross(up, forward)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-12:
        raise ValueError("up vector is parallel to the view direction")
    right = right / right_norm
    true_up = np.cross(forward, right)
    return np.stack([right, true_up, forward])


@dataclass(frozen=True)
class Camera:
    """A pinhole camera with a world-to-camera rigid transform.

    Attributes
    ----------
    rotation:
        (3, 3) world-to-camera rotation.
    position:
        Camera center in world coordinates.
    fx, fy:
        Focal lengths in pixels.
    width, height:
        Image resolution in pixels.
    """

    rotation: np.ndarray
    position: np.ndarray
    fx: float
    fy: float
    width: int
    height: int
    near: float = 0.05

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=np.float64)
        position = np.asarray(self.position, dtype=np.float64)
        if rotation.shape != (3, 3):
            raise ValueError("rotation must be 3x3")
        if position.shape != (3,):
            raise ValueError("position must be a 3-vector")
        if not np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-8):
            raise ValueError("rotation must be orthonormal")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "position", position)

    @classmethod
    def looking_at(cls, position, target, fov_degrees: float = 50.0,
                   width: int = 96, height: int = 96, **kwargs) -> "Camera":
        """Camera at *position* looking at *target* with a vertical FOV."""
        rotation = look_at_rotation(position, target)
        fy = 0.5 * height / np.tan(np.radians(fov_degrees) / 2)
        fx = fy  # square pixels
        return cls(rotation=rotation, position=np.asarray(position, float),
                   fx=fx, fy=fy, width=width, height=height, **kwargs)

    @property
    def cx(self) -> float:
        """Principal point x (image center)."""
        return self.width / 2.0

    @property
    def cy(self) -> float:
        """Principal point y (image center)."""
        return self.height / 2.0

    def world_to_camera(self, points: np.ndarray) -> np.ndarray:
        """Transform (N, 3) world points to camera space."""
        points = np.asarray(points, dtype=np.float64)
        return (points - self.position) @ self.rotation.T

    def project(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project (N, 3) world points.

        Returns ``(pixels, depths)`` where ``pixels`` is (N, 2); points
        behind the near plane get non-finite pixels and their depth is
        still returned so callers can cull on ``depth < near``.
        """
        cam = self.world_to_camera(points)
        depth = cam[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            x = np.where(depth > self.near, self.fx * cam[:, 0] / depth, np.nan)
            y = np.where(depth > self.near, self.fy * cam[:, 1] / depth, np.nan)
        pixels = np.stack([x + self.cx, y + self.cy], axis=1)
        return pixels, depth


def orbit_cameras(
    n_views: int,
    radius: float = 4.0,
    target: np.ndarray | None = None,
    elevation_degrees: float = 20.0,
    width: int = 96,
    height: int = 96,
    fov_degrees: float = 50.0,
) -> list[Camera]:
    """A ring of *n_views* cameras orbiting *target* at fixed elevation."""
    if n_views <= 0:
        raise ValueError("n_views must be positive")
    target = np.zeros(3) if target is None else np.asarray(target, float)
    elevation = np.radians(elevation_degrees)
    cameras = []
    for azimuth in np.linspace(0.0, 2 * np.pi, n_views, endpoint=False):
        position = target + radius * np.array(
            [
                np.cos(elevation) * np.cos(azimuth),
                -np.sin(elevation),
                np.cos(elevation) * np.sin(azimuth),
            ]
        )
        cameras.append(
            Camera.looking_at(
                position, target, fov_degrees=fov_degrees,
                width=width, height=height,
            )
        )
    return cameras
