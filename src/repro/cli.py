"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library for the common one-off questions:

* ``list``       -- available workloads, strategies and GPUs.
* ``profile``    -- a workload's atomic-trace characteristics (Obs. 1/2).
* ``simulate``   -- speedup table of strategies on one workload.
* ``timeline``   -- summarize a saved telemetry timeline file.
* ``train``      -- train a workload's model and report loss/PSNR.
* ``breakdown``  -- training-time phase breakdown (Figure 4).
* ``tune``       -- balancing-threshold sweep (§5.5.3 / Figure 23).
* ``bench``      -- run a named benchmark scenario, write its
  ``BENCH_<scenario>.json``, optionally diff against a baseline.
* ``serve``      -- run the simulation service daemon (or query a
  running one with ``--status`` / ``--stop``).
* ``request``    -- submit one simulation request to a running daemon.
* ``cache``      -- inspect or clear the persistent simulation cache.
* ``lint``       -- arclint domain-invariant static analysis (ARC001-12).

``simulate`` accepts ``--jobs N`` to fan cells across worker processes
(default from ``REPRO_JOBS``) and ``--no-cache`` to bypass the
persistent disk cache; both paths are bit-identical to a serial
uncached run.  Parallel runs are fault tolerant (retries, per-cell
timeouts via ``REPRO_CELL_TIMEOUT``, pool-crash recovery, resumable
manifests) and print a recovery report after the table.

Observability: ``simulate --timeline out.json`` saves a per-strategy
telemetry timeline, ``profile --perfetto out.trace.json`` writes a
Perfetto-loadable Chrome trace, and ``timeline <file>`` summarizes a
saved timeline (peak LSU occupancy, saturation fractions, hottest
slots).  ``--format json`` on ``simulate``/``profile`` emits
machine-readable results; ``--log FILE`` streams structured JSONL run
events (cells, cache, retries) and ``-v``/``REPRO_LOG_LEVEL`` raise
stderr diagnostic verbosity.

``lint`` dispatches before the simulation stack is imported: pre-commit
hooks run ``repro lint --changed`` on every commit, so its startup cost
is numpy-free.  The other commands import what they need lazily.
"""

from __future__ import annotations

import argparse
import sys

from repro import obslog
from repro.obslog import console

__all__ = ["main"]

_DEFAULT_STRATEGIES = (
    "baseline", "ARC-HW", "ARC-SW-B-8", "ARC-SW-S-8", "CCCL",
    "LAB", "LAB-ideal", "PHI",
)


def load_workload(key):
    """Late-bound :func:`repro.workloads.load_workload`.

    A module-level name (rather than a local import in each command) so
    tests can monkeypatch ``repro.cli.load_workload``, while the real
    import stays off the ``lint`` fast path.
    """
    from repro.workloads import load_workload as _load_workload

    return _load_workload(key)


def _add_workload_arg(parser: argparse.ArgumentParser) -> None:
    from repro.workloads import WORKLOAD_KEYS

    parser.add_argument(
        "--workload", "-w", default="3D-LE", choices=WORKLOAD_KEYS,
        help="Table 2 workload key (default: 3D-LE)",
    )


def _add_gpu_arg(parser: argparse.ArgumentParser) -> None:
    from repro.gpu import SIMULATED_GPUS

    parser.add_argument(
        "--gpu", "-g", default="3060-Sim", choices=sorted(SIMULATED_GPUS),
        help="simulated GPU (default: 3060-Sim)",
    )


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    """``-v`` / ``--log``: shared by the simulation-stack subcommands."""
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="raise stderr diagnostic verbosity (-v info, -vv debug; "
             "REPRO_LOG_LEVEL overrides)",
    )
    parser.add_argument(
        "--log", metavar="FILE", default=None,
        help="append structured JSONL run events (cells, cache, "
             "retries) to FILE; worker processes share the stream",
    )


def _positive_int(text: str) -> int:
    """argparse type for worker counts: a friendly error, not a
    traceback, on ``--jobs 0`` / ``--jobs -3`` / ``--jobs many``."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: expected a positive integer"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r}: must be a positive integer"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARC (ASPLOS 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, strategies and GPUs")

    profile = sub.add_parser(
        "profile", help="atomic-trace characteristics of a workload"
    )
    _add_workload_arg(profile)
    _add_gpu_arg(profile)
    profile.add_argument(
        "--strategy", default="baseline", metavar="NAME",
        help="strategy simulated for --perfetto / the JSON stall report "
             "(default: baseline)",
    )
    profile.add_argument(
        "--perfetto", metavar="FILE", default=None,
        help="simulate the workload and write a Perfetto-loadable "
             "Chrome trace-event JSON timeline to FILE",
    )
    profile.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json: trace profile + stall report)",
    )
    _add_observability_args(profile)

    simulate = sub.add_parser(
        "simulate", help="compare atomic strategies on one workload"
    )
    _add_workload_arg(simulate)
    _add_gpu_arg(simulate)
    simulate.add_argument(
        "--strategies", "-s", nargs="+", default=list(_DEFAULT_STRATEGIES),
        metavar="NAME", help="strategy names (see `repro list`)",
    )
    simulate.add_argument(
        "--jobs", "-j", type=_positive_int, default=None, metavar="N",
        help="simulate strategies across N worker processes "
             "(default: $REPRO_JOBS, else 1)",
    )
    simulate.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent on-disk simulation cache",
    )
    simulate.add_argument(
        "--timeline", metavar="FILE", default=None,
        help="save a telemetry timeline (.json or .npz) per strategy; "
             "with several strategies the name gains a strategy infix",
    )
    simulate.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (json: one SimResult.to_dict() per strategy)",
    )
    _add_observability_args(simulate)

    timeline = sub.add_parser(
        "timeline", help="summarize a saved telemetry timeline file"
    )
    timeline.add_argument(
        "file", metavar="FILE",
        help="timeline written by `simulate --timeline` (.json or .npz)",
    )
    timeline.add_argument(
        "--top", type=_positive_int, default=5, metavar="K",
        help="how many hottest address slots to report (default: 5)",
    )
    timeline.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    _add_observability_args(timeline)

    train = sub.add_parser("train", help="train a workload's model")
    _add_workload_arg(train)
    train.add_argument("--iterations", "-n", type=int, default=50)

    breakdown = sub.add_parser(
        "breakdown", help="training-time phase breakdown (Figure 4)"
    )
    _add_workload_arg(breakdown)
    _add_gpu_arg(breakdown)

    tune = sub.add_parser(
        "tune", help="balancing-threshold sweep (Figure 23)"
    )
    _add_workload_arg(tune)
    _add_gpu_arg(tune)
    tune.add_argument("--variant", choices=("B", "S"), default="B")

    bench = sub.add_parser(
        "bench",
        help="run a named benchmark scenario and write BENCH_<name>.json "
             "(see `repro bench --list`)",
    )
    bench.add_argument(
        "scenario", nargs="?", metavar="SCENARIO",
        help="registered scenario name (omit with --list)",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered scenarios and exit",
    )
    bench.add_argument(
        "--history", metavar="DIR", default=None,
        help="collate every BENCH_*.json under DIR (recursively) into "
             "one perf-trajectory table and exit (no scenario is run)",
    )
    bench.add_argument(
        "--repeats", type=_positive_int, default=None, metavar="N",
        help="measurement repeats per cell (default: per-scenario)",
    )
    bench.add_argument(
        "--out", metavar="FILE", default=None,
        help="where to write the BENCH document "
             "(default: BENCH_<scenario>.json in the working directory)",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="diff the fresh run against a committed BENCH baseline; "
             "exits 1 on a regression or deterministic mismatch",
    )
    bench.add_argument(
        "--timing-tolerance", type=float, default=0.5, metavar="FRAC",
        help="allowed relative wall-time slowdown before --compare "
             "regresses (default: 0.5; CI uses generous values)",
    )
    bench.add_argument(
        "--rss-tolerance", type=float, default=1.0, metavar="FRAC",
        help="allowed relative peak-RSS growth before --compare "
             "regresses (default: 1.0)",
    )
    bench.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json: the BENCH document, plus the "
             "comparison under 'comparison' when --compare is given)",
    )
    _add_observability_args(bench)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service daemon on a unix socket "
             "(--status / --stop talk to a running one)",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="unix socket path (default: REPRO_SERVICE_SOCKET or a "
             "per-user path under the temp dir)",
    )
    serve.add_argument(
        "--jobs", "-j", type=_positive_int, default=None, metavar="N",
        help="worker processes in the persistent pool "
             "(default: REPRO_JOBS or 2)",
    )
    serve.add_argument(
        "--queue-depth", type=_positive_int, default=16, metavar="N",
        help="admission queue bound; requests beyond it are shed or "
             "served stale (default: 16)",
    )
    serve.add_argument(
        "--concurrency", type=_positive_int, default=None, metavar="N",
        help="concurrent dispatches from the queue (default: --jobs)",
    )
    serve.add_argument(
        "--no-degrade", action="store_true",
        help="shed saturated requests instead of serving stale results",
    )
    serve.add_argument(
        "--breaker-threshold", type=_positive_int, default=3, metavar="N",
        help="consecutive pool failures that trip the circuit breaker "
             "(default: 3)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt cell timeout (default: REPRO_CELL_TIMEOUT)",
    )
    serve.add_argument(
        "--metrics-port", type=_positive_int, default=None, metavar="PORT",
        help="serve Prometheus text exposition on 127.0.0.1:PORT "
             "(scrape with any HTTP client)",
    )
    serve.add_argument(
        "--status", action="store_true",
        help="print a running daemon's snapshot and exit",
    )
    serve.add_argument(
        "--stop", action="store_true",
        help="ask a running daemon to drain and shut down, then exit",
    )
    serve.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="--status output format (default: text)",
    )
    _add_observability_args(serve)

    request = sub.add_parser(
        "request",
        help="submit one simulation request to a running `repro serve` "
             "daemon (--op metrics/status for introspection)",
    )
    _add_workload_arg(request)
    _add_gpu_arg(request)
    request.add_argument(
        "--op", choices=("simulate", "status", "metrics"),
        default="simulate",
        help="daemon operation (default: simulate; metrics/status need "
             "no workload)",
    )
    request.add_argument(
        "--watch", action="store_true",
        help="with --op metrics: redraw a live service summary until "
             "interrupted (a `repro top`)",
    )
    request.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="--watch refresh period (default: 2.0)",
    )
    request.add_argument(
        "--strategy", "-s", default="baseline", metavar="NAME",
        help="strategy to simulate (default: baseline)",
    )
    request.add_argument(
        "--socket", metavar="PATH", default=None,
        help="daemon socket path (default: REPRO_SERVICE_SOCKET or the "
             "per-user default)",
    )
    request.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="fail the request (exit 4) if no result arrives in time",
    )
    request.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="client-side socket timeout (default: 300)",
    )
    request.add_argument(
        "--format", choices=("text", "json", "prom"), default="text",
        help="output format (default: text; prom prints Prometheus "
             "text exposition, --op metrics only)",
    )
    _add_observability_args(request)

    trace = sub.add_parser(
        "trace",
        help="stitch one traced request's wall-clock spans (client -> "
             "broker -> worker) with re-captured engine phase spans "
             "into a Perfetto timeline",
    )
    trace.add_argument(
        "obslog", metavar="OBSLOG",
        help="obslog JSONL file the request was traced into "
             "(repro serve --log / REPRO_OBSLOG)",
    )
    trace.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="trace to stitch (default: the trace with the most spans; "
             "--list shows candidates)",
    )
    trace.add_argument(
        "--list", action="store_true",
        help="list trace ids found in the obslog and exit",
    )
    trace.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the stitched Chrome trace-event JSON here "
             "(load in https://ui.perfetto.dev)",
    )
    trace.add_argument(
        "--no-engine", action="store_true",
        help="skip re-simulating the traced cell for engine phase "
             "spans (wall-clock spans only)",
    )
    trace.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (default: text span tree)",
    )
    _add_observability_args(trace)

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent simulation cache"
    )
    cache.add_argument(
        "--clear", action="store_true", help="delete every cached result"
    )

    lint = sub.add_parser(
        "lint",
        help="run arclint, the domain-invariant static analysis "
             "(fingerprint-completeness, determinism, unit-safety, "
             "strategy-conformance, interprocedural units, event ties, "
             "cache-key taint, process-safety/race detection)",
    )
    _add_lint_arguments(lint)
    return parser


def _add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` options, shared by the subcommand and the fast path."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the installed "
             "repro package source)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
             "document for code-scanning upload",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None,
        metavar="BASE",
        help="lint only the files changed relative to BASE (a git "
             "revision, default HEAD) plus every module that "
             "transitively imports them",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=".arclint-baseline.json",
        help="baseline file of grandfathered findings "
             "(default: .arclint-baseline.json in the working directory)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--fix-baseline", action="store_true",
        help="rewrite the baseline from the current findings (sorted, "
             "content-addressed; byte-stable for identical findings), "
             "pruning entries that no longer fire, and exit 0",
    )


def _cmd_list() -> int:
    from repro.experiments.runner import STRATEGY_FACTORIES
    from repro.gpu import SIMULATED_GPUS
    from repro.workloads import WORKLOAD_KEYS

    print("Workloads (Table 2):")
    for key in WORKLOAD_KEYS:
        workload = load_workload(key)
        print(f"  {key:<6} {workload.app:<10} {workload.dataset}")
    print("\nStrategies:")
    for name in STRATEGY_FACTORIES:
        print(f"  {name}")
    print("\nGPUs (Table 1):")
    for gpu in SIMULATED_GPUS.values():
        print(f"  {gpu.name:<9} {gpu.num_sms} SMs, {gpu.num_rops} ROPs, "
              f"{gpu.clock_ghz} GHz")
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.trace.analysis import profile_trace

    workload = load_workload(args.workload)
    trace = workload.capture_trace()
    profile = profile_trace(trace)

    needs_simulation = args.perfetto is not None or args.format == "json"
    result = None
    if needs_simulation:
        from repro.experiments.runner import make_strategy
        from repro.gpu import SIMULATED_GPUS, Telemetry, simulate_kernel

        gpu = SIMULATED_GPUS[args.gpu]
        telemetry = Telemetry()
        result = simulate_kernel(
            trace, gpu, make_strategy(args.strategy), telemetry=telemetry
        )
        if args.perfetto is not None:
            from repro.profiling import to_chrome_trace

            with open(args.perfetto, "w") as handle:
                json.dump(to_chrome_trace(telemetry), handle)

    if args.format == "json":
        from repro.profiling import stall_report

        report = stall_report(result)
        print(json.dumps({
            "profile": {
                "name": profile.name,
                "n_batches": profile.n_batches,
                "num_params": profile.num_params,
                "lane_ops": profile.lane_ops,
                "locality": profile.locality,
                "mean_active": profile.mean_active,
                "mean_groups": profile.mean_groups,
                "histogram": profile.histogram.tolist(),
            },
            "stall_report": {
                "workload": report.workload,
                "gpu": report.gpu,
                "strategy": report.strategy,
                "stalls_per_instruction": report.stalls_per_instruction,
                "breakdown": report.breakdown,
            },
        }, indent=2, sort_keys=True))
        return 0

    print(profile)
    print(f"  intra-warp locality (Obs. 1): {profile.locality:.1%}")
    print(f"  mean active lanes   (Obs. 2): {profile.mean_active:.1f} / 32")
    if args.perfetto is not None:
        print(f"perfetto trace written: {args.perfetto} "
              "(open at https://ui.perfetto.dev)")
    return 0


def _cmd_simulate(args) -> int:
    from repro.experiments import diskcache
    from repro.experiments.report import format_cache_stats, format_table
    from repro.experiments.runner import (
        STRATEGY_FACTORIES,
        get_result,
        seed_trace,
    )
    from repro.gpu import SIMULATED_GPUS

    unknown = [s for s in args.strategies if s not in STRATEGY_FACTORIES]
    if unknown:
        print(f"unknown strategies: {unknown}", file=sys.stderr)
        return 2
    if args.no_cache:
        diskcache.configure(enabled=False)
    gpu = SIMULATED_GPUS[args.gpu]
    trace = load_workload(args.workload).capture_trace()
    seed_trace(args.workload, trace)
    from repro.experiments.parallel import default_jobs

    jobs = args.jobs if args.jobs is not None else default_jobs(fallback=1)
    run_report = None
    if jobs > 1:
        # Fan the cells out; results land in the in-memory cache so the
        # table assembly below is pure lookups.
        from repro.experiments.parallel import run_matrix_parallel
        from repro.experiments.resilience import (
            CellExecutionError,
            RunReport,
        )

        run_report = RunReport()
        try:
            run_matrix_parallel(
                [args.workload], list(args.strategies), [args.gpu],
                jobs=jobs, report=run_report,
            )
        except CellExecutionError as exc:
            from repro.experiments.report import format_run_report

            print(f"error: {exc}", file=sys.stderr)
            print(format_run_report(run_report), file=sys.stderr)
            return 1
    rows = []
    results = {}
    skipped = []
    baseline = None
    for name in args.strategies:
        if "SW-B" in name and not trace.bfly_eligible:
            rows.append([name, "-", "-", "- (divergent kernel)"])
            skipped.append(name)
            continue
        result = get_result(args.workload, args.gpu, name)
        results[name] = result
        if baseline is None or name == "baseline":
            baseline = baseline or result
        rows.append(
            [name, f"{result.total_cycles:,.0f}",
             f"{result.rop_ops:,}",
             f"{result.speedup_over(baseline):.2f}x"]
        )

    timeline_paths = {}
    if args.timeline is not None:
        from repro.experiments.runner import make_strategy
        from repro.profiling import capture_timeline, save_timeline

        for name in results:
            path = _timeline_path(args.timeline, name,
                                  multiple=len(results) > 1)
            save_timeline(
                capture_timeline(trace, gpu, make_strategy(name)), path
            )
            timeline_paths[name] = path

    if args.format == "json":
        import json

        print(json.dumps({
            "workload": args.workload,
            "gpu": gpu.name,
            "results": [results[name].to_dict() for name in results],
            "skipped": skipped,
            "timelines": timeline_paths,
        }, indent=2, sort_keys=True))
        return 0

    print(format_table(
        ["strategy", "cycles", "ROP ops", "speedup"], rows,
        title=f"{args.workload} gradient kernel on {gpu.name}",
    ))
    for name, path in timeline_paths.items():
        console.info("timeline written: %s [%s]", path, name)
    if run_report is not None:
        from repro.experiments.report import format_run_report

        console.info("")
        console.info(format_run_report(run_report, title="execution"))
    cache = diskcache.active_cache()
    if cache is not None and cache.stats.lookups:
        console.info("")
        console.info(
            format_cache_stats(cache.stats, title=f"cache: {cache.root}")
        )
    return 0


def _timeline_path(base: str, strategy: str, multiple: bool) -> str:
    """Where one strategy's timeline lands for ``--timeline base``.

    A single-strategy run writes exactly *base*; a multi-strategy run
    inserts the strategy name before the suffix so files don't clobber.
    """
    if not multiple:
        return base
    root, dot, suffix = base.rpartition(".")
    if not dot:
        return f"{base}.{strategy}"
    return f"{root}.{strategy}.{suffix}"


def _cmd_timeline(args) -> int:
    import json

    from repro.profiling import load_timeline, summarize_timeline

    try:
        telemetry = load_timeline(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read timeline {args.file!r}: {exc}",
              file=sys.stderr)
        return 2
    summary = summarize_timeline(telemetry, top_k=args.top)
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"{summary.trace_name} on {summary.gpu} [{summary.strategy}]: "
          f"{summary.total_cycles:,.0f} cycles")
    saturated = " (saturated)" if summary.lsu_saturated else ""
    print(f"  peak LSU occupancy: {summary.peak_lsu_occupancy} / "
          f"{summary.lsu_queue_depth} entries{saturated}, "
          f"{summary.lsu_full_events:,} full events")
    print(f"  peak ROP busy:      {summary.peak_rop_busy} / "
          f"{summary.rops_per_partition} units in one partition")
    print("  saturated time:     " + ", ".join(
        f"{name} {fraction:.1%}"
        for name, fraction in summary.saturated_frac.items()
    ))
    print(f"  interconnect util:  {summary.interconnect_utilization:.1%}")
    if summary.hot_slots:
        print(f"  hottest slots (top {len(summary.hot_slots)}):")
        for slot, busy, ops in summary.hot_slots:
            print(f"    slot {int(slot):>6}: {busy:,.0f} busy cycles, "
                  f"{int(ops):,} ROP ops")
    return 0


def _cmd_train(args) -> int:

    workload = load_workload(args.workload)
    report = workload.train(iterations=args.iterations)
    print(f"{args.workload}: {report.iterations} iterations in "
          f"{report.wall_seconds:.1f}s")
    print(f"  loss {report.losses[0]:.4f} -> {report.final_loss:.4f}")
    print(f"  PSNR {report.psnr_start:.2f} dB -> {report.psnr_end:.2f} dB")
    return 0


def _cmd_breakdown(args) -> int:
    from repro.gpu import SIMULATED_GPUS
    from repro.profiling import training_breakdown

    workload = load_workload(args.workload)
    trace = workload.capture_trace()
    pairs, pixels = workload.forward_stats()
    phases = training_breakdown(
        trace, forward_pairs=pairs, n_pixels=pixels,
        config=SIMULATED_GPUS[args.gpu], launches=workload.trace_views,
        loss_channel_cycles=workload.loss_channel_cycles,
    )
    fractions = phases.fractions
    print(f"{args.workload} on {args.gpu} (one training iteration):")
    for phase in ("forward", "loss", "grad"):
        print(f"  {phase:<8} {fractions[phase]:6.1%}")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.autotune import tune_threshold
    from repro.experiments.report import format_table
    from repro.gpu import SIMULATED_GPUS

    workload = load_workload(args.workload)
    trace = workload.capture_trace()
    if args.variant == "B" and not trace.bfly_eligible:
        print(f"{args.workload} cannot use SW-B (divergent kernel); "
              "use --variant S", file=sys.stderr)
        return 2
    best, timings = tune_threshold(
        trace, SIMULATED_GPUS[args.gpu], variant=args.variant,
        candidates=(0, 4, 8, 12, 16, 20, 24, 32),
    )
    rows = [
        [f"X={x}", f"{cycles:,.0f}", "<- best" if x == best else ""]
        for x, cycles in timings.items()
    ]
    print(format_table(
        ["threshold", "cycles", ""], rows,
        title=f"SW-{args.variant} threshold sweep, "
              f"{args.workload} on {args.gpu}",
    ))
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro import bench
    from repro.experiments.report import format_table

    if args.list_scenarios:
        if args.format == "json":
            print(json.dumps({
                name: {
                    "description": scenario.description,
                    "mode": scenario.mode,
                    "cheap": scenario.cheap,
                    "repeats": scenario.repeats,
                    "cells": scenario.cell_count(),
                }
                for name, scenario in sorted(bench.SCENARIOS.items())
            }, indent=2, sort_keys=True))
            return 0
        rows = [
            [name, scenario.mode, "yes" if scenario.cheap else "no",
             str(scenario.cell_count()), scenario.description]
            for name, scenario in sorted(bench.SCENARIOS.items())
        ]
        print(format_table(
            ["scenario", "mode", "cheap", "cells", "description"], rows,
            title="bench scenarios (cheap ones run in CI on every PR)",
        ))
        return 0
    if args.history is not None:
        return _bench_history(args)
    if args.scenario is None:
        print("error: a scenario name is required (or --list/--history)",
              file=sys.stderr)
        return 2
    try:
        bench.get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline = None
    if args.compare is not None:
        try:
            with open(args.compare, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2

    doc = bench.run_scenario(args.scenario, repeats=args.repeats)
    out_path = args.out or bench.bench_filename(args.scenario)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    comparison = None
    if baseline is not None:
        try:
            comparison = bench.compare_reports(
                baseline, doc, bench.Tolerances(
                    timing_frac=args.timing_tolerance,
                    rss_frac=args.rss_tolerance,
                ),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        obslog.emit("bench.compare", scenario=args.scenario,
                    baseline=args.compare, verdict=comparison.verdict)

    if args.format == "json":
        payload = dict(doc)
        if comparison is not None:
            payload["comparison"] = comparison.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return comparison.exit_code if comparison is not None else 0

    aggregate = doc["aggregate"]
    rows = [
        [cell["id"], f"{cell['wall_ms']['median']:,.2f}",
         f"{cell['wall_ms']['iqr']:,.2f}",
         f"{cell['throughput']['batches_per_sec']:,.0f}"]
        for cell in doc["cells"]
    ]
    print(format_table(
        ["cell", "median ms", "IQR ms", "batches/s"], rows,
        title=f"bench {args.scenario} "
              f"(repeats={doc['config']['repeats']})",
    ))
    console.info("")
    console.info("cells/sec: %.1f | total wall: %.0f ms | peak RSS: %s KiB",
                 aggregate["cells_per_sec"], aggregate["wall_ms_total"],
                 f"{aggregate['peak_rss_kb']:,}")
    if aggregate["cache"] is not None:
        console.info(
            "cache: cold hit rate %.0f%%, warm hit rate %.0f%%, "
            "warm speedup %.1fx",
            100 * aggregate["cache"]["cold_hit_rate"],
            100 * aggregate["cache"]["warm_hit_rate"],
            aggregate["cache"]["warm_speedup"],
        )
    if aggregate["telemetry_overhead"] is not None:
        console.info(
            "telemetry: overhead %.2fx, bit-identical: %s",
            aggregate["telemetry_overhead"]["overhead_ratio"],
            aggregate["telemetry_overhead"]["bit_identical"],
        )
    if aggregate["parallel"] is not None:
        console.info(
            "parallel: %.2fx speedup at jobs=%d, bit-identical: %s",
            aggregate["parallel"]["speedup"],
            aggregate["parallel"]["jobs"],
            aggregate["parallel"]["bit_identical"],
        )
    if aggregate.get("service") is not None:
        svc = aggregate["service"]
        console.info(
            "service: %.1f req/s, p50 %.1f ms, p95 %.1f ms, "
            "coalesced %d/%d, shed %d, bit-identical: %s",
            svc["requests_per_sec"], svc["latency_ms_p50"],
            svc["latency_ms_p95"], svc["coalesced"], svc["requests"],
            svc["shed"], svc["bit_identical"],
        )
    console.info("bench written: %s", out_path)
    if comparison is not None:
        print()
        print(comparison.render_text())
        return comparison.exit_code
    return 0


def _bench_history(args) -> int:
    """``repro bench --history DIR``: collate per-run BENCH artifacts."""
    import json

    from repro import bench
    from repro.experiments.report import format_table

    from pathlib import Path

    if not Path(args.history).is_dir():
        print(f"error: --history directory not found: {args.history}",
              file=sys.stderr)
        return 2
    reports, skipped = bench.load_reports(args.history)
    rows = bench.collate_history(reports)
    if args.format == "json":
        print(json.dumps(
            {"rows": rows, "skipped": skipped}, indent=2, sort_keys=True
        ))
        return 0
    if not rows:
        print(f"no BENCH documents under {args.history}")
        for reason in skipped:
            console.info("skipped %s", reason)
        return 0
    from datetime import datetime, timezone

    table_rows = []
    for row in rows:
        created = row["created_unix"]
        when = (
            datetime.fromtimestamp(created, tz=timezone.utc)
            .strftime("%Y-%m-%d %H:%M")
            if isinstance(created, (int, float)) else "?"
        )
        sha = (row["git_sha"] or "?")[:9]
        if row["dirty"]:
            sha += "*"
        delta = row["delta_wall_ms"]
        table_rows.append([
            row["scenario"] or "?", when, sha,
            row["engine_fingerprint"] or "?",
            row["machine"] or "?", str(row["cells"]),
            f"{row['wall_ms_total']:,.0f}"
            if isinstance(row["wall_ms_total"], (int, float)) else "?",
            f"{delta:+,.0f}"
            if isinstance(delta, (int, float)) else "-",
            f"{row['cells_per_sec']:,.1f}"
            if isinstance(row["cells_per_sec"], (int, float)) else "?",
            f"{row['peak_rss_kb']:,}"
            if isinstance(row["peak_rss_kb"], int) else "?",
        ])
    print(format_table(
        ["scenario", "created (UTC)", "commit", "engine", "machine",
         "cells", "wall ms", "delta ms", "cells/s", "RSS KiB"],
        table_rows,
        title=f"bench trajectory ({len(rows)} run(s) "
              f"under {args.history}; * = dirty tree, "
              "delta vs previous run on the same machine)",
    ))
    for reason in skipped:
        console.info("skipped %s", reason)
    return 0


def _cmd_cache(args) -> int:
    from repro.experiments import diskcache

    cache = diskcache.active_cache()
    if cache is None:
        print("disk cache disabled "
              f"({diskcache.NO_CACHE_ENV} is set)")
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.root}")
        return 0
    entries = cache.entries()
    quarantined = cache.quarantined_entries()
    print(f"location: {cache.root}")
    print(f"  (override with {diskcache.CACHE_DIR_ENV}, "
          f"disable with {diskcache.NO_CACHE_ENV}=1)")
    print(f"entries:  {len(entries)}")
    print(f"size:     {cache.size_bytes():,} bytes")
    if quarantined:
        print(f"quarantined: {len(quarantined)} corrupt entr(ies) "
              f"preserved under {cache.quarantine_dir}")
    if cache.swept_temp_files:
        print(f"swept: {cache.swept_temp_files} orphaned writer temp "
              f"file(s) older than {diskcache.sweep_age_seconds():,.0f}s "
              f"(tune with {diskcache.SWEEP_AGE_ENV})")
    return 0


def _cmd_serve(args) -> int:
    import json

    from repro.service import daemon as svc_daemon

    socket_path = args.socket
    if args.status or args.stop:
        op = "shutdown" if args.stop else "status"
        try:
            reply = svc_daemon.call({"op": op}, socket_path=socket_path)
        except OSError as exc:
            print(f"error: cannot reach daemon at "
                  f"{svc_daemon.default_socket_path() if socket_path is None else socket_path}: "
                  f"{exc}", file=sys.stderr)
            return 2
        if args.stop:
            print("daemon stopping (draining in-flight requests)")
            return 0
        snapshot = reply.get("snapshot", {})
        if args.format == "json":
            print(json.dumps(snapshot, indent=2, sort_keys=True))
            return 0
        stats = snapshot.get("stats", {})
        sup = snapshot.get("supervisor", {})
        breaker = sup.get("breaker", {})
        print(f"session:   {snapshot.get('session')}")
        print(f"pool:      jobs={snapshot.get('jobs')} "
              f"restarts={sup.get('restarts', 0)}")
        queue = snapshot.get("queue", {})
        print(f"queue:     {queue.get('size')}/{queue.get('depth')} "
              f"(inflight {snapshot.get('inflight')}, "
              f"memoized {snapshot.get('memoized')})")
        print(f"breaker:   {breaker.get('state')} "
              f"(trips {breaker.get('trips_total', 0)})")
        print("requests:  "
              + " ".join(f"{k}={stats.get(k, 0)}"
                         for k in ("requests", "admitted", "coalesced",
                                   "memo_hits", "shed", "degraded",
                                   "completed")))
        return 0

    import asyncio
    from dataclasses import replace as dc_replace

    from repro.experiments.parallel import default_jobs
    from repro.experiments.resilience import RetryPolicy
    from repro.service import Broker, CircuitBreaker, ServiceDaemon

    from repro.obs import tracing

    jobs = args.jobs if args.jobs is not None else default_jobs(fallback=2)
    policy = RetryPolicy.from_env()
    if args.timeout is not None:
        policy = dc_replace(policy, timeout=args.timeout)
    # Session root context exported *before* the broker builds its pool
    # (spawn workers snapshot env at construction): worker cell.execute
    # spans parent here, per-request context rides the JSON protocol.
    tracing.arm_session()
    broker = Broker(
        jobs=jobs,
        queue_depth=args.queue_depth,
        concurrency=args.concurrency,
        policy=policy,
        degrade=not args.no_degrade,
        breaker=CircuitBreaker(threshold=args.breaker_threshold),
    )
    daemon = ServiceDaemon(broker, socket_path=socket_path,
                           metrics_port=args.metrics_port)
    console.info("serving on %s (jobs=%d, queue depth %d); "
                 "stop with `repro serve --stop` or Ctrl-C",
                 daemon.socket_path, jobs, args.queue_depth)
    asyncio.run(daemon.run())
    return 0


def _unreachable(args, svc_daemon, exc) -> int:
    print(f"error: cannot reach daemon at "
          f"{svc_daemon.default_socket_path() if args.socket is None else args.socket}: "
          f"{exc}", file=sys.stderr)
    return 2


def _metrics_summary_lines(snapshot: dict) -> "list[str]":
    """Compact `repro top` view of a daemon metrics snapshot."""
    def value(name, default=0.0, **labels):
        entry = snapshot.get(name)
        if not entry:
            return default
        want = {str(k): str(v) for k, v in labels.items()}
        for series in entry.get("series", []):
            if {str(k): str(v)
                    for k, v in series.get("labels", {}).items()} == want:
                return series.get("value", series.get("count", default))
        return default

    def total(name):
        entry = snapshot.get(name)
        if not entry:
            return 0.0
        return sum(s.get("value", s.get("count", 0.0))
                   for s in entry.get("series", []))

    breaker_names = {0: "closed", 1: "half-open", 2: "open"}
    breaker = breaker_names.get(
        int(value("repro_service_breaker_state")), "?")
    lines = [
        "requests   "
        + " ".join(f"{label}={int(total(name))}" for label, name in (
            ("total", "repro_service_requests_total"),
            ("admitted", "repro_service_admitted_total"),
            ("coalesced", "repro_service_coalesced_total"),
            ("memo", "repro_service_memo_hits_total"),
            ("shed", "repro_service_shed_total"),
            ("degraded", "repro_service_degraded_total"),
        )),
        f"queue      {int(value('repro_service_queue_size'))}"
        f"/{int(value('repro_service_queue_depth'))}"
        f"  inflight {int(value('repro_service_inflight'))}",
        f"pool       breaker={breaker}"
        f" trips={int(total('repro_service_breaker_trips_total'))}"
        f" restarts={int(total('repro_service_pool_restarts_total'))}",
        "attempts   "
        + (" ".join(
            f"{s['labels'].get('outcome')}={int(s['value'])}"
            for s in snapshot.get("repro_service_attempts_total",
                                  {}).get("series", [])
        ) or "none"),
        "cache      "
        + " ".join(f"{label}={int(total(name))}" for label, name in (
            ("hits", "repro_cache_hits_total"),
            ("misses", "repro_cache_misses_total"),
            ("quarantined", "repro_cache_quarantined_total"),
        )),
    ]
    lat = snapshot.get("repro_service_request_latency_seconds")
    if lat and lat.get("series"):
        series = lat["series"][0]
        count = series.get("count", 0)
        mean = series.get("sum", 0.0) / count * 1000.0 if count else 0.0
        lines.append(f"latency    n={int(count)} mean={mean:.1f} ms")
    return lines


def _request_introspect(args) -> int:
    """``repro request --op status|metrics`` (optionally ``--watch``)."""
    import json
    import time

    from repro.service import daemon as svc_daemon

    while True:
        try:
            reply = svc_daemon.call(
                {"op": args.op}, socket_path=args.socket,
                timeout=args.timeout,
            )
        except OSError as exc:
            return _unreachable(args, svc_daemon, exc)
        if reply.get("status") != "ok":
            print(f"{reply.get('status')}: {reply.get('error')}",
                  file=sys.stderr)
            return 1
        if args.op == "status":
            print(json.dumps(reply.get("snapshot", {}), indent=2,
                             sort_keys=True))
        elif args.format == "json":
            print(json.dumps(reply.get("metrics", {}), indent=2,
                             sort_keys=True))
        elif args.format == "prom":
            sys.stdout.write(reply.get("exposition", ""))
        else:
            if args.watch and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            for line in _metrics_summary_lines(reply.get("metrics", {})):
                print(line)
        if not args.watch:
            return 0
        sys.stdout.flush()
        try:
            time.sleep(max(args.interval, 0.1))
        except KeyboardInterrupt:
            return 0


def _cmd_request(args) -> int:
    import json

    from repro.obs.tracing import Span
    from repro.service import daemon as svc_daemon

    if args.op != "simulate":
        return _request_introspect(args)

    # The client originates the trace: its span context travels in-band
    # on the simulate op, and the daemon's svc.request span joins it --
    # one trace from this process into the broker.  The span record
    # lands in whatever obslog sink this process has armed (--log /
    # REPRO_OBSLOG), which is the daemon's stream when they share it.
    client_span = Span("client.request", role="client",
                       workload=args.workload, gpu=args.gpu,
                       strategy=args.strategy)
    payload = {
        "op": "simulate",
        "workload": args.workload,
        "gpu": args.gpu,
        "strategy": args.strategy,
        "trace": client_span.context.to_dict(),
    }
    if args.deadline is not None:
        payload["deadline"] = args.deadline
    try:
        reply = svc_daemon.call(
            payload, socket_path=args.socket, timeout=args.timeout
        )
    except OSError as exc:
        client_span.end(status="error", error="unreachable")
        return _unreachable(args, svc_daemon, exc)
    status = reply.get("status")
    client_span.end(status=status)
    if args.format == "json":
        print(json.dumps(reply, indent=2, sort_keys=True))
    elif status == "ok":
        result = reply.get("result", {})
        line = (f"{reply.get('cell')}: "
                f"{result.get('total_cycles', 0.0):,.0f} cycles "
                f"(source {reply.get('source')}, "
                f"{reply.get('latency_ms', 0.0):.1f} ms)")
        if reply.get("coalesced"):
            line += " [coalesced]"
        print(line)
        if reply.get("warning"):
            print(f"warning: {reply['warning']}", file=sys.stderr)
    else:
        print(f"{status}: {reply.get('error')}", file=sys.stderr)
    if status == "ok":
        return 0
    if status == "shed":
        return 3
    if status == "deadline":
        return 4
    return 1


def _trace_engine_telemetry(spans):
    """Re-capture engine telemetry for the traced cell, or None.

    The simulation is deterministic, so re-running the traced
    ``workload|gpu|strategy`` cell reproduces the exact engine phase
    spans the worker executed -- no sim-time telemetry has to ride the
    obslog for the stitched view to be faithful."""
    cell = next(
        (s.get("cell") for s in spans
         if s.get("cell") and s.get("name") in (
             "svc.execute", "cell.execute", "svc.request")),
        None,
    )
    if not cell or str(cell).count("|") != 2:
        return None, None
    workload, gpu_name, strategy_name = str(cell).split("|")
    try:
        from repro.experiments.runner import make_strategy
        from repro.gpu import SIMULATED_GPUS
        from repro.profiling import capture_timeline

        trace = load_workload(workload).capture_trace()
        telemetry = capture_timeline(
            trace, SIMULATED_GPUS[gpu_name], make_strategy(strategy_name)
        )
    except (KeyError, ValueError) as exc:
        print(f"warning: cannot re-simulate cell {cell!r} for engine "
              f"spans: {exc}", file=sys.stderr)
        return None, cell
    return telemetry, cell


def _print_span_tree(spans) -> None:
    """Indented parent->child listing of one trace's spans."""
    children: "dict[str | None, list[dict]]" = {}
    ids = {s["span_id"] for s in spans}
    for span in spans:
        parent = span.get("parent_id")
        children.setdefault(parent if parent in ids else None,
                            []).append(span)

    def walk(parent, depth):
        for span in children.get(parent, []):
            attrs = " ".join(
                f"{key}={span[key]}"
                for key in ("role", "outcome", "status", "source", "cell",
                            "attempt", "fanout")
                if key in span
            )
            print(f"  {'  ' * depth}{span['name']:<{24 - 2 * depth}} "
                  f"{span['dur_ms']:>9.3f} ms  {attrs}")
            walk(span["span_id"], depth + 1)

    walk(None, 0)


def _cmd_trace(args) -> int:
    import json

    from repro import obslog
    from repro.profiling import (
        service_trace_ids,
        spans_from_obslog,
        stitch_service_trace,
    )

    try:
        events = obslog.read_events(args.obslog)
    except OSError as exc:
        print(f"error: cannot read obslog {args.obslog!r}: {exc}",
              file=sys.stderr)
        return 2
    spans = spans_from_obslog(events)
    if args.list:
        counts: "dict[str, int]" = {}
        for span in spans:
            counts[span["trace_id"]] = counts.get(span["trace_id"], 0) + 1
        for tid in service_trace_ids(events):
            print(f"{tid}  {counts[tid]} spans")
        return 0
    if not spans:
        print(f"error: no span records in {args.obslog!r} "
              "(was the request made with `repro request`?)",
              file=sys.stderr)
        return 2

    trace_id = args.trace_id
    if trace_id is not None and not any(
            s["trace_id"] == trace_id for s in spans):
        print(f"error: no spans for trace {trace_id!r} "
              "(see --list)", file=sys.stderr)
        return 2

    telemetry = None
    if not args.no_engine:
        selected = [s for s in spans
                    if trace_id is None or s["trace_id"] == trace_id]
        telemetry, _cell = _trace_engine_telemetry(selected or spans)

    stitched = stitch_service_trace(events, trace_id=trace_id,
                                    telemetry=telemetry)
    if args.out is not None:
        with open(args.out, "w") as handle:
            json.dump(stitched, handle)
        print(f"stitched trace written: {args.out} "
              "(open at https://ui.perfetto.dev)")

    if args.format == "json":
        print(json.dumps(stitched, indent=2, sort_keys=True))
        return 0
    meta = stitched.get("otherData", {})
    shown = meta.get("trace_id", "?")
    own = [s for s in spans if s["trace_id"] == shown]
    engine_events = sum(
        1 for e in stitched.get("traceEvents", [])
        if e.get("pid") != 100 and e.get("ph") != "M"
    )
    print(f"trace {shown}: {len(own)} wall-clock spans, "
          f"{engine_events} engine events")
    _print_span_tree(own)
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    import repro
    from repro.lint import refresh_baseline, run_lint

    paths = args.paths or [Path(repro.__file__).parent]
    restrict = None
    if args.changed is not None:
        from repro.lint.changed import GitError, changed_files

        try:
            restrict = changed_files(args.changed)
        except GitError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not restrict:
            print(f"no python files changed relative to {args.changed}; "
                  "nothing to lint")
            return 0
    if args.fix_baseline:
        # Rewrite from what currently fires: new entries are added,
        # entries that no longer fire are pruned.  A --changed run only
        # touches entries for the files it actually re-checked.
        report = run_lint(paths, baseline_path=None, restrict_to=restrict)
        checked = set(report.checked_paths) if restrict is not None else None
        total, added, pruned = refresh_baseline(
            args.baseline, report.new, checked_paths=checked
        )
        print(f"baseline {args.baseline}: {total} entr(ies) "
              f"({added} added, {pruned} pruned)")
        return 0
    baseline = None if args.no_baseline else args.baseline
    report = run_lint(paths, baseline_path=baseline, restrict_to=restrict)
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
        print(report.summary_line(), file=sys.stderr)
    else:
        print(report.render_text())
        if report.new:
            print(
                "\nnew findings fail the build: fix them, add an inline "
                "`# arclint: disable=<RULE>` with a justification, or "
                "grandfather them via `repro lint --fix-baseline`."
            )
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    """Parse *argv* (default ``sys.argv``) and run the chosen command."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Fast path: lint must stay sub-second for pre-commit, so it
        # parses its own arguments without importing the simulation
        # stack the full parser's choices= lists pull in.
        lint_parser = argparse.ArgumentParser(
            prog="repro lint",
            description="arclint: domain-invariant static analysis",
        )
        _add_lint_arguments(lint_parser)
        return _cmd_lint(lint_parser.parse_args(argv[1:]))
    args = _build_parser().parse_args(argv)
    obslog.setup_logging(getattr(args, "verbose", 0))
    previous_sink = None
    sink_set = getattr(args, "log", None) is not None
    if sink_set:
        previous_sink = obslog.set_obslog_path(args.log)
        obslog.emit("cli.start", command=args.command)
    handlers = {
        "list": lambda: _cmd_list(),
        "profile": lambda: _cmd_profile(args),
        "simulate": lambda: _cmd_simulate(args),
        "timeline": lambda: _cmd_timeline(args),
        "train": lambda: _cmd_train(args),
        "breakdown": lambda: _cmd_breakdown(args),
        "tune": lambda: _cmd_tune(args),
        "bench": lambda: _cmd_bench(args),
        "serve": lambda: _cmd_serve(args),
        "request": lambda: _cmd_request(args),
        "trace": lambda: _cmd_trace(args),
        "cache": lambda: _cmd_cache(args),
        "lint": lambda: _cmd_lint(args),
    }
    try:
        return handlers[args.command]()
    finally:
        if sink_set:
            obslog.emit("cli.finish", command=args.command)
            obslog.set_obslog_path(previous_sink)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
