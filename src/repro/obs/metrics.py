"""Deterministic in-process metrics registry for the service stack.

Three instrument kinds -- :class:`Counter`, :class:`Gauge` and
fixed-bucket :class:`Histogram` -- collected in a
:class:`MetricsRegistry` that renders either a JSON-able
:meth:`~MetricsRegistry.snapshot` (for the daemon's ``metrics`` op) or
Prometheus text exposition format 0.0.4
(:meth:`~MetricsRegistry.render_prometheus`, served on
``repro serve --metrics-port``).

Design constraints, in order:

* **Non-blocking by construction.**  Instruments are plain dict/float
  updates -- no locks, no I/O, no syscalls -- so they are legal to call
  from coroutine context under arclint's ARC013 loop-blocking rule
  without any allowlisting.  (The asyncio event loop is single-threaded,
  so dict updates from broker coroutines need no lock; spawn workers
  have their *own* registry instance and report through the obslog
  stream instead.)
* **Deterministic exposition.**  Families render sorted by name, series
  sorted by label value tuple, floats via ``repr``-stable formatting --
  two identical runs produce byte-identical exposition, which is what
  lets tests pin it.
* **Fixed buckets.**  Histogram buckets are declared at registration
  (no dynamic rebucketing), so concurrent scrapes and snapshots always
  agree on the schema.

The registry deliberately does not know about wall-clock time: ``*_
seconds`` metrics are observed by callers who own the clock, keeping
this module import-safe everywhere (it imports nothing from ``repro``).
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Upper bounds (seconds) shared by the request-latency style histograms.
#: Spans four orders of magnitude: sub-ms cache hits to multi-second
#: retry ladders.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _label_key(labels: dict) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: "tuple[tuple[str, str], ...]") -> str:
    if not key:
        return ""
    body = ",".join(
        '%s="%s"' % (name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in key
    )
    return "{" + body + "}"


class _Instrument:
    """Shared shape: a named family of labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: "tuple[str, ...]" = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._series: "dict[tuple[tuple[str, str], ...], float]" = {}

    def _key(self, labels: dict) -> "tuple[tuple[str, str], ...]":
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "metric %r takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labels)))
            )
        return _label_key(labels)

    def series(self) -> "dict[tuple[tuple[str, str], ...], float]":
        return dict(self._series)


class Counter(_Instrument):
    """Monotonically increasing count (resets only with the process)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0.0)


class Gauge(_Instrument):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0.0)


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are inclusive upper bounds; a ``+Inf`` bucket is
    implicit.  Exposition emits cumulative ``_bucket`` counts plus
    ``_sum`` / ``_count`` series, exactly as Prometheus expects.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
                 labelnames: "tuple[str, ...]" = ()):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram %r needs at least one bucket"
                             % name)
        self.buckets = bounds
        # series value: [per-bucket counts..., +Inf count, sum]
        self._hseries: "dict[tuple, list]" = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        row = self._hseries.get(key)
        if row is None:
            row = [0] * (len(self.buckets) + 1) + [0.0]
            self._hseries[key] = row
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                row[i] += 1
        row[len(self.buckets)] += 1          # +Inf / _count
        row[-1] += float(value)              # _sum

    def counts(self, **labels) -> "tuple[list, float]":
        """(cumulative bucket counts incl. +Inf, sum) for one series."""
        row = self._hseries.get(self._key(labels))
        if row is None:
            return [0] * (len(self.buckets) + 1), 0.0
        return list(row[:-1]), row[-1]

    def series(self) -> dict:
        return {key: (list(row[:-1]), row[-1])
                for key, row in self._hseries.items()}


class MetricsRegistry:
    """A named set of instruments with get-or-create registration.

    Registration is idempotent by (name, kind): the broker, supervisor,
    cache and resilience layers can all ask for the same family without
    coordinating import order.  Asking for an existing name with a
    different kind or label schema is a programming error and raises.
    """

    def __init__(self):
        self._instruments: "dict[str, _Instrument]" = {}

    def _register(self, cls, name: str, help_text: str,
                  labelnames: "tuple[str, ...]", **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    "metric %r already registered as %s"
                    % (name, existing.kind)
                )
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    "metric %r already registered with labels %r"
                    % (name, existing.labelnames)
                )
            return existing
        instrument = cls(name, help_text, labelnames=tuple(labelnames),
                         **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "",
                labelnames: "tuple[str, ...]" = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: "tuple[str, ...]" = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
                  labelnames: "tuple[str, ...]" = ()) -> Histogram:
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=buckets)

    def get(self, name: str) -> "_Instrument | None":
        return self._instruments.get(name)

    def names(self) -> "list[str]":
        return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (tests / daemon restarts)."""
        self._instruments.clear()

    # ----------------------------------------------------------------- #
    # Export
    # ----------------------------------------------------------------- #

    def snapshot(self) -> dict:
        """JSON-able dump: ``{name: {type, help, series: [...]}}``."""
        out: dict = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            entry: dict = {"type": inst.kind, "help": inst.help,
                           "series": []}
            if isinstance(inst, Histogram):
                entry["buckets"] = list(inst.buckets)
                for key in sorted(inst._hseries):
                    counts, total = inst.series()[key]
                    entry["series"].append({
                        "labels": dict(key),
                        "counts": counts,
                        "sum": total,
                        "count": counts[-1],
                    })
            else:
                for key in sorted(inst._series):
                    entry["series"].append({
                        "labels": dict(key),
                        "value": inst._series[key],
                    })
            out[name] = entry
        return out

    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4, deterministically ordered."""
        lines: "list[str]" = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if inst.help:
                lines.append("# HELP %s %s"
                             % (name, inst.help.replace("\n", " ")))
            lines.append("# TYPE %s %s" % (name, inst.kind))
            if isinstance(inst, Histogram):
                for key in sorted(inst._hseries):
                    counts, total = inst.series()[key]
                    for bound, count in zip(inst.buckets, counts):
                        bucket_key = key + (("le", _format_value(
                            float(bound))),)
                        lines.append("%s_bucket%s %s" % (
                            name, _render_labels(bucket_key),
                            _format_value(float(count))))
                    inf_key = key + (("le", "+Inf"),)
                    lines.append("%s_bucket%s %s" % (
                        name, _render_labels(inf_key),
                        _format_value(float(counts[-1]))))
                    lines.append("%s_sum%s %s" % (
                        name, _render_labels(key), _format_value(total)))
                    lines.append("%s_count%s %s" % (
                        name, _render_labels(key),
                        _format_value(float(counts[-1]))))
            else:
                series = inst._series
                if not series and not inst.labelnames:
                    lines.append("%s 0" % name)
                for key in sorted(series):
                    lines.append("%s%s %s" % (
                        name, _render_labels(key),
                        _format_value(series[key])))
        return "\n".join(lines) + "\n"


#: Process-global default registry.  The daemon, broker, supervisor,
#: cache and resilience layers all report here unless handed an
#: explicit registry (tests inject fresh ones for isolation).
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _DEFAULT
