"""Unified observability: wall-clock tracing + service metrics.

Two submodules, one story:

* :mod:`repro.obs.tracing` -- request-scoped span model emitted through
  the obslog stream; the ``repro trace`` stitcher
  (:func:`repro.profiling.timeline.stitch_service_trace`) merges these
  wall-clock spans with the engine's sim-time telemetry into one
  Perfetto timeline.
* :mod:`repro.obs.metrics` -- deterministic counter/gauge/histogram
  registry behind the daemon ``metrics`` op and the
  ``repro serve --metrics-port`` Prometheus endpoint.

This package sits in both arclint safety scopes: process-safety
(ARC009-012 -- it adds no file-write sites; spans ride
:func:`repro.obslog.emit`) and async-safety (ARC013-016 -- metric
updates are pure in-memory, span emission routes through the
allowlisted obslog writer).
"""

from repro.obs import metrics, tracing

__all__ = ["metrics", "tracing"]
