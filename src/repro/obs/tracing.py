"""Wall-clock request tracing over the obslog event stream.

A **span** is one timed operation with a causal parent: the client's
``repro request`` originates a trace, the daemon threads its context
through the broker (admission, queue wait, execute, per-attempt retry),
and spawn workers pick up the session context from the ``REPRO_TRACE``
environment variable -- the same inheritance path ``REPRO_OBSLOG``
already rides.  Completed spans are emitted as ordinary obslog records
with ``event == "span"``, which buys three properties for free:

* one merged stream across every contributing process (O_APPEND line
  writes), torn-line tolerant via :func:`repro.obslog.read_events`;
* zero new I/O sites: span emission *is* :func:`repro.obslog.emit`,
  which is both in arclint's ARC009-012 static write model and on the
  ARC013 coroutine allowlist -- tracing from broker coroutines is legal
  by construction;
* zero overhead when off: no sink, no record, and :class:`Span` itself
  is two ``perf_counter`` reads.

Trace context crosses process boundaries two ways, deliberately split:

* **Per-request (in-band):** the JSON-lines protocol carries
  ``{"trace": {"trace_id": ..., "span_id": ...}}`` on the ``simulate``
  op; :class:`repro.service.request.SimRequest` forwards it into the
  broker.  Per-request context must *not* travel through the
  environment -- workers snapshot env at pool construction (arclint
  ARC011), so env can only carry session-scoped facts.
* **Per-session (env):** :func:`arm_session` exports one root context
  as ``REPRO_TRACE`` *before* the daemon builds its pool; workers read
  it via :func:`carried` and parent their ``cell.execute`` spans on it.
  ``REPRO_TRACE`` is declared in ``LintConfig.spawn_carry_env``.

Span ids are random (this is the wall-clock domain -- determinism of
*results* is untouched; the chaos suite proves tracing-on bit-identical
to tracing-off).  Timestamps are ``time.time`` starts plus
``perf_counter`` durations, so the stitcher can order spans across
processes while keeping durations monotonic-clock accurate.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro import obslog

__all__ = [
    "TRACE_ENV",
    "SpanContext",
    "Span",
    "arm_session",
    "carried",
    "new_span_id",
    "new_trace_id",
    "span",
]

TRACE_ENV = "REPRO_TRACE"


def new_trace_id() -> str:
    """128-bit random trace id (hex)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """64-bit random span id (hex)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable half of a span: which trace, which parent."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_dict(raw) -> "SpanContext | None":
        if not isinstance(raw, dict):
            return None
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        if not trace_id or not span_id:
            return None
        return SpanContext(str(trace_id), str(span_id))

    def encode(self) -> str:
        return "%s:%s" % (self.trace_id, self.span_id)

    @staticmethod
    def decode(raw: "str | None") -> "SpanContext | None":
        if not raw or ":" not in raw:
            return None
        trace_id, _, span_id = raw.partition(":")
        if not trace_id or not span_id:
            return None
        return SpanContext(trace_id, span_id)


class Span:
    """One in-progress timed operation; emits an obslog record on end.

    Built for the broker's split lifecycles (queue-wait starts in
    ``submit`` and ends in a dispatch task), so start/end are explicit
    calls rather than only a context manager.  ``end`` is idempotent
    and returns the duration in milliseconds whether or not a sink is
    armed -- callers (bench breakdown) use the number even when nothing
    is logged.
    """

    __slots__ = ("name", "context", "parent_id", "attrs",
                 "start_unix", "_t0", "_done", "dur_ms")

    def __init__(self, name: str, parent: "SpanContext | None" = None,
                 trace_id: "str | None" = None, **attrs):
        self.name = name
        tid = trace_id or (parent.trace_id if parent else new_trace_id())
        self.context = SpanContext(tid, new_span_id())
        self.parent_id = parent.span_id if parent else None
        self.attrs = dict(attrs)
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        self._done = False
        self.dur_ms: "float | None" = None

    def end(self, **attrs) -> float:
        if self._done:
            return self.dur_ms or 0.0
        self._done = True
        self.dur_ms = (time.perf_counter() - self._t0) * 1000.0
        self.attrs.update(attrs)
        record = {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "dur_ms": self.dur_ms,
        }
        record.update(self.attrs)
        obslog.emit("span", **record)
        return self.dur_ms


class span:
    """Context manager sugar over :class:`Span`.

    Marks the span with ``status="error"`` (plus the exception type)
    when the body raises, then re-raises -- tracing never swallows.
    """

    def __init__(self, name: str, parent: "SpanContext | None" = None,
                 trace_id: "str | None" = None, **attrs):
        self._span = Span(name, parent=parent, trace_id=trace_id, **attrs)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.end(status="error", error=exc_type.__name__)
        else:
            self._span.end()
        return False


def carried() -> "SpanContext | None":
    """The session context inherited through ``REPRO_TRACE``, if any."""
    return SpanContext.decode(os.environ.get(TRACE_ENV))


def arm_session(context: "SpanContext | None" = None) -> SpanContext:
    """Export a session root context for spawn workers to inherit.

    Must run before any worker pool is constructed (workers snapshot
    the environment then -- arclint ARC011 enforces the ordering).
    Idempotent: an already-armed session keeps its context.
    """
    existing = carried()
    if existing is not None:
        return existing
    context = context or SpanContext(new_trace_id(), new_span_id())
    os.environ[TRACE_ENV] = context.encode()
    return context


def disarm_session() -> None:
    """Drop the session context (tests)."""
    os.environ.pop(TRACE_ENV, None)
