"""Deterministic fault injection for the experiment execution layer.

The fault-tolerance machinery in :mod:`repro.experiments.resilience` is
only trustworthy if every recovery path is *provably* exercised, and the
repo's core invariant -- parallel and cached runs are bit-identical to a
clean serial run -- must survive each of them.  This module injects the
failures those proofs need, at exactly chosen points:

* ``crash``         -- the worker process dies (``os._exit``), which the
  parent observes as a :class:`BrokenProcessPool`;
* ``hang``          -- the worker sleeps past the per-cell timeout;
* ``error``         -- a transient :class:`InjectedFault` is raised,
  exercising bounded retries;
* ``corrupt-cache`` -- the cell's just-written disk-cache entry is
  truncated, exercising quarantine on the next read;
* ``interrupt``     -- a :class:`KeyboardInterrupt` is raised in the
  *parent* after the cell's result is recorded, exercising the clean
  Ctrl-C shutdown and manifest-resume paths;
* ``queue-full``    -- the service broker treats its admission queue as
  saturated for the targeted cell's Nth..1st admission attempts,
  exercising load-shedding and stale-serve degradation deterministically
  (see :mod:`repro.service.broker`) without having to win a timing race
  against the dispatchers.
* ``loop-block``    -- the broker's admission path blocks the event loop
  (a plain ``time.sleep`` on the loop thread) for the targeted cell's
  admission, proving the async-safety cross-check end to end: the static
  analysis flags the hook's call site (ARC013, suppressed as deliberate)
  and the runtime loop sanitizer (:mod:`repro.service.loopsan`)
  attributes the observed stall to the same frame.

The first three double as *service-level* faults: the daemon's workers
run the same task wrapper, so a ``crash`` spec kills a worker mid-request
and a ``hang`` spec turns a request into a slow cell that trips the
deadline/timeout machinery.

Injection is deterministic: a fault targets one cell (by
``workload|gpu|strategy`` identity) and fires on attempts ``1..times``
of that cell, nothing else.  No randomness, no wall-clock conditions --
the same plan against the same matrix injects the same faults.

Plans travel to spawned workers through the ``REPRO_FAULTS`` environment
variable (a JSON document, see :meth:`FaultPlan.from_json`);
:func:`configure` sets both the in-process plan and the variable so
worker processes created afterwards inherit it.  ``crash`` and ``hang``
only ever fire inside worker processes (marked by :func:`mark_worker`):
injecting them into the parent would kill the run they are meant to
prove recoverable.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "cell_id",
    "configure",
    "corrupt_entry",
    "mark_worker",
    "on_admission",
    "on_attempt",
    "on_completed",
    "planned_corruption",
    "planned_queue_full",
]

FAULTS_ENV = "REPRO_FAULTS"

FAULT_KINDS = (
    "crash", "hang", "error", "corrupt-cache", "interrupt", "queue-full",
    "loop-block",
)

#: Worker exit status for an injected crash (distinctive in core dumps /
#: CI logs, and never confusable with a python traceback exit).
CRASH_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """Transient failure raised by an ``error`` fault."""


def cell_id(workload: str, gpu: str, strategy: str) -> str:
    """Canonical cell identity used to target faults and key reports."""
    return f"{workload}|{gpu}|{strategy}"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *kind* at *cell*, on attempts ``1..times``."""

    cell: str
    kind: str
    times: int = 1
    seconds: float = 30.0  # hang duration; ignored by other kinds

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def matches(self, cell: str, kind: str, attempt: int) -> bool:
        return (self.cell == cell and self.kind == kind
                and attempt <= self.times)

    def as_dict(self) -> dict:
        return {"cell": self.cell, "kind": self.kind,
                "times": self.times, "seconds": self.seconds}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of planned faults."""

    specs: "tuple[FaultSpec, ...]" = ()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        # Accept a bare list of specs as shorthand for {"faults": [...]}:
        # the wrapper object exists for forward compatibility, but a hand
        # typed REPRO_FAULTS almost always starts as a plain list.
        if isinstance(payload, list):
            payload = {"faults": payload}
        specs = []
        for raw in payload.get("faults", []):
            specs.append(FaultSpec(
                cell=raw["cell"],
                kind=raw["kind"],
                times=int(raw.get("times", 1)),
                seconds=float(raw.get("seconds", 30.0)),
            ))
        return cls(tuple(specs))

    def to_json(self) -> str:
        return json.dumps(
            {"faults": [spec.as_dict() for spec in self.specs]},
            sort_keys=True,
        )

    def find(self, cell: str, kind: str, attempt: int) -> "FaultSpec | None":
        for spec in self.specs:
            if spec.matches(cell, kind, attempt):
                return spec
        return None


_plan: "FaultPlan | None" = None
_in_worker = False


def configure(plan: "FaultPlan | None") -> "FaultPlan | None":
    """Install *plan* process-wide and export it to spawned workers.

    ``configure(None)`` clears both the in-process plan and the
    environment variable.  Worker processes created *after* a configure
    call inherit the exported plan; already-running workers keep the one
    they started with.
    """
    global _plan
    _plan = plan
    if plan is None or not plan.specs:
        os.environ.pop(FAULTS_ENV, None)
    else:
        os.environ[FAULTS_ENV] = plan.to_json()
    return _plan


def active_plan() -> "FaultPlan | None":
    """The configured plan, else the one in ``REPRO_FAULTS``, else None."""
    # The parent-written global is a parent-side fast path only; workers
    # intentionally fall through to the REPRO_FAULTS env fallback below,
    # which configure() exports before any pool exists (spawn-carry set).
    if _plan is not None:  # arclint: disable=ARC010
        return _plan  # arclint: disable=ARC010
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    return FaultPlan.from_json(raw)


def mark_worker() -> None:
    """Record that this process is a pool worker (enables crash/hang)."""
    global _in_worker
    _in_worker = True


def on_attempt(cell: str, attempt: int) -> None:
    """Fire any crash/hang/error fault planned for (*cell*, *attempt*).

    Called by the worker-side task wrapper before simulating, and by the
    in-process serial fallback (where crash/hang are suppressed: killing
    or hanging the parent would turn a recoverable fault into run loss).
    """
    plan = active_plan()
    if plan is None:
        return
    if _in_worker and plan.find(cell, "crash", attempt):
        os._exit(CRASH_EXIT_CODE)
    hang = plan.find(cell, "hang", attempt)
    if _in_worker and hang is not None:
        time.sleep(hang.seconds)
    if plan.find(cell, "error", attempt):
        raise InjectedFault(
            f"injected transient fault at cell {cell} (attempt {attempt})"
        )


def planned_corruption(cell: str, attempt: int) -> bool:
    """Whether a ``corrupt-cache`` fault targets (*cell*, *attempt*)."""
    plan = active_plan()
    return plan is not None and (
        plan.find(cell, "corrupt-cache", attempt) is not None
    )


def planned_queue_full(cell: str, arrival: int) -> bool:
    """Whether a ``queue-full`` fault targets *cell*'s *arrival*-th
    admission attempt.

    The broker consults this at admission time, *before* checking real
    queue occupancy: a matching spec forces the saturated path (shed or
    stale-serve) for that admission, so chaos tests and the load
    benchmark script exact overload counts instead of racing the
    dispatchers into a genuinely full queue.
    """
    plan = active_plan()
    return plan is not None and (
        plan.find(cell, "queue-full", arrival) is not None
    )


def on_admission(cell: str, arrival: int) -> None:
    """Fire any ``loop-block`` fault planned for *cell*'s *arrival*-th
    admission: a deliberate synchronous sleep on the event-loop thread.

    The broker calls this at admission time.  The sleep is exactly the
    bug class ARC013 forbids, injected on purpose so the chaos suite
    can prove both halves of the async-safety cross-check catch it:
    statically at the broker's call site, and at runtime as a stall
    loopsan attributes to this very frame.
    """
    plan = active_plan()
    if plan is None:
        return
    spec = plan.find(cell, "loop-block", arrival)
    if spec is not None:
        time.sleep(spec.seconds)


def corrupt_entry(path: Path) -> bool:
    """Truncate a cache entry to simulate a torn write; True if done."""
    try:
        data = path.read_bytes()
    except OSError:
        return False
    # Deliberately unsound: this *is* the torn write the corrupt-cache
    # fault simulates, so the quarantine path gets exercised.
    path.write_bytes(data[: max(1, len(data) // 2)])  # arclint: disable=ARC009
    return True


def on_completed(cell: str) -> None:
    """Parent-side hook fired after *cell*'s result has been recorded.

    An ``interrupt`` fault raises :class:`KeyboardInterrupt` here --
    after the manifest append and cache seeding, exactly where a real
    Ctrl-C between cells would land.
    """
    plan = active_plan()
    if plan is not None and plan.find(cell, "interrupt", 1):
        raise KeyboardInterrupt(f"injected interrupt after cell {cell}")
