"""Fault-tolerant driving of per-cell futures over a process pool.

:func:`repro.experiments.parallel.run_matrix_parallel` used to drive its
pool with ``pool.map``: one crashed worker raised
:class:`BrokenProcessPool` and discarded every completed cell, and one
hung simulation blocked the run forever.  This module replaces that with
per-future submission plus a recovery loop:

* **bounded retries** with exponential backoff whose jitter is
  *deterministic* -- derived from the cell's content-address key and the
  attempt number, never from an RNG -- so reruns schedule identically;
* **per-cell wall-clock timeouts**: a cell that exceeds
  :attr:`RetryPolicy.timeout` is charged a failed attempt and the pool
  (which cannot cancel a running task) is abandoned and respawned;
* **pool-crash recovery**: :class:`BrokenProcessPool` respawns the pool
  and requeues only unfinished cells -- completed results are kept;
* **graceful degradation**: a cell that exhausts its worker attempts
  runs once more *in process* (serial fallback), so a poisoned pool
  environment cannot fail a cell the simulator itself can compute;
* **clean interruption**: ``KeyboardInterrupt`` shuts the pool down with
  ``cancel_futures`` and propagates; every result recorded before the
  interrupt has already been delivered through ``on_result`` (the
  caller seeds caches and the run manifest there, enabling resume).

None of this touches *what* is computed -- recovery only ever re-runs
the same deterministic simulation -- so the repo's bit-identical
contract (serial == parallel == cached) holds on every path; the chaos
suite (``tests/test_chaos.py``) proves it under injected faults.

Every attempt is recorded in a structured :class:`RunReport`
(per-cell attempts, outcomes, durations, sources) which the CLI and the
benchmark harness surface after parallel runs.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from concurrent.futures import CancelledError, FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro import obslog
from repro.obs import metrics as obsmetrics

__all__ = [
    "CELL_TIMEOUT_ENV",
    "MAX_ATTEMPTS_ENV",
    "AttemptRecord",
    "CellExecutionError",
    "CellReport",
    "RetryPolicy",
    "RunReport",
    "run_resilient",
]

MAX_ATTEMPTS_ENV = "REPRO_MAX_ATTEMPTS"
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on a cell.

    ``max_attempts`` bounds *worker* attempts; after exhausting them the
    cell gets one final in-process attempt (the serial fallback).
    ``timeout`` is wall-clock seconds per attempt (``None`` disables).
    Backoff before retry ``n`` is ``backoff_base * backoff_factor**(n-2)``
    capped at ``backoff_max``, spread by ``jitter`` (a +/-50%-of-jitter
    band) derived deterministically from the cell key and attempt number.
    """

    max_attempts: int = 3
    timeout: "float | None" = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults, overridden by ``REPRO_MAX_ATTEMPTS`` /
        ``REPRO_CELL_TIMEOUT`` (seconds) when set and valid."""
        kwargs = {}
        raw = os.environ.get(MAX_ATTEMPTS_ENV, "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                value = 0
            if value >= 1:
                kwargs["max_attempts"] = value
        raw = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
        if raw:
            try:
                seconds = float(raw)
            except ValueError:
                seconds = 0.0
            if seconds > 0:
                kwargs["timeout"] = seconds
        return cls(**kwargs)

    def clamped(self, remaining: "float | None") -> "RetryPolicy":
        """This policy with its per-attempt timeout capped at *remaining*.

        Deadline propagation: a service request that must complete within
        *remaining* seconds cannot grant a single attempt more wall-clock
        than that, however generous the configured cell timeout is.
        ``None`` (no deadline) returns the policy unchanged; a
        non-positive *remaining* clamps to a minimal positive timeout so
        the attempt is charged a timeout instead of tripping the
        ``RetryPolicy`` validator.
        """
        if remaining is None:
            return self
        bound = max(remaining, 1e-3)
        if self.timeout is not None and self.timeout <= bound:
            return self
        return replace(self, timeout=bound)

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to back off before retry *attempt* (>= 2) of *key*.

        The jitter factor is hashed from (key, attempt): stable across
        processes and reruns, yet de-synchronized across cells so a
        respawned pool is not hit by every retry at once.
        """
        raw = self.backoff_base * self.backoff_factor ** max(0, attempt - 2)
        raw = min(raw, self.backoff_max)
        if not self.jitter:
            return raw
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
        return raw * (1.0 + self.jitter * (unit - 0.5))


@dataclass
class AttemptRecord:
    """One execution attempt of one cell."""

    attempt: int
    outcome: str  # "ok" | "error" | "crash" | "timeout" | "fallback-error"
    duration: float
    error: "str | None" = None

    def as_dict(self) -> dict:
        return {"attempt": self.attempt, "outcome": self.outcome,
                "duration": self.duration, "error": self.error}


@dataclass
class CellReport:
    """Execution history of one cell of the matrix."""

    cell: str  # "workload|gpu|strategy"
    key: str   # content-address (diskcache.result_key)
    attempts: "list[AttemptRecord]" = field(default_factory=list)
    #: "worker" | "serial-fallback" | "manifest" | "pending"
    source: str = "pending"

    def as_dict(self) -> dict:
        return {
            "cell": self.cell,
            "key": self.key,
            "source": self.source,
            "attempts": [record.as_dict() for record in self.attempts],
        }


class RunReport:
    """Structured outcome of one fault-tolerant matrix execution."""

    def __init__(self):
        self.cells: "list[CellReport]" = []
        self.pool_restarts = 0
        self.interrupted = False

    def _count(self, source: str) -> int:
        return sum(1 for cell in self.cells if cell.source == source)

    @property
    def simulated(self) -> int:
        """Cells computed by pool workers this run."""
        return self._count("worker")

    @property
    def resumed(self) -> int:
        """Cells recovered from a prior interrupted run's manifest."""
        return self._count("manifest")

    @property
    def fallbacks(self) -> int:
        """Cells that degraded to in-process serial execution."""
        return self._count("serial-fallback")

    @property
    def retries(self) -> int:
        return sum(max(0, len(cell.attempts) - 1) for cell in self.cells)

    def _outcomes(self, outcome: str) -> int:
        return sum(
            1
            for cell in self.cells
            for record in cell.attempts
            if record.outcome == outcome
        )

    @property
    def timeouts(self) -> int:
        return self._outcomes("timeout")

    @property
    def crashes(self) -> int:
        return self._outcomes("crash")

    def as_dict(self) -> dict:
        return {
            "cells": [cell.as_dict() for cell in self.cells],
            "pool_restarts": self.pool_restarts,
            "interrupted": self.interrupted,
            "summary": {
                "total": len(self.cells),
                "simulated": self.simulated,
                "resumed": self.resumed,
                "fallbacks": self.fallbacks,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "crashes": self.crashes,
            },
        }

    def summary_line(self) -> str:
        return (
            f"{len(self.cells)} cells: {self.simulated} simulated, "
            f"{self.resumed} resumed, {self.fallbacks} serial fallback(s); "
            f"{self.retries} retr(ies), {self.timeouts} timeout(s), "
            f"{self.crashes} crash signal(s), "
            f"{self.pool_restarts} pool restart(s)"
        )


class CellExecutionError(RuntimeError):
    """A cell failed its worker attempts *and* the in-process fallback."""

    def __init__(self, cell: str, report: RunReport):
        super().__init__(
            f"cell {cell} failed every worker attempt and the in-process "
            "serial fallback; see the run report for per-attempt causes"
        )
        self.cell = cell
        self.report = report


def _count_attempt(outcome: str) -> None:
    """Per-process attempt-outcome counter (pure in-memory)."""
    obsmetrics.registry().counter(
        "repro_retry_attempts_total", "Cell attempt outcomes",
        labelnames=("outcome",),
    ).inc(outcome=outcome)


def _count_backoff(delay: float) -> None:
    obsmetrics.registry().counter(
        "repro_retry_backoff_seconds_total",
        "Total deterministic backoff slept before retries",
    ).inc(delay)


def _abandon_pool(pool) -> None:
    """Shut a (possibly broken or hung) pool down without waiting.

    ``cancel_futures`` drains queued work; terminating the worker
    processes frees any stuck in a hung task, which ``shutdown`` alone
    would never reclaim.  (``_processes`` is executor-private, hence the
    defensive ``getattr``: on interpreters without it the orphaned
    worker leaks until its task ends, but the run still proceeds.)
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()


def run_resilient(
    pending: "list[int]",
    *,
    pool_factory,
    submit,
    fallback,
    policy: RetryPolicy,
    report: RunReport,
    on_result,
) -> None:
    """Drive *pending* cell indices to completion, recovering failures.

    ``pool_factory()`` builds a fresh executor; ``submit(pool, index,
    attempt)`` returns the cell's future; ``fallback(index, attempt)``
    computes the cell in-process.  ``on_result(index, result)`` is
    invoked exactly once per newly computed cell, as soon as its result
    arrives (this is where callers seed caches and append the manifest,
    which is what makes an interrupt at any point resumable).
    ``report.cells`` must already hold a :class:`CellReport` per cell
    index.

    Raises :class:`CellExecutionError` if a cell fails terminally and
    re-raises ``KeyboardInterrupt`` after a clean ``cancel_futures``
    shutdown.
    """
    queue: "deque[tuple[int, int]]" = deque((i, 1) for i in pending)
    delayed: "list[tuple[float, int, int]]" = []  # (due, index, attempt)
    inflight: dict = {}  # future -> (index, attempt, started, deadline)
    pool = pool_factory()

    def record(index: int, attempt: int, outcome: str, started: float,
               error: "str | None" = None) -> None:
        duration = time.monotonic() - started
        report.cells[index].attempts.append(AttemptRecord(
            attempt=attempt, outcome=outcome,
            duration=duration, error=error,
        ))
        _count_attempt(outcome)
        obslog.emit("cell.attempt", cell=report.cells[index].cell,
                    attempt=attempt, outcome=outcome, duration=duration,
                    error=error)

    def respawn() -> None:
        nonlocal pool
        _abandon_pool(pool)
        report.pool_restarts += 1
        obsmetrics.registry().counter(
            "repro_runner_pool_restarts_total",
            "Parallel-runner pool respawns",
        ).inc()
        obslog.emit("pool.restart", restarts=report.pool_restarts)
        pool = pool_factory()

    def retry_or_fall_back(index: int, attempt: int) -> None:
        cell = report.cells[index]
        if attempt < policy.max_attempts:
            delay = policy.delay(cell.key, attempt + 1)
            due = time.monotonic() + delay
            delayed.append((due, index, attempt + 1))
            _count_backoff(delay)
            obslog.emit("cell.retry", cell=cell.cell,
                        attempt=attempt + 1, backoff=delay)
            return
        obslog.emit("cell.fallback", cell=cell.cell, attempt=attempt + 1)
        # Graceful degradation: one in-process attempt, outside the pool.
        started = time.monotonic()
        final = attempt + 1
        try:
            result = fallback(index, final)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            record(index, final, "fallback-error", started, repr(exc))
            raise CellExecutionError(cell.cell, report) from exc
        record(index, final, "ok", started)
        cell.source = "serial-fallback"
        on_result(index, result)

    try:
        while queue or delayed or inflight:
            now = time.monotonic()
            delayed.sort()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = delayed.pop(0)
                queue.append((index, attempt))
            while queue:
                index, attempt = queue.popleft()
                obslog.emit("cell.start", cell=report.cells[index].cell,
                            attempt=attempt)
                future = submit(pool, index, attempt)
                started = time.monotonic()
                deadline = (None if policy.timeout is None
                            else started + policy.timeout)
                inflight[future] = (index, attempt, started, deadline)
            if not inflight:
                # Only backoff delays remain; sleep until the earliest.
                time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue

            done, _ = wait(
                list(inflight),
                timeout=_next_wait(inflight, delayed),
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                index, attempt, started, _ = inflight.pop(future)
                try:
                    result = future.result(timeout=0)
                except (BrokenProcessPool, CancelledError) as exc:
                    broken = True
                    record(index, attempt, "crash", started, repr(exc))
                    retry_or_fall_back(index, attempt)
                except Exception as exc:
                    record(index, attempt, "error", started, repr(exc))
                    retry_or_fall_back(index, attempt)
                else:
                    record(index, attempt, "ok", started)
                    report.cells[index].source = "worker"
                    on_result(index, result)
            if broken:
                # Unfinished work died with the pool: requeue at the same
                # attempt number (those cells were never executed).
                for index, attempt, _, _ in inflight.values():
                    queue.append((index, attempt))
                inflight.clear()
                respawn()
                continue

            now = time.monotonic()
            expired = [
                future
                for future, (_, _, _, deadline) in inflight.items()
                if deadline is not None and deadline <= now
            ]
            if expired:
                for future in expired:
                    index, attempt, started, _ = inflight.pop(future)
                    record(index, attempt, "timeout", started,
                           f"exceeded {policy.timeout}s wall-clock limit")
                    retry_or_fall_back(index, attempt)
                # A running task cannot be cancelled; the hung worker
                # takes the whole pool with it.  Unfinished cells are
                # requeued unchanged.
                for index, attempt, _, _ in inflight.values():
                    queue.append((index, attempt))
                inflight.clear()
                respawn()
        pool.shutdown(wait=True)
    except KeyboardInterrupt:
        report.interrupted = True
        _abandon_pool(pool)
        raise
    except BaseException:
        _abandon_pool(pool)
        raise


def _next_wait(inflight: dict, delayed: list) -> "float | None":
    """Seconds until the nearest deadline or retry due time (None: none)."""
    now = time.monotonic()
    horizons = [
        deadline - now
        for (_, _, _, deadline) in inflight.values()
        if deadline is not None
    ]
    horizons.extend(due - now for due, _, _ in delayed)
    if not horizons:
        return None
    return max(0.0, min(horizons)) + 0.005
