"""Experiment runner: workload x strategy x GPU matrices with caching.

The benchmark harness reproduces ~14 tables/figures that share traces and
simulations (the same baseline run appears in half the figures).  This
module memoizes workload trace captures and simulation results
process-wide, so each (workload, GPU, strategy) cell is simulated exactly
once per session no matter how many figures reference it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    AtomicStrategy,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.gpu import SIMULATED_GPUS, GPUConfig, SimResult, simulate_kernel
from repro.trace.events import KernelTrace
from repro.workloads import Workload, load_workload

__all__ = [
    "STRATEGY_FACTORIES",
    "get_workload",
    "get_trace",
    "get_result",
    "run_matrix",
    "speedups_over_baseline",
    "arithmetic_mean",
    "clear_caches",
]

#: Canonical strategy factories by report name.  ARC-SW entries carry the
#: balancing threshold in the name, as in the paper ("SW-B-16").
STRATEGY_FACTORIES: dict[str, Callable[[], AtomicStrategy]] = {
    "baseline": BaselineAtomic,
    "ARC-HW": ArcHW,
    "CCCL": CCCLReduce,
    "LAB": LAB,
    "LAB-ideal": LABIdeal,
    "PHI": PHI,
    **{
        f"ARC-SW-B-{threshold}": (
            lambda threshold=threshold: ArcSWButterfly(threshold)
        )
        for threshold in (0, 4, 8, 16, 24)
    },
    **{
        f"ARC-SW-S-{threshold}": (
            lambda threshold=threshold: ArcSWSerialized(threshold)
        )
        for threshold in (0, 4, 8, 16, 24)
    },
}

#: Balancing thresholds swept by the Figure 23 sensitivity study.
SWEEP_THRESHOLDS = (0, 4, 8, 16, 24)

_workload_cache: dict[str, Workload] = {}
_trace_cache: dict[str, KernelTrace] = {}
_result_cache: dict[tuple[str, str, str], SimResult] = {}


def clear_caches() -> None:
    """Drop all memoized workloads, traces and simulation results."""
    _workload_cache.clear()
    _trace_cache.clear()
    _result_cache.clear()


def get_workload(key: str) -> Workload:
    """Memoized workload instance (built lazily on first use)."""
    if key not in _workload_cache:
        _workload_cache[key] = load_workload(key)
    return _workload_cache[key]


def get_trace(key: str) -> KernelTrace:
    """Memoized gradient-kernel trace of workload *key*."""
    if key not in _trace_cache:
        _trace_cache[key] = get_workload(key).capture_trace()
    return _trace_cache[key]


def _gpu_by_name(gpu: "str | GPUConfig") -> GPUConfig:
    if isinstance(gpu, GPUConfig):
        return gpu
    return SIMULATED_GPUS[gpu]


def get_result(workload: str, gpu: "str | GPUConfig",
               strategy: str) -> SimResult:
    """Memoized simulation of one (workload, GPU, strategy) cell."""
    config = _gpu_by_name(gpu)
    cache_key = (workload, config.name, strategy)
    if cache_key not in _result_cache:
        if strategy not in STRATEGY_FACTORIES:
            raise KeyError(
                f"unknown strategy {strategy!r}; "
                f"choose from {sorted(STRATEGY_FACTORIES)}"
            )
        trace = get_trace(workload)
        _result_cache[cache_key] = simulate_kernel(
            trace, config, STRATEGY_FACTORIES[strategy]()
        )
    return _result_cache[cache_key]


@dataclass(frozen=True)
class Cell:
    """One entry of an experiment matrix."""

    workload: str
    gpu: str
    strategy: str
    result: SimResult

    @property
    def cycles(self) -> float:
        return self.result.total_cycles


def strategy_applicable(workload: str, strategy: str) -> bool:
    """SW-B (and thresholded variants) need divergence-free kernels."""
    if "SW-B" not in strategy:
        return True
    return get_trace(workload).bfly_eligible


def run_matrix(
    workloads: "list[str]",
    strategies: "list[str]",
    gpus: "list[str | GPUConfig]",
    skip_inapplicable: bool = True,
) -> list[Cell]:
    """Simulate every applicable (workload, strategy, GPU) combination."""
    cells = []
    for gpu in gpus:
        config = _gpu_by_name(gpu)
        for workload in workloads:
            for strategy in strategies:
                if skip_inapplicable and not strategy_applicable(
                    workload, strategy
                ):
                    continue
                cells.append(
                    Cell(
                        workload=workload,
                        gpu=config.name,
                        strategy=strategy,
                        result=get_result(workload, config, strategy),
                    )
                )
    return cells


def best_threshold(workload: str, gpu: "str | GPUConfig",
                   variant: str = "B") -> int:
    """Best-performing balancing threshold for one workload (§5.5.3).

    This is the offline analogue of the paper's auto-tuner: simulate the
    kernel at each candidate threshold and keep the fastest.
    """
    if variant not in ("B", "S"):
        raise ValueError("variant must be 'B' or 'S'")
    best, best_cycles = SWEEP_THRESHOLDS[0], float("inf")
    for threshold in SWEEP_THRESHOLDS:
        result = get_result(workload, gpu, f"ARC-SW-{variant}-{threshold}")
        if result.total_cycles < best_cycles:
            best, best_cycles = threshold, result.total_cycles
    return best


def best_sw_result(workload: str, gpu: "str | GPUConfig",
                   variant: str = "B") -> SimResult:
    """SimResult of the best-threshold ARC-SW variant (the paper's SW-B /
    SW-S bars report the best-performing threshold, §7)."""
    threshold = best_threshold(workload, gpu, variant)
    return get_result(workload, gpu, f"ARC-SW-{variant}-{threshold}")


def speedups_over_baseline(cells: "list[Cell]") -> dict:
    """{(workload, gpu, strategy): speedup} for non-baseline cells."""
    speedups = {}
    for cell in cells:
        if cell.strategy == "baseline":
            continue
        baseline = get_result(cell.workload, cell.gpu, "baseline")
        speedups[(cell.workload, cell.gpu, cell.strategy)] = (
            cell.result.speedup_over(baseline)
        )
    return speedups


def arithmetic_mean(values) -> float:
    """Plain mean (the paper reports arithmetic means of speedups)."""
    values = list(values)
    if not values:
        raise ValueError("no values to average")
    return sum(values) / len(values)
