"""Experiment runner: workload x strategy x GPU matrices with caching.

The benchmark harness reproduces ~14 tables/figures that share traces and
simulations (the same baseline run appears in half the figures).  This
module memoizes workload trace captures and simulation results
process-wide, so each (workload, GPU, strategy) cell is simulated exactly
once per session no matter how many figures reference it.

Below the in-memory layer sits a persistent content-addressed disk cache
(:mod:`repro.experiments.diskcache`): :func:`get_result` consults memory,
then disk, and only then simulates.  Warm sessions therefore replay whole
figure matrices without a single :func:`simulate_kernel` call.  For
fanning the independent cells out across worker processes, see
:mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.experiments import diskcache
from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    AtomicStrategy,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.gpu import SIMULATED_GPUS, GPUConfig, SimResult, simulate_kernel
from repro.trace.events import KernelTrace
from repro.workloads import Workload, load_workload

__all__ = [
    "STRATEGY_FACTORIES",
    "get_workload",
    "get_trace",
    "seed_trace",
    "get_result",
    "make_strategy",
    "simulate_cell",
    "seed_result",
    "run_matrix",
    "speedups_over_baseline",
    "arithmetic_mean",
    "clear_caches",
]

#: Canonical strategy factories by report name.  ARC-SW entries carry the
#: balancing threshold in the name, as in the paper ("SW-B-16").
STRATEGY_FACTORIES: dict[str, Callable[[], AtomicStrategy]] = {
    "baseline": BaselineAtomic,
    "ARC-HW": ArcHW,
    "CCCL": CCCLReduce,
    "LAB": LAB,
    "LAB-ideal": LABIdeal,
    "PHI": PHI,
    **{
        f"ARC-SW-B-{threshold}": (
            lambda threshold=threshold: ArcSWButterfly(threshold)
        )
        for threshold in (0, 4, 8, 16, 24)
    },
    **{
        f"ARC-SW-S-{threshold}": (
            lambda threshold=threshold: ArcSWSerialized(threshold)
        )
        for threshold in (0, 4, 8, 16, 24)
    },
}

#: Balancing thresholds swept by the Figure 23 sensitivity study.
SWEEP_THRESHOLDS = (0, 4, 8, 16, 24)

_workload_cache: dict[str, Workload] = {}
_trace_cache: dict[str, KernelTrace] = {}
_result_cache: dict[tuple[str, str, str], SimResult] = {}


def clear_caches(disk: bool = False) -> None:
    """Drop all memoized workloads, traces and simulation results.

    The persistent disk layer survives by default (that is its point);
    pass ``disk=True`` to also wipe the active on-disk cache, which
    isolation-sensitive tests need so no state leaks between them.
    """
    _workload_cache.clear()
    _trace_cache.clear()
    _result_cache.clear()
    if disk:
        cache = diskcache.active_cache()
        if cache is not None:
            cache.clear()


def get_workload(key: str) -> Workload:
    """Memoized workload instance (built lazily on first use)."""
    if key not in _workload_cache:
        _workload_cache[key] = load_workload(key)
    return _workload_cache[key]


def get_trace(key: str) -> KernelTrace:
    """Memoized gradient-kernel trace of workload *key*."""
    if key not in _trace_cache:
        _trace_cache[key] = get_workload(key).capture_trace()
    return _trace_cache[key]


def seed_trace(key: str, trace: KernelTrace) -> None:
    """Inject an already-captured trace into the memoization layer.

    Callers that capture traces themselves (the CLI, tests with synthetic
    workloads) use this so :func:`get_result` and the parallel runner
    replay the exact same trace instead of re-capturing.
    """
    _trace_cache[key] = trace


def _gpu_by_name(gpu: "str | GPUConfig") -> GPUConfig:
    if isinstance(gpu, GPUConfig):
        return gpu
    return SIMULATED_GPUS[gpu]


def make_strategy(strategy: str) -> AtomicStrategy:
    """Fresh strategy instance for a registry name, validating the name."""
    if strategy not in STRATEGY_FACTORIES:
        raise KeyError(
            f"unknown strategy {strategy!r}; "
            f"choose from {sorted(STRATEGY_FACTORIES)}"
        )
    return STRATEGY_FACTORIES[strategy]()


def simulate_cell(trace: KernelTrace, config: GPUConfig,
                  strategy: AtomicStrategy) -> SimResult:
    """Disk-then-simulate path shared by the serial and parallel runners.

    Consults the persistent cache under a content hash of (config, trace,
    strategy); on a miss, simulates and stores the result.  Memory-level
    memoization stays the caller's job (:func:`get_result` here, the
    per-process caches in :mod:`repro.experiments.parallel`).
    """
    cache = diskcache.active_cache()
    if cache is None:
        return simulate_kernel(trace, config, strategy)
    key = diskcache.result_key(config, trace, strategy)
    result = cache.load(key)
    if result is None:
        result = simulate_kernel(trace, config, strategy)
        cache.store(key, result)
    return result


def _memory_key(workload: str, config: GPUConfig,
                strategy: str) -> tuple[str, str, str]:
    # Keyed by config *content*, not name: ablations pass modified copies
    # of a preset that keep its name, and those must not collide.
    return (workload, config.fingerprint(), strategy)


def get_result(workload: str, gpu: "str | GPUConfig",
               strategy: str) -> SimResult:
    """One (workload, GPU, strategy) cell: memory -> disk -> simulate."""
    config = _gpu_by_name(gpu)
    cache_key = _memory_key(workload, config, strategy)
    if cache_key not in _result_cache:
        instance = make_strategy(strategy)
        trace = get_trace(workload)
        _result_cache[cache_key] = simulate_cell(trace, config, instance)
    return _result_cache[cache_key]


def seed_result(workload: str, gpu: "str | GPUConfig", strategy: str,
                result: SimResult) -> None:
    """Inject an already-computed cell into the in-memory layer.

    The parallel runner uses this to make worker results visible to
    subsequent serial :func:`get_result` calls in the parent process.
    """
    config = _gpu_by_name(gpu)
    _result_cache[_memory_key(workload, config, strategy)] = result


@dataclass(frozen=True)
class Cell:
    """One entry of an experiment matrix."""

    workload: str
    gpu: str
    strategy: str
    result: SimResult

    @property
    def cycles(self) -> float:
        return self.result.total_cycles


def strategy_applicable(workload: str, strategy: str) -> bool:
    """SW-B (and thresholded variants) need divergence-free kernels."""
    if "SW-B" not in strategy:
        return True
    return get_trace(workload).bfly_eligible


def run_matrix(
    workloads: "list[str]",
    strategies: "list[str]",
    gpus: "list[str | GPUConfig]",
    skip_inapplicable: bool = True,
) -> list[Cell]:
    """Simulate every applicable (workload, strategy, GPU) combination."""
    cells = []
    for gpu in gpus:
        config = _gpu_by_name(gpu)
        for workload in workloads:
            for strategy in strategies:
                if skip_inapplicable and not strategy_applicable(
                    workload, strategy
                ):
                    continue
                cells.append(
                    Cell(
                        workload=workload,
                        gpu=config.name,
                        strategy=strategy,
                        result=get_result(workload, config, strategy),
                    )
                )
    return cells


def best_threshold(workload: str, gpu: "str | GPUConfig",
                   variant: str = "B") -> int:
    """Best-performing balancing threshold for one workload (§5.5.3).

    This is the offline analogue of the paper's auto-tuner: simulate the
    kernel at each candidate threshold and keep the fastest.
    """
    if variant not in ("B", "S"):
        raise ValueError("variant must be 'B' or 'S'")
    best, best_cycles = SWEEP_THRESHOLDS[0], float("inf")
    for threshold in SWEEP_THRESHOLDS:
        result = get_result(workload, gpu, f"ARC-SW-{variant}-{threshold}")
        if result.total_cycles < best_cycles:
            best, best_cycles = threshold, result.total_cycles
    return best


def best_sw_result(workload: str, gpu: "str | GPUConfig",
                   variant: str = "B") -> SimResult:
    """SimResult of the best-threshold ARC-SW variant (the paper's SW-B /
    SW-S bars report the best-performing threshold, §7)."""
    threshold = best_threshold(workload, gpu, variant)
    return get_result(workload, gpu, f"ARC-SW-{variant}-{threshold}")


def speedups_over_baseline(cells: "list[Cell]") -> dict:
    """{(workload, gpu, strategy): speedup} for non-baseline cells."""
    speedups = {}
    for cell in cells:
        if cell.strategy == "baseline":
            continue
        baseline = get_result(cell.workload, cell.gpu, "baseline")
        speedups[(cell.workload, cell.gpu, cell.strategy)] = (
            cell.result.speedup_over(baseline)
        )
    return speedups


def arithmetic_mean(values) -> float:
    """Plain mean (the paper reports arithmetic means of speedups)."""
    values = list(values)
    if not values:
        raise ValueError("no values to average")
    return sum(values) / len(values)
