"""Persistent on-disk cache of simulation results.

The in-memory memoization in :mod:`repro.experiments.runner` dies with the
process, so every session re-simulates the full figure matrix from
scratch.  This module adds a durable layer below it: each simulated
(workload, GPU, strategy) cell is stored as one small JSON file keyed by a
*content hash* of everything that determines the simulation's outcome:

* every :class:`~repro.gpu.config.GPUConfig` field (cost and energy
  models included), via :meth:`GPUConfig.fingerprint`;
* the kernel trace's content, via :attr:`KernelTrace.fingerprint`;
* the strategy's class, report name and constructor parameters;
* the simulation engine's own source code, via
  :func:`engine_fingerprint` -- the inputs above say *what* is
  simulated, this says *by which* simulator.

Because the key is derived from content rather than names, a cached entry
can never be served for inputs it was not produced with -- editing a cost
model entry, re-capturing a trace differently, changing a balancing
threshold, or modifying the engine itself all change the key, so a warm
cache (a developer's ``~/.cache/repro-arc``, a restored CI snapshot)
degrades to misses rather than serving results an older engine computed.
Conversely the key is stable across processes, dict orderings and
sessions, which is what makes warm reruns skip
:func:`~repro.gpu.engine.simulate_kernel` entirely.

Layout: ``<root>/results/<first two hex chars>/<sha256>.json``.  Writes
are atomic (temp file + ``os.replace``) so concurrent worker processes
sharing one cache directory can only ever observe complete entries.
Corrupt or truncated entries are treated as misses and *quarantined*:
moved under ``<root>/quarantine/`` (never deleted, so a torn write or
bit-rot incident stays inspectable) and counted in
:attr:`CacheStats.quarantined`.  Writer temp files orphaned by a killed
process are swept on cache open once they are clearly abandoned
(older than one hour -- a live writer holds its temp file for
milliseconds).

Configuration:

* ``REPRO_CACHE_DIR`` -- cache directory (default
  ``$XDG_CACHE_HOME/repro-arc`` or ``~/.cache/repro-arc``);
* ``REPRO_NO_DISK_CACHE=1`` -- disable the disk layer entirely;
* ``REPRO_CACHE_SWEEP_AGE`` -- orphaned-temp-file sweep age gate in
  seconds (default 3600);
* :func:`configure` -- programmatic override of the first two.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro import obslog
from repro.core.base import AtomicStrategy
from repro.gpu.config import GPUConfig
from repro.gpu.stats import SimResult
from repro.obs import metrics as obsmetrics
from repro.trace.events import KernelTrace

__all__ = [
    "CACHE_DIR_ENV",
    "NO_CACHE_ENV",
    "SWEEP_AGE_ENV",
    "CacheStats",
    "DiskCache",
    "active_cache",
    "configure",
    "default_cache_dir",
    "engine_fingerprint",
    "isolated",
    "logical_key",
    "result_key",
    "strategy_fingerprint",
    "sweep_age_seconds",
]


def _metric(name: str, help_text: str) -> None:
    """Bump one counter in the process-global metrics registry.

    Pure in-memory (legal from any context); each process counts its
    own cache traffic, so the daemon's scrape reports the broker
    process while spawn workers keep their own tallies.
    """
    obsmetrics.registry().counter(name, help_text).inc()


CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_DISK_CACHE"
SWEEP_AGE_ENV = "REPRO_CACHE_SWEEP_AGE"

#: Bump when the entry schema or keying scheme changes; old entries are
#: then treated as misses instead of deserializing wrongly.
_FORMAT_VERSION = 2

_SCALAR_TYPES = (bool, int, float, str, type(None))

#: Writer temp files older than this are orphans of a killed process (a
#: live writer holds its temp file only between ``mkstemp`` and
#: ``os.replace``); younger ones may belong to a concurrent worker and
#: are left alone.  ``REPRO_CACHE_SWEEP_AGE`` overrides (seconds).
_TEMP_ORPHAN_AGE_SECONDS = 3600.0


def sweep_age_seconds() -> float:
    """Age (seconds) past which a writer temp file counts as orphaned.

    ``REPRO_CACHE_SWEEP_AGE`` overrides the one-hour default; values
    that do not parse as a non-negative number are ignored rather than
    turning the sweep into a weapon against live writers.
    """
    raw = os.environ.get(SWEEP_AGE_ENV, "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            value = -1.0
        if value >= 0:
            return value
    return _TEMP_ORPHAN_AGE_SECONDS


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/repro-arc`` (or the ``~/.cache`` fallback)."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-arc"


# --------------------------------------------------------------------- #
# Cache keys
# --------------------------------------------------------------------- #

#: Packages under ``src/repro`` whose source decides a simulation's
#: outcome for a given (config, trace, strategy): the timing engine, the
#: strategy implementations, and the trace analysis they consume.
#: Workloads and renderers are deliberately absent -- they only *produce*
#: traces, whose content is hashed separately.
_ENGINE_PACKAGES = ("core", "gpu", "trace")

_engine_fingerprint: "str | None" = None


def engine_fingerprint(root: "Path | None" = None) -> str:
    """Content hash of the simulation engine's own source code.

    Covers every ``.py`` file (path and bytes) of :data:`_ENGINE_PACKAGES`.
    The other key components identify *what* is simulated; this one
    identifies *which engine* simulated it, so editing ``simulate_kernel``
    or a strategy invalidates every previously cached result instead of
    letting a warm cache serve numbers the old engine computed.

    The process-wide value (``root=None``, hashing the installed
    ``repro`` package) is computed once and cached: source files do not
    change under a running process.  Tests pass an explicit *root* to
    fingerprint a synthetic tree.
    """
    global _engine_fingerprint
    if root is None and _engine_fingerprint is not None:
        return _engine_fingerprint
    base = Path(__file__).resolve().parents[1] if root is None else Path(root)
    digest = hashlib.sha256()
    digest.update(b"engine-src-v1\0")
    for package in _ENGINE_PACKAGES:
        for path in sorted((base / package).glob("*.py")):
            digest.update(f"{package}/{path.name}".encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    value = digest.hexdigest()
    if root is None:
        _engine_fingerprint = value
    return value


def strategy_fingerprint(strategy: AtomicStrategy) -> str:
    """Canonical identity of a freshly constructed strategy.

    Covers the class, the report name and every public attribute set by
    the constructor (balancing threshold, scheduler policy, buffer
    capacity fraction, ...).  Private per-launch state (underscored, set
    by ``begin_kernel``) is excluded: it does not exist at planning time
    and never affects which simulation the strategy performs.

    Only scalar parameters are supported; a strategy carrying a
    non-scalar public attribute raises :class:`TypeError` rather than
    being silently under-keyed, which would let two differently-behaving
    strategies collide on one cache entry.
    """
    params = {}
    for key, value in vars(strategy).items():
        if key.startswith("_") or key == "name":
            continue
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"cannot fingerprint {type(strategy).__name__}.{key}: "
                f"{type(value).__name__} parameters are not supported by "
                "the cache key scheme (extend strategy_fingerprint with a "
                "canonical encoding before caching this strategy)"
            )
        params[key] = value
    return json.dumps(
        {
            "class": type(strategy).__name__,
            "name": strategy.name,
            "params": params,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _key_payload(
    config: GPUConfig,
    trace: KernelTrace,
    strategy: AtomicStrategy,
    engine: "str | None",
) -> str:
    """Canonical JSON shared by :func:`result_key` and :func:`logical_key`."""
    fields = {
        "format": _FORMAT_VERSION,
        "gpu": config.fingerprint(),
        "trace": trace.fingerprint,
        "strategy": strategy_fingerprint(strategy),
    }
    if engine is not None:
        fields["engine"] = engine
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def result_key(
    config: GPUConfig, trace: KernelTrace, strategy: AtomicStrategy
) -> str:
    """Content hash identifying one (GPU, trace, strategy) simulation."""
    payload = _key_payload(config, trace, strategy, engine_fingerprint())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def logical_key(
    config: GPUConfig, trace: KernelTrace, strategy: AtomicStrategy
) -> str:
    """Engine-agnostic request identity: what is asked, not which engine.

    Two :func:`result_key` values that differ only because the engine
    source changed share one logical key.  The service layer uses it to
    find a *stale but semantically matching* result to serve with a
    warning when load-shedding would otherwise reject the request; it
    must never be used to address the cache itself.
    """
    payload = _key_payload(config, trace, strategy, None)
    return "logical-" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# The cache proper
# --------------------------------------------------------------------- #


@dataclass
class CacheStats:
    """Session counters for one :class:`DiskCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    quarantined: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0 when never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "quarantined": self.quarantined,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


class DiskCache:
    """Content-addressed store of :class:`SimResult` entries."""

    def __init__(self, root: "str | Path | None" = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or default_cache_dir()
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.quarantine_dir = self.root / "quarantine"
        self.stats = CacheStats()
        self.swept_temp_files = self._sweep_orphan_temps()

    def entry_path(self, key: str) -> Path:
        """Where *key*'s committed entry lives (whether or not present)."""
        return self.results_dir / key[:2] / f"{key}.json"

    def _sweep_orphan_temps(self) -> int:
        """Remove writer temp files abandoned by killed processes.

        Only files older than :func:`sweep_age_seconds` go: a younger
        temp file may be a concurrent worker's in-flight write, and
        sweeping it would fail that writer's ``os.replace``.
        """
        if not self.results_dir.is_dir():
            return 0
        cutoff = time.time() - sweep_age_seconds()
        removed = 0
        for tmp in self.results_dir.glob("*/.*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def _quarantine(self, path: Path) -> "Path | None":
        """Move a corrupt entry aside instead of destroying evidence.

        The entry lands under ``quarantine/<shard>/`` with its name (a
        ``.N`` suffix de-duplicates repeat offenders).  Returns the new
        location, or ``None`` when the move failed and the entry was
        evicted instead -- a bad entry must never be served twice.
        """
        target_dir = self.quarantine_dir / path.parent.name
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = target_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
            return target
        except OSError:
            path.unlink(missing_ok=True)
            return None

    def load(self, key: str) -> "SimResult | None":
        """Cached result for *key*, or ``None`` on miss/corruption.

        A malformed entry (truncated write, garbage bytes, foreign
        schema) is quarantined and counted as a miss: the caller falls
        back to re-simulating, never crashes, and the bad bytes stay
        available under ``quarantine/`` for diagnosis.
        """
        path = self.entry_path(key)
        try:
            text = path.read_text()
            payload = json.loads(text)
            if payload["format"] != _FORMAT_VERSION or payload["key"] != key:
                raise ValueError("stale or mismatched cache entry")
            result = SimResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            _metric("repro_cache_misses_total", "Disk cache misses")
            obslog.emit("cache.miss", key=key)
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            if path.exists():
                self._quarantine(path)
                self.stats.quarantined += 1
                _metric("repro_cache_quarantined_total",
                        "Corrupt entries quarantined")
                obslog.emit("cache.quarantine", key=key)
            _metric("repro_cache_misses_total", "Disk cache misses")
            obslog.emit("cache.miss", key=key, corrupt=True)
            return None
        self.stats.hits += 1
        self.stats.bytes_read += len(text)
        _metric("repro_cache_hits_total", "Disk cache hits")
        obslog.emit("cache.hit", key=key)
        return result

    def store(self, key: str, result: SimResult) -> None:
        """Atomically persist *result* under *key* (best-effort)."""
        path = self.entry_path(key)
        payload = json.dumps(
            {"format": _FORMAT_VERSION, "key": key,
             "result": result.to_dict()},
            sort_keys=True,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            # A read-only or full cache directory degrades to no caching.
            self.stats.errors += 1
            return
        self.stats.writes += 1
        self.stats.bytes_written += len(payload)
        _metric("repro_cache_writes_total", "Disk cache entry writes")
        obslog.emit("cache.write", key=key)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def entries(self) -> list[Path]:
        """Every committed entry file currently on disk."""
        if not self.results_dir.is_dir():
            return []
        return sorted(self.results_dir.glob("*/*.json"))

    def quarantined_entries(self) -> list[Path]:
        """Every quarantined (corrupt, preserved) entry on disk."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(
            path for path in self.quarantine_dir.glob("*/*")
            if path.is_file()
        )

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Quarantined files survive: they are preserved evidence of
        corruption, not cache state, and are only ever removed by hand.
        """
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# --------------------------------------------------------------------- #
# Process-wide active cache
# --------------------------------------------------------------------- #

_cache: "DiskCache | None" = None
_disabled_override: "bool | None" = None


def configure(
    root: "str | Path | None" = None, enabled: "bool | None" = None
) -> "DiskCache | None":
    """Reset the process-wide cache (overriding the environment).

    ``configure(root=...)`` points the cache somewhere else (tests use a
    temp dir); ``configure(enabled=False)`` turns the disk layer off and
    ``configure(enabled=True)`` forcibly re-enables it; ``configure()``
    returns to environment-driven defaults.  Returns the now-active
    cache, or ``None`` when disabled.
    """
    global _cache, _disabled_override
    _cache = DiskCache(root)
    _disabled_override = None if enabled is None else not enabled
    return active_cache()


def active_cache() -> "DiskCache | None":
    """The process-wide cache, or ``None`` when the disk layer is off."""
    global _cache
    if _disabled_override is not None:
        if _disabled_override:
            return None
    elif os.environ.get(NO_CACHE_ENV, "").strip() not in ("", "0"):
        return None
    if _cache is None:
        _cache = DiskCache()
    return _cache


@contextmanager
def isolated(root: "str | Path"):
    """Temporarily point the process-wide cache at a private *root*.

    Test fixtures use this to give one test throwaway disk-cache state:
    unlike clearing the active cache in place -- which would wipe a
    developer's real ``~/.cache/repro-arc`` -- the shared cache is left
    untouched and restored (object, session stats, enabled/disabled
    override) on exit.
    """
    global _cache, _disabled_override
    saved = (_cache, _disabled_override)
    _cache = DiskCache(root)
    try:
        yield _cache
    finally:
        _cache, _disabled_override = saved
