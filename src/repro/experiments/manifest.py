"""Resumable run manifests: a journal of completed experiment cells.

An interrupted figure sweep used to restart from zero.  The manifest
makes interruption cheap: as :func:`~repro.experiments.parallel.
run_matrix_parallel` completes each cell, it appends one JSONL record --
the cell's content-address key (:func:`~repro.experiments.diskcache.
result_key`) plus its human-readable identity -- to a journal named
after the *whole matrix* (a hash of the ordered cell-key list).  A rerun
of the same matrix finds the journal, loads each finished cell straight
from the disk cache, and dispatches only the remainder; a completed run
discards its journal.

Appends are atomic at the line level: each record is written with a
single ``os.write`` to an ``O_APPEND`` descriptor, so concurrent or
killed writers can at worst leave one torn *trailing* line, which
:meth:`RunManifest.load` skips (any malformed line is ignored rather
than poisoning the journal).  Resume correctness never depends on the
manifest alone -- a listed cell is only skipped when the disk cache
still holds its content-addressed entry, so a cleared or corrupted
cache simply degrades to re-simulation.

Manifests live under ``<cache root>/manifests/`` and exist only between
an interruption and the completing rerun.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["RunManifest", "run_key"]

_FORMAT_VERSION = 1


def run_key(cell_keys: "list[str]") -> str:
    """Stable identity of one matrix invocation.

    Hashes the *ordered* cell-key list: the same workloads, strategies,
    GPUs, traces and engine produce the same run key (cell keys are
    content addresses), while any change to the matrix or its inputs
    starts a fresh journal instead of mis-resuming an unrelated one.
    """
    digest = hashlib.sha256()
    digest.update(b"run-manifest-v1\0")
    for key in cell_keys:
        digest.update(key.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


class RunManifest:
    """Append-only JSONL journal of one run's completed cells."""

    def __init__(self, path: "str | Path"):
        self.path = Path(path)

    @classmethod
    def for_run(cls, root: "str | Path",
                cell_keys: "list[str]") -> "RunManifest":
        return cls(Path(root) / f"{run_key(cell_keys)}.jsonl")

    @classmethod
    def for_service(cls, root: "str | Path", session: str) -> "RunManifest":
        """Journal for one service-broker session.

        Unlike a matrix run, a daemon's request stream is open-ended, so
        the journal is named by a caller-chosen *session* id rather than
        a hash of the cell-key list.  The broker appends each completed
        request and, after a pool crash, fulfils any journalled key
        straight from the disk cache instead of re-executing it.
        """
        return cls(Path(root) / f"service-{session}.jsonl")

    def load(self) -> "dict[str, dict]":
        """Completed cell-key -> record; {} when absent.

        Malformed lines (a torn trailing append, editor damage) are
        skipped: losing a record merely re-simulates that cell.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        records: dict[str, dict] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("format") != _FORMAT_VERSION:
                    continue
                records[record["key"]] = record
            except (ValueError, KeyError, TypeError):
                continue
        return records

    def record(self, key: str, cell: dict) -> None:
        """Append one completed cell (best-effort, atomic line write)."""
        line = json.dumps(
            {"format": _FORMAT_VERSION, "key": key, "cell": cell},
            sort_keys=True, separators=(",", ":"),
        ) + "\n"
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            # An unwritable cache directory degrades to no resumability,
            # exactly like the disk cache it lives beside.
            return

    def discard(self) -> None:
        """Remove the journal (the run it tracked is complete)."""
        try:
            self.path.unlink()
        except OSError:
            pass
