"""Parallel experiment execution: fan independent cells across processes.

Every (workload, GPU, strategy) cell of an experiment matrix is an
independent simulation, which makes the figure harness embarrassingly
parallel.  :func:`run_matrix_parallel` plans the same cell list as the
serial :func:`~repro.experiments.runner.run_matrix`, spools each needed
trace to disk once, and dispatches the cells over a
:class:`~concurrent.futures.ProcessPoolExecutor` -- one future per
cell, driven by the fault-tolerance loop in
:mod:`repro.experiments.resilience` (bounded retries, per-cell
timeouts, pool-crash recovery, in-process serial fallback) and
journaled by :mod:`repro.experiments.manifest` so interrupted runs
resume instead of restarting.

Determinism is a hard requirement ("parallel and cached runs produce
bit-identical results to serial uncached runs"), so the design removes
every source of divergence:

* workers are started with the ``spawn`` context -- fresh interpreters
  with no inherited caches, monkeypatches or RNG state;
* workers never re-capture traces: the parent captures (or recalls) each
  trace exactly once and workers replay the identical ``.npz`` bytes;
* the simulator itself is deterministic, so cell results are independent
  of scheduling, worker count, completion order -- and of *recovery*:
  a retried, respawned or fallback-executed cell reruns the identical
  simulation (retry backoff jitter is itself derived from the cell key,
  not an RNG);
* results are reassembled in planning order, which equals serial order.

Workers share the parent's persistent disk cache (same directory), so a
parallel run both benefits from and contributes to warm-cache state;
entry writes are atomic, making concurrent writers safe.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path

from repro import obslog
from repro.experiments import diskcache, faults, iosan, runner
from repro.obs import tracing
from repro.experiments.manifest import RunManifest
from repro.experiments.resilience import (
    CellReport,
    RetryPolicy,
    RunReport,
    run_resilient,
)
from repro.experiments.runner import Cell, run_matrix
from repro.gpu import GPUConfig, SimResult
from repro.trace.events import KernelTrace
from repro.trace.io import load_trace, save_trace

__all__ = [
    "JOBS_ENV",
    "CellSpec",
    "default_jobs",
    "plan_cells",
    "run_matrix_parallel",
]

JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class CellSpec:
    """One cell of work, self-contained enough to ship to a worker.

    Carries the full :class:`GPUConfig` (not just a preset name) so cells
    over ablated configs parallelize identically to preset ones.
    """

    workload: str
    gpu: GPUConfig
    strategy: str

    @property
    def cell_id(self) -> str:
        return faults.cell_id(self.workload, self.gpu.name, self.strategy)


def default_jobs(fallback: "int | None" = None) -> int:
    """Worker count when none is requested.

    ``REPRO_JOBS`` wins when set to a positive integer (other values are
    ignored); otherwise *fallback* when given, otherwise
    ``os.cpu_count``.
    """
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value > 0:
            return value
    if fallback is not None:
        return fallback
    return max(1, os.cpu_count() or 1)


def plan_cells(
    workloads: "list[str]",
    strategies: "list[str]",
    gpus: "list[str | GPUConfig]",
    skip_inapplicable: bool = True,
) -> list[CellSpec]:
    """The exact cell sequence :func:`run_matrix` would simulate."""
    for strategy in strategies:
        runner.make_strategy(strategy)  # fail fast on unknown names
    specs = []
    for gpu in gpus:
        config = runner._gpu_by_name(gpu)
        for workload in workloads:
            for strategy in strategies:
                if skip_inapplicable and not runner.strategy_applicable(
                    workload, strategy
                ):
                    continue
                specs.append(CellSpec(workload, config, strategy))
    return specs


# --------------------------------------------------------------------- #
# Worker side.  Module-level state survives across tasks within one
# worker process (spawn re-imports this module there); traces are loaded
# from the parent's spool at most once per (worker, workload).
#
# The service broker (repro.service.broker) reuses this exact worker
# surface -- _worker_init as its pool initializer, _run_spec as its task,
# _fallback_spec for in-process degradation -- so daemon requests and
# matrix cells execute through one code path and stay bit-identical.
# --------------------------------------------------------------------- #

_worker_trace_dir: "Path | None" = None
_worker_traces: dict[str, KernelTrace] = {}


def _worker_init(trace_dir: str, cache_root: "str | None",
                 cache_enabled: bool) -> None:
    global _worker_trace_dir
    _worker_trace_dir = Path(trace_dir)
    _worker_traces.clear()
    iosan.maybe_install()
    faults.mark_worker()
    if cache_enabled and cache_root is not None:
        diskcache.configure(root=cache_root, enabled=True)
    else:
        diskcache.configure(enabled=False)


def _worker_trace(workload: str) -> KernelTrace:
    if workload not in _worker_traces:
        if _worker_trace_dir is None:
            raise RuntimeError(
                f"worker asked for the {workload!r} trace before "
                "_worker_init ran: either this function was called "
                "outside run_matrix_parallel, or the worker died between "
                "initialization and its first task and was respawned "
                "without state"
            )
        path = _worker_trace_dir / f"{workload}.npz"
        if not path.exists():
            raise FileNotFoundError(
                f"spooled trace for workload {workload!r} missing at "
                f"{path}: the parent's spool directory was cleaned up "
                "(interrupted run?) or the workload was never spooled"
            )
        _worker_traces[workload] = load_trace(path)
    return _worker_traces[workload]


def _run_spec(spec: CellSpec, attempt: int) -> SimResult:
    """Worker task: simulate one cell (with fault hooks around it).

    The whole task is wrapped in a ``cell.execute`` span parented on
    the session root context carried through ``REPRO_TRACE`` (declared
    in the spawn-carry set; per-request context cannot reach workers --
    they snapshot the environment at pool construction).  The stitcher
    correlates worker spans with the broker's per-attempt spans by
    ``(cell, attempt)``.  With no obslog sink armed the span emission
    is a no-op, so the fault/simulate path stays byte-identical.
    """
    cell = spec.cell_id
    with tracing.span("cell.execute", parent=tracing.carried(),
                      role="worker", cell=cell, attempt=attempt):
        faults.on_attempt(cell, attempt)
        trace = _worker_trace(spec.workload)
        strategy = runner.make_strategy(spec.strategy)
        result = runner.simulate_cell(trace, spec.gpu, strategy)
        _maybe_corrupt_entry(spec, trace, attempt)
    return result


def _maybe_corrupt_entry(spec: CellSpec, trace: KernelTrace,
                         attempt: int) -> None:
    """Apply a planned ``corrupt-cache`` fault to this cell's entry."""
    if not faults.planned_corruption(spec.cell_id, attempt):
        return
    cache = diskcache.active_cache()
    if cache is None:
        return
    key = diskcache.result_key(
        spec.gpu, trace, runner.make_strategy(spec.strategy)
    )
    faults.corrupt_entry(cache.entry_path(key))


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


def _spool_traces(workloads: "list[str]", directory: Path) -> None:
    """Write each workload's (memoized) trace once for workers to replay."""
    for workload in dict.fromkeys(workloads):
        save_trace(runner.get_trace(workload), directory / f"{workload}.npz")


def _fallback_spec(spec: CellSpec, attempt: int) -> SimResult:
    """In-process serial execution for a cell that exhausted its pool
    retries (graceful degradation; crash/hang faults never fire here)."""
    faults.on_attempt(spec.cell_id, attempt)
    trace = runner.get_trace(spec.workload)
    strategy = runner.make_strategy(spec.strategy)
    return runner.simulate_cell(trace, spec.gpu, strategy)


def run_matrix_parallel(
    workloads: "list[str]",
    strategies: "list[str]",
    gpus: "list[str | GPUConfig]",
    jobs: "int | None" = None,
    skip_inapplicable: bool = True,
    policy: "RetryPolicy | None" = None,
    report: "RunReport | None" = None,
    resume: bool = True,
) -> list[Cell]:
    """Parallel, fault-tolerant, bit-identical drop-in for
    :func:`run_matrix`.

    Dispatches the matrix's cells across *jobs* worker processes
    (default: ``REPRO_JOBS`` or all CPUs) under *policy* (default:
    :meth:`RetryPolicy.from_env`): failed cells are retried with
    deterministic backoff, hung cells time out, a crashed pool is
    respawned with only unfinished cells requeued, and cells that
    exhaust retries degrade to in-process serial execution.  Completed
    cells are journaled (under the active disk cache root) so an
    interrupted run resumes by re-simulating only the remainder; pass
    ``resume=False`` to ignore and overwrite any existing journal.

    Pass a :class:`RunReport` as *report* to receive per-cell attempt
    histories and recovery counters.  Results are returned in planning
    (== serial) order and seeded into the parent's in-memory cache as
    they arrive, so follow-up serial calls (``speedups_over_baseline``,
    figure assembly) reuse them without re-simulating -- and so a
    Ctrl-C loses nothing already computed.  With ``jobs=1`` this simply
    delegates to the serial :func:`run_matrix`.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1:
        return run_matrix(workloads, strategies, gpus,
                          skip_inapplicable=skip_inapplicable)
    policy = RetryPolicy.from_env() if policy is None else policy
    report = RunReport() if report is None else report

    specs = plan_cells(workloads, strategies, gpus,
                       skip_inapplicable=skip_inapplicable)
    if not specs:
        return []

    cache = diskcache.active_cache()
    cache_root = str(cache.root) if cache is not None else None

    # Content-address every cell up front (traces are memoized in the
    # parent): the same keys address the disk cache, the run manifest
    # and the per-cell reports.
    keys = [
        diskcache.result_key(
            spec.gpu,
            runner.get_trace(spec.workload),
            runner.make_strategy(spec.strategy),
        )
        for spec in specs
    ]
    report.cells = [
        CellReport(cell=spec.cell_id, key=key)
        for spec, key in zip(specs, keys)
    ]
    results: dict[int, SimResult] = {}

    obslog.emit("run.start", cells=len(specs), jobs=jobs,
                workloads=sorted(set(workloads)),
                strategies=list(strategies),
                gpus=[runner._gpu_by_name(gpu).name for gpu in gpus],
                cache_root=cache_root, resume=resume)

    manifest = None
    if cache is not None:
        manifest = RunManifest.for_run(cache.root / "manifests", keys)
        if resume:
            finished = manifest.load()
            for index, key in enumerate(keys):
                if key not in finished:
                    continue
                cached = cache.load(key)
                if cached is not None:
                    results[index] = cached
                    report.cells[index].source = "manifest"
                    obslog.emit("cell.skip", cell=specs[index].cell_id,
                                reason="manifest-resume", key=key)

    def on_result(index: int, result: SimResult) -> None:
        spec = specs[index]
        results[index] = result
        runner.seed_result(spec.workload, spec.gpu, spec.strategy, result)
        if manifest is not None:
            manifest.record(keys[index], {
                "workload": spec.workload,
                "gpu": spec.gpu.name,
                "strategy": spec.strategy,
            })
        obslog.emit("cell.finish", cell=spec.cell_id, key=keys[index],
                    source=report.cells[index].source,
                    total_cycles=result.total_cycles)
        faults.on_completed(spec.cell_id)

    pending = [i for i in range(len(specs)) if i not in results]
    if pending:
        with tempfile.TemporaryDirectory(prefix="repro-traces-") as spool:
            _spool_traces([specs[i].workload for i in pending], Path(spool))

            def pool_factory():
                return ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)),
                    mp_context=get_context("spawn"),
                    initializer=_worker_init,
                    initargs=(spool, cache_root, cache_root is not None),
                )

            run_resilient(
                pending,
                pool_factory=pool_factory,
                submit=lambda pool, index, attempt: pool.submit(
                    _run_spec, specs[index], attempt
                ),
                fallback=lambda index, attempt: _fallback_spec(
                    specs[index], attempt
                ),
                policy=policy,
                report=report,
                on_result=on_result,
            )

    if manifest is not None:
        manifest.discard()

    obslog.emit("run.finish", cells=len(specs),
                simulated=report.simulated, resumed=report.resumed,
                fallbacks=report.fallbacks, retries=report.retries,
                timeouts=report.timeouts, crashes=report.crashes,
                pool_restarts=report.pool_restarts)

    cells = []
    for index, spec in enumerate(specs):
        result = results[index]
        runner.seed_result(spec.workload, spec.gpu, spec.strategy, result)
        cells.append(
            Cell(workload=spec.workload, gpu=spec.gpu.name,
                 strategy=spec.strategy, result=result)
        )
    return cells
