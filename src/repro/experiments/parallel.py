"""Parallel experiment execution: fan independent cells across processes.

Every (workload, GPU, strategy) cell of an experiment matrix is an
independent simulation, which makes the figure harness embarrassingly
parallel.  :func:`run_matrix_parallel` plans the same cell list as the
serial :func:`~repro.experiments.runner.run_matrix`, spools each needed
trace to disk once, and dispatches the cells over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism is a hard requirement ("parallel and cached runs produce
bit-identical results to serial uncached runs"), so the design removes
every source of divergence:

* workers are started with the ``spawn`` context -- fresh interpreters
  with no inherited caches, monkeypatches or RNG state;
* workers never re-capture traces: the parent captures (or recalls) each
  trace exactly once and workers replay the identical ``.npz`` bytes;
* the simulator itself is deterministic, so cell results are independent
  of scheduling, worker count and completion order;
* results are reassembled in planning order, which equals serial order.

Workers share the parent's persistent disk cache (same directory), so a
parallel run both benefits from and contributes to warm-cache state;
entry writes are atomic, making concurrent writers safe.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path

from repro.experiments import diskcache, runner
from repro.experiments.runner import Cell, run_matrix
from repro.gpu import GPUConfig, SimResult
from repro.trace.events import KernelTrace
from repro.trace.io import load_trace, save_trace

__all__ = ["CellSpec", "default_jobs", "plan_cells", "run_matrix_parallel"]


@dataclass(frozen=True)
class CellSpec:
    """One cell of work, self-contained enough to ship to a worker.

    Carries the full :class:`GPUConfig` (not just a preset name) so cells
    over ablated configs parallelize identically to preset ones.
    """

    workload: str
    gpu: GPUConfig
    strategy: str


def default_jobs() -> int:
    """Worker count when none is requested (``os.cpu_count``, min 1)."""
    return max(1, os.cpu_count() or 1)


def plan_cells(
    workloads: "list[str]",
    strategies: "list[str]",
    gpus: "list[str | GPUConfig]",
    skip_inapplicable: bool = True,
) -> list[CellSpec]:
    """The exact cell sequence :func:`run_matrix` would simulate."""
    for strategy in strategies:
        runner.make_strategy(strategy)  # fail fast on unknown names
    specs = []
    for gpu in gpus:
        config = runner._gpu_by_name(gpu)
        for workload in workloads:
            for strategy in strategies:
                if skip_inapplicable and not runner.strategy_applicable(
                    workload, strategy
                ):
                    continue
                specs.append(CellSpec(workload, config, strategy))
    return specs


# --------------------------------------------------------------------- #
# Worker side.  Module-level state survives across tasks within one
# worker process (spawn re-imports this module there); traces are loaded
# from the parent's spool at most once per (worker, workload).
# --------------------------------------------------------------------- #

_worker_trace_dir: "Path | None" = None
_worker_traces: dict[str, KernelTrace] = {}


def _worker_init(trace_dir: str, cache_root: "str | None",
                 cache_enabled: bool) -> None:
    global _worker_trace_dir
    _worker_trace_dir = Path(trace_dir)
    _worker_traces.clear()
    if cache_enabled and cache_root is not None:
        diskcache.configure(root=cache_root, enabled=True)
    else:
        diskcache.configure(enabled=False)


def _worker_trace(workload: str) -> KernelTrace:
    if workload not in _worker_traces:
        if _worker_trace_dir is None:
            raise RuntimeError("worker used outside run_matrix_parallel")
        _worker_traces[workload] = load_trace(
            _worker_trace_dir / f"{workload}.npz"
        )
    return _worker_traces[workload]


def _simulate_spec(spec: CellSpec) -> SimResult:
    trace = _worker_trace(spec.workload)
    strategy = runner.make_strategy(spec.strategy)
    return runner.simulate_cell(trace, spec.gpu, strategy)


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


def _spool_traces(workloads: "list[str]", directory: Path) -> None:
    """Write each workload's (memoized) trace once for workers to replay."""
    for workload in dict.fromkeys(workloads):
        save_trace(runner.get_trace(workload), directory / f"{workload}.npz")


def run_matrix_parallel(
    workloads: "list[str]",
    strategies: "list[str]",
    gpus: "list[str | GPUConfig]",
    jobs: "int | None" = None,
    skip_inapplicable: bool = True,
) -> list[Cell]:
    """Parallel, bit-identical drop-in for :func:`run_matrix`.

    Dispatches the matrix's cells across *jobs* worker processes
    (default: all CPUs) and returns the cells in serial order.  Results
    are also seeded into the parent's in-memory cache, so follow-up
    serial calls (``speedups_over_baseline``, figure assembly) reuse them
    without re-simulating.  With ``jobs=1`` this simply delegates to the
    serial :func:`run_matrix`.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if jobs == 1:
        return run_matrix(workloads, strategies, gpus,
                          skip_inapplicable=skip_inapplicable)

    specs = plan_cells(workloads, strategies, gpus,
                       skip_inapplicable=skip_inapplicable)
    if not specs:
        return []

    cache = diskcache.active_cache()
    cache_root = str(cache.root) if cache is not None else None

    with tempfile.TemporaryDirectory(prefix="repro-traces-") as spool:
        _spool_traces([spec.workload for spec in specs], Path(spool))
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(spool, cache_root, cache_root is not None),
        ) as pool:
            results = list(pool.map(_simulate_spec, specs))

    cells = []
    for spec, result in zip(specs, results):
        runner.seed_result(spec.workload, spec.gpu, spec.strategy, result)
        cells.append(
            Cell(workload=spec.workload, gpu=spec.gpu.name,
                 strategy=spec.strategy, result=result)
        )
    return cells
