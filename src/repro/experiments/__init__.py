"""Experiment orchestration: cached workload x strategy x GPU matrices."""

from repro.experiments.report import format_speedup_matrix, format_table
from repro.experiments.sweeps import (
    SweepPoint,
    characterization_sweep,
    make_character_trace,
)
from repro.experiments.runner import (
    STRATEGY_FACTORIES,
    SWEEP_THRESHOLDS,
    Cell,
    arithmetic_mean,
    best_sw_result,
    best_threshold,
    clear_caches,
    get_result,
    get_trace,
    get_workload,
    run_matrix,
    speedups_over_baseline,
    strategy_applicable,
)

__all__ = [
    "format_speedup_matrix",
    "SweepPoint",
    "characterization_sweep",
    "make_character_trace",
    "format_table",
    "STRATEGY_FACTORIES",
    "SWEEP_THRESHOLDS",
    "Cell",
    "arithmetic_mean",
    "best_sw_result",
    "best_threshold",
    "clear_caches",
    "get_result",
    "get_trace",
    "get_workload",
    "run_matrix",
    "speedups_over_baseline",
    "strategy_applicable",
]
