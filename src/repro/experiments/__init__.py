"""Experiment orchestration: cached workload x strategy x GPU matrices."""

from repro.experiments.diskcache import (
    CacheStats,
    DiskCache,
    active_cache,
    configure as configure_disk_cache,
    result_key,
    strategy_fingerprint,
)
from repro.experiments.faults import FaultPlan, FaultSpec, InjectedFault
from repro.experiments.manifest import RunManifest
from repro.experiments.parallel import (
    CellSpec,
    default_jobs,
    plan_cells,
    run_matrix_parallel,
)
from repro.experiments.report import (
    format_cache_stats,
    format_run_report,
    format_speedup_matrix,
    format_table,
)
from repro.experiments.resilience import (
    AttemptRecord,
    CellExecutionError,
    CellReport,
    RetryPolicy,
    RunReport,
)
from repro.experiments.sweeps import (
    SweepPoint,
    characterization_sweep,
    make_character_trace,
)
from repro.experiments.runner import (
    STRATEGY_FACTORIES,
    SWEEP_THRESHOLDS,
    Cell,
    arithmetic_mean,
    best_sw_result,
    best_threshold,
    clear_caches,
    get_result,
    get_trace,
    get_workload,
    make_strategy,
    run_matrix,
    seed_result,
    simulate_cell,
    speedups_over_baseline,
    strategy_applicable,
)

__all__ = [
    "CacheStats",
    "DiskCache",
    "active_cache",
    "configure_disk_cache",
    "result_key",
    "strategy_fingerprint",
    "AttemptRecord",
    "CellExecutionError",
    "CellReport",
    "CellSpec",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "RunManifest",
    "RunReport",
    "default_jobs",
    "plan_cells",
    "run_matrix_parallel",
    "format_cache_stats",
    "format_run_report",
    "format_speedup_matrix",
    "SweepPoint",
    "characterization_sweep",
    "make_character_trace",
    "format_table",
    "STRATEGY_FACTORIES",
    "SWEEP_THRESHOLDS",
    "Cell",
    "arithmetic_mean",
    "best_sw_result",
    "best_threshold",
    "clear_caches",
    "get_result",
    "get_trace",
    "get_workload",
    "make_strategy",
    "run_matrix",
    "seed_result",
    "simulate_cell",
    "speedups_over_baseline",
    "strategy_applicable",
]
