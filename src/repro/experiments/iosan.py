"""Runtime I/O sanitizer: record what processes *actually* do to shared
files, so the static process-safety model can be cross-checked.

ARC009/ARC012 (:mod:`repro.lint.rules.concurrency`) reason about an
escape analysis' *model* of which writes reach shared resources and by
which protocol.  Static models drift; this module is the runtime ground
truth that keeps ours honest, the same way ARC007's heap-tie assert
backs its static rule.  With ``REPRO_SANITIZE=1`` and a log path in
``REPRO_IOSAN_LOG``, :func:`maybe_install` interposes on the handful of
primitives every repro file write goes through:

* ``builtins.open`` / ``io.open`` (``pathlib.Path`` I/O lands here too),
  recording path and mode;
* ``os.open``, recording path and flags (the ``O_APPEND`` protocol);
* ``os.replace`` / ``os.rename``, recording source and destination (the
  atomic-rename protocol commit point).

Each record is one JSONL line appended with a single ``O_APPEND``
``write`` through the *saved* primitives -- the shim itself follows the
protocol discipline it audits, and cannot recurse into itself.  Both
env vars travel across ``spawn`` (they are in the declared carry set),
and :func:`maybe_install` runs in the pool initializer, so parent and
worker accesses land in one stream tagged by pid.

:func:`observed_protocols` then folds a recorded stream into the same
``(resource class, protocol)`` pairs the static
:class:`~repro.lint.dataflow.resources.ResourceModel` produces.  The
chaos-suite cross-check asserts observed pairs are a subset of the
static model: an unmodeled writer or protocol shows up as a test
failure, not as silent analysis unsoundness.  The protocol/class
vocabulary is deliberately duplicated from the lint layer (experiments
must not import ``repro.lint``); the test suite pins the two sets of
string constants equal.
"""

from __future__ import annotations

import builtins
import io
import json
import os
from pathlib import Path

__all__ = [
    "IOSAN_LOG_ENV",
    "SANITIZE_ENV",
    "classify_path",
    "enabled",
    "installed",
    "maybe_install",
    "observed_protocols",
    "read_log",
    "uninstall",
]

SANITIZE_ENV = "REPRO_SANITIZE"
IOSAN_LOG_ENV = "REPRO_IOSAN_LOG"

# Protocol names, kept identical to repro.lint.dataflow.resources (the
# cross-check test asserts this, so a rename there cannot desync us).
PROTOCOL_ATOMIC_RENAME = "atomic-rename"
PROTOCOL_APPEND = "o-append"
PROTOCOL_TEMP = "temp-file"
PROTOCOL_RAW_WRITE = "raw-write"
PROTOCOL_BUFFERED_APPEND = "buffered-append"

_real_open = builtins.open
_real_io_open = io.open
_real_os_open = os.open
_real_os_replace = os.replace
_real_os_rename = os.rename

_installed = False


def enabled() -> bool:
    """Whether the shim should interpose in this process."""
    sanitize = os.environ.get(SANITIZE_ENV, "").strip()
    if sanitize in ("", "0"):
        return False
    return bool(os.environ.get(IOSAN_LOG_ENV, "").strip())


def installed() -> bool:
    return _installed


def _record(op: str, path, **fields) -> None:
    """Append one observation line via the *saved* primitives only."""
    log_path = os.environ.get(IOSAN_LOG_ENV, "").strip()
    if not log_path:
        return
    record = {"op": op, "path": str(path), "pid": os.getpid()}
    record.update(fields)
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        fd = _real_os_open(
            log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    except OSError:
        return  # observation must never take down the observed run


def _traced_open(file, mode="r", *args, **kwargs):
    if isinstance(file, (str, os.PathLike)):
        _record("open", file, mode=mode)
    return _real_open(file, mode, *args, **kwargs)


def _traced_io_open(file, mode="r", *args, **kwargs):
    if isinstance(file, (str, os.PathLike)):
        _record("open", file, mode=mode)
    return _real_io_open(file, mode, *args, **kwargs)


def _traced_os_open(path, flags, *args, **kwargs):
    if isinstance(path, (str, os.PathLike)):
        _record("os.open", path, flags=int(flags))
    return _real_os_open(path, flags, *args, **kwargs)


def _traced_os_replace(src, dst, **kwargs):
    _record("replace", dst, src=str(src))
    return _real_os_replace(src, dst, **kwargs)


def _traced_os_rename(src, dst, **kwargs):
    _record("rename", dst, src=str(src))
    return _real_os_rename(src, dst, **kwargs)


def maybe_install() -> bool:
    """Interpose when :func:`enabled`; True when the shim is active.

    Idempotent, and called from both the parent (test harness) and the
    worker initializer -- ``spawn`` workers re-import this module with
    the pristine primitives, so each process installs its own shim.
    """
    global _installed
    if not enabled():
        return _installed
    if _installed:
        return True
    builtins.open = _traced_open
    io.open = _traced_io_open
    os.open = _traced_os_open
    os.replace = _traced_os_replace
    os.rename = _traced_os_rename
    _installed = True
    return True


def uninstall() -> None:
    """Restore the pristine primitives (parent-side test cleanup)."""
    global _installed
    builtins.open = _real_open
    io.open = _real_io_open
    os.open = _real_os_open
    os.replace = _real_os_replace
    os.rename = _real_os_rename
    _installed = False


# --------------------------------------------------------------------- #
# Reading a recorded stream back into (resource, protocol) observations
# --------------------------------------------------------------------- #


def read_log(path) -> list[dict]:
    """Parse a recorded JSONL stream (torn lines skipped, like obslog)."""
    events = []
    try:
        handle = _real_open(path, encoding="utf-8")
    except (FileNotFoundError, OSError):
        return events
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
    return events


def _is_temp_name(name: str) -> bool:
    return name.startswith(".") and name.endswith(".tmp")


def classify_path(
    path: str, cache_root, obslog_path: "str | None"
) -> "str | None":
    """Resource class of *path*, mirroring the static pattern table.

    Writer temp files (``.<prefix>-*.tmp``) classify as ``None``: they
    are the private half of an atomic-rename write, not shared state.
    """
    resolved = Path(path)
    if _is_temp_name(resolved.name):
        return None
    if obslog_path and str(resolved) == str(Path(obslog_path)):
        return "obslog"
    if cache_root is not None:
        root = Path(cache_root)
        try:
            relative = resolved.relative_to(root)
        except ValueError:
            return None
        parts = relative.parts
        if not parts:
            return None
        if parts[0] == "results":
            return "cache-results"
        if parts[0] == "quarantine":
            return "cache-quarantine"
        if parts[0] == "manifests":
            return "manifest"
    return None


def _protocol_of(event: dict) -> "str | None":
    """Write protocol one recorded event used (``None`` for reads)."""
    op = event.get("op")
    if op in ("replace", "rename"):
        return PROTOCOL_ATOMIC_RENAME
    if op == "os.open":
        flags = int(event.get("flags", 0))
        if flags & os.O_APPEND:
            return PROTOCOL_APPEND
        if flags & (os.O_WRONLY | os.O_RDWR | os.O_CREAT | os.O_TRUNC):
            return PROTOCOL_RAW_WRITE
        return None
    if op == "open":
        mode = str(event.get("mode", "r"))
        if any(flag in mode for flag in ("w", "x", "+")):
            return PROTOCOL_RAW_WRITE
        if "a" in mode:
            return PROTOCOL_BUFFERED_APPEND
        return None
    return None


def observed_protocols(
    events: list[dict], cache_root, obslog_path: "str | None" = None
) -> set[tuple[str, str]]:
    """(resource class, write protocol) pairs a recorded stream shows.

    ``mkstemp``'s ``os.open`` of a dot-tmp file classifies to no
    resource and drops out, same as the static model's ``temp-file``
    exclusion; the commit is seen at its ``os.replace``.
    """
    observed: set[tuple[str, str]] = set()
    for event in events:
        protocol = _protocol_of(event)
        if protocol is None:
            continue
        resource = classify_path(
            str(event.get("path", "")), cache_root, obslog_path
        )
        if resource is None:
            continue
        observed.add((resource, protocol))
    return observed
