"""Characterization sweeps: where does ARC win, as a function of the
workload's atomic character?

The paper establishes that ARC's benefit is governed by two trace
properties -- intra-warp locality (Observation 1) and the active-thread
distribution (Observation 2) -- plus the GPU's SM:ROP ratio.  This module
sweeps synthetic traces over those axes and reports the speedup surface,
so a prospective adopter can locate *their* workload on the map before
integrating ARC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arc_hw import ArcHW
from repro.core.arc_sw import ArcSWButterfly, ArcSWSerialized
from repro.core.baseline import BaselineAtomic
from repro.gpu.config import GPUConfig
from repro.gpu.engine import simulate_kernel
from repro.gpu.warp import WARP_SIZE
from repro.trace.events import INACTIVE, KernelTrace

__all__ = ["SweepPoint", "characterization_sweep", "make_character_trace"]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the characterization surface."""

    mean_active: float
    groups_per_warp: int
    arc_hw_speedup: float
    arc_sw_speedup: float


def make_character_trace(
    mean_active: float,
    groups_per_warp: int,
    n_batches: int = 20_000,
    n_slots: int = 1024,
    num_params: int = 9,
    compute_cycles: float = 120.0,
    seed: int = 0,
) -> KernelTrace:
    """Synthetic trace with controlled Observation-1/2 characteristics.

    ``groups_per_warp = 1`` gives the fully-coalesced rendering regime;
    larger values scatter each warp's lanes over more addresses (the
    NvDiffRec and, in the limit, the pagerank regime).
    """
    if not 0.0 < mean_active <= WARP_SIZE:
        raise ValueError("mean_active must be in (0, 32]")
    if groups_per_warp < 1:
        raise ValueError("groups_per_warp must be >= 1")
    rng = np.random.default_rng(seed)
    active = rng.random((n_batches, WARP_SIZE)) < mean_active / WARP_SIZE
    group_slots = rng.integers(
        0, n_slots, size=(n_batches, groups_per_warp)
    )
    lane_group = rng.integers(
        0, groups_per_warp, size=(n_batches, WARP_SIZE)
    )
    slots = np.take_along_axis(group_slots, lane_group, axis=1)
    return KernelTrace(
        lane_slots=np.where(active, slots, INACTIVE),
        num_params=num_params,
        n_slots=n_slots,
        warp_id=np.arange(n_batches) % max(n_batches // 16, 1),
        compute_cycles=compute_cycles,
        bfly_eligible=groups_per_warp == 1,
        name=f"char-a{mean_active:g}-g{groups_per_warp}",
    )


def characterization_sweep(
    config: GPUConfig,
    active_levels: tuple = (4, 8, 16, 24, 31),
    group_levels: tuple = (1, 2, 4, 8),
    n_batches: int = 20_000,
    balance_threshold: int = 8,
    seed: int = 0,
) -> list[SweepPoint]:
    """Speedup surface over (mean active lanes) x (groups per warp)."""
    points = []
    for groups in group_levels:
        for mean_active in active_levels:
            trace = make_character_trace(
                mean_active, groups, n_batches=n_batches, seed=seed
            )
            baseline = simulate_kernel(trace, config, BaselineAtomic())
            arc_hw = simulate_kernel(trace, config, ArcHW())
            sw_factory = (
                ArcSWButterfly if trace.bfly_eligible else ArcSWSerialized
            )
            arc_sw = simulate_kernel(
                trace, config, sw_factory(balance_threshold)
            )
            points.append(
                SweepPoint(
                    mean_active=float(mean_active),
                    groups_per_warp=int(groups),
                    arc_hw_speedup=arc_hw.speedup_over(baseline),
                    arc_sw_speedup=arc_sw.speedup_over(baseline),
                )
            )
    return points
