"""Plain-text rendering of experiment tables.

The library has no plotting dependency; figures are reported as aligned
text tables (the benchmark harness also persists them as JSON).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.experiments.diskcache import CacheStats
    from repro.experiments.resilience import RunReport

__all__ = [
    "format_table",
    "format_speedup_matrix",
    "format_cache_stats",
    "format_run_report",
]


def format_table(header: list[str], rows: list[list], title: str = "") -> str:
    """Align *rows* under *header*; floats are rendered with 2 decimals."""
    if any(len(row) != len(header) for row in rows):
        raise ValueError("every row must match the header width")
    formatted = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell)
         for cell in row]
        for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in formatted))
        if formatted
        else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cache_stats(stats: "CacheStats", title: str = "") -> str:
    """Render one session's disk-cache counters (hits/misses/bytes).

    The benchmark harness prints this after a run so warm-start behaviour
    is visible: a fully warm session shows zero misses and zero writes.
    """
    rows = [
        ["hits", stats.hits],
        ["misses", stats.misses],
        ["hit rate", f"{stats.hit_rate:.1%}"],
        ["writes", stats.writes],
        ["corrupt/failed", stats.errors],
        ["quarantined", stats.quarantined],
        ["bytes read", f"{stats.bytes_read:,}"],
        ["bytes written", f"{stats.bytes_written:,}"],
    ]
    return format_table(
        ["counter", "value"], rows, title=title or "disk cache"
    )


def format_run_report(report: "RunReport", title: str = "") -> str:
    """Render a fault-tolerant run's recovery history.

    One summary line always; per-cell attempt detail only for cells that
    needed recovery (retries, timeouts, crashes, fallbacks) -- a clean
    run prints a single line, a chaotic one shows exactly where the
    time went.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(report.summary_line())
    for cell in report.cells:
        eventful = (
            cell.source == "serial-fallback" or len(cell.attempts) > 1
        )
        if not eventful:
            continue
        history = ", ".join(
            f"#{record.attempt} {record.outcome} "
            f"({record.duration:.2f}s)"
            + (f" [{record.error}]" if record.error else "")
            for record in cell.attempts
        )
        lines.append(f"  {cell.cell} [{cell.source}]: {history}")
    return "\n".join(lines)


def format_speedup_matrix(
    speedups: dict, title: str = ""
) -> str:
    """Render a ``{(workload, gpu, strategy): speedup}`` mapping.

    Rows are workloads, columns are (gpu, strategy) pairs in first-seen
    order -- the layout of the paper's grouped bar charts.
    """
    workloads: list[str] = []
    columns: list[tuple[str, str]] = []
    for workload, gpu, strategy in speedups:
        if workload not in workloads:
            workloads.append(workload)
        if (gpu, strategy) not in columns:
            columns.append((gpu, strategy))
    header = ["workload"] + [f"{strategy}@{gpu}" for gpu, strategy in columns]
    rows = []
    for workload in workloads:
        row: list = [workload]
        for gpu, strategy in columns:
            value = speedups.get((workload, gpu, strategy))
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(header, rows, title=title)
