"""Parametric synthetic trace generators.

These produce :class:`~repro.trace.events.KernelTrace` objects with
controllable intra-warp locality (paper Observation 1) and active-lane
distributions (Observation 2).  They are the workhorse of unit and property
tests, and of microbenchmarks that sweep atomic characteristics without
running a renderer.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.trace.events import INACTIVE, KernelTrace

__all__ = [
    "coalesced_trace",
    "scattered_trace",
    "mixed_locality_trace",
    "hotspot_trace",
]


def _active_mask(
    rng: np.random.Generator, n_batches: int, mean_active: float
) -> np.ndarray:
    """(n, 32) boolean lane-activity with roughly *mean_active* lanes set."""
    probability = np.clip(mean_active / WARP_SIZE, 0.0, 1.0)
    return rng.random((n_batches, WARP_SIZE)) < probability


def coalesced_trace(
    n_batches: int = 1000,
    n_slots: int = 256,
    num_params: int = 10,
    mean_active: float = 24.0,
    seed: int = 0,
    name: str = "synthetic-coalesced",
    with_values: bool = False,
) -> KernelTrace:
    """High intra-warp locality: every active lane updates one common slot.

    This is the differentiable-rendering regime: the paper measures >99% of
    warps having all active threads update the same memory location.
    """
    rng = np.random.default_rng(seed)
    active = _active_mask(rng, n_batches, mean_active)
    slot_of_batch = rng.integers(0, n_slots, size=n_batches)
    lane_slots = np.where(active, slot_of_batch[:, None], INACTIVE)
    values = None
    if with_values:
        values = rng.standard_normal((n_batches, WARP_SIZE, num_params))
    return KernelTrace(
        lane_slots=lane_slots,
        num_params=num_params,
        n_slots=n_slots,
        values=values,
        name=name,
    )


def scattered_trace(
    n_batches: int = 1000,
    n_slots: int = 4096,
    num_params: int = 1,
    mean_active: float = 24.0,
    seed: int = 0,
    name: str = "synthetic-scattered",
    with_values: bool = False,
) -> KernelTrace:
    """Low intra-warp locality: every lane targets an independent slot.

    This is the graph-analytics regime of §5.6 (e.g. pagerank) where ARC
    cannot help because warp-level reduction finds nothing to merge.
    """
    rng = np.random.default_rng(seed)
    active = _active_mask(rng, n_batches, mean_active)
    lane_slots = rng.integers(0, n_slots, size=(n_batches, WARP_SIZE))
    lane_slots = np.where(active, lane_slots, INACTIVE)
    values = None
    if with_values:
        values = rng.standard_normal((n_batches, WARP_SIZE, num_params))
    return KernelTrace(
        lane_slots=lane_slots,
        num_params=num_params,
        n_slots=n_slots,
        values=values,
        bfly_eligible=False,
        name=name,
    )


def mixed_locality_trace(
    n_batches: int = 1000,
    n_slots: int = 512,
    num_params: int = 3,
    groups_per_warp: int = 4,
    mean_active: float = 20.0,
    seed: int = 0,
    name: str = "synthetic-mixed",
    with_values: bool = False,
) -> KernelTrace:
    """Moderate locality: lanes split into a few same-slot groups per warp.

    Models texture-style scatter (NvDiffRec): neighbouring pixels land in
    nearby but not identical texels.
    """
    if groups_per_warp < 1:
        raise ValueError("groups_per_warp must be >= 1")
    rng = np.random.default_rng(seed)
    active = _active_mask(rng, n_batches, mean_active)
    group_slots = rng.integers(0, n_slots, size=(n_batches, groups_per_warp))
    lane_group = rng.integers(0, groups_per_warp, size=(n_batches, WARP_SIZE))
    lane_slots = np.take_along_axis(group_slots, lane_group, axis=1)
    lane_slots = np.where(active, lane_slots, INACTIVE)
    values = None
    if with_values:
        values = rng.standard_normal((n_batches, WARP_SIZE, num_params))
    return KernelTrace(
        lane_slots=lane_slots,
        num_params=num_params,
        n_slots=n_slots,
        values=values,
        name=name,
    )


def hotspot_trace(
    n_batches: int = 1000,
    num_params: int = 10,
    seed: int = 0,
    name: str = "synthetic-hotspot",
    with_values: bool = False,
) -> KernelTrace:
    """Worst case: every warp fully active, all updating slot 0.

    Maximizes same-address serialization at the ROP units -- the scenario
    where warp-level reduction has the most to gain.
    """
    rng = np.random.default_rng(seed)
    lane_slots = np.zeros((n_batches, WARP_SIZE), dtype=np.int64)
    values = None
    if with_values:
        values = rng.standard_normal((n_batches, WARP_SIZE, num_params))
    return KernelTrace(
        lane_slots=lane_slots,
        num_params=num_params,
        n_slots=1,
        values=values,
        name=name,
    )
