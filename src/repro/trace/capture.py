"""Generic trace capture: turn any scatter-add workload into a trace.

The renderers build their traces directly; this module provides the same
machinery for arbitrary workloads -- map your parallel work items to GPU
threads, group them into warps with the standard CUDA conventions, and get
a :class:`~repro.trace.events.KernelTrace` the simulator (and every ARC
strategy) can consume.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.trace.events import INACTIVE, KernelTrace

__all__ = [
    "trace_from_scatter",
    "trace_from_tiled_image",
    "pixel_to_warp_lane",
]


def trace_from_scatter(
    destinations: np.ndarray,
    n_slots: int,
    num_params: int = 1,
    values: np.ndarray | None = None,
    compute_cycles: float = 20.0,
    bfly_eligible: bool = False,
    name: str = "scatter",
) -> KernelTrace:
    """Trace of a flat scatter-add kernel (one thread per element).

    ``destinations[i]`` is the slot thread ``i`` atomically updates, or
    :data:`INACTIVE` for masked-out threads.  Threads are packed into warps
    of 32 in order, mirroring a 1D CUDA launch.
    """
    destinations = np.ascontiguousarray(destinations, dtype=np.int64)
    if destinations.ndim != 1:
        raise ValueError("destinations must be a flat array")
    n_threads = len(destinations)
    n_batches = (n_threads + WARP_SIZE - 1) // WARP_SIZE

    padded = np.full(n_batches * WARP_SIZE, INACTIVE, dtype=np.int64)
    padded[:n_threads] = destinations
    lane_slots = padded.reshape(n_batches, WARP_SIZE)

    packed_values = None
    if values is not None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (n_threads, num_params):
            raise ValueError(
                f"values must have shape ({n_threads}, {num_params})"
            )
        packed = np.zeros((n_batches * WARP_SIZE, num_params))
        packed[:n_threads] = values
        packed_values = packed.reshape(n_batches, WARP_SIZE, num_params)

    return KernelTrace(
        lane_slots=lane_slots,
        num_params=num_params,
        n_slots=n_slots,
        compute_cycles=compute_cycles,
        values=packed_values,
        bfly_eligible=bfly_eligible,
        name=name,
    )


def pixel_to_warp_lane(
    x: np.ndarray, y: np.ndarray, width: int, tile: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Map pixel coordinates to (warp id, lane) with CUDA tile layout.

    Pixels form ``tile x tile`` thread blocks; the block's row-major thread
    id splits into warps of 32 (two 16-pixel rows per warp for the default
    tile size) -- the layout 3DGS and our rasterizer use.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if width % tile:
        raise ValueError("width must be a multiple of the tile size")
    tiles_x = width // tile
    tile_index = (y // tile) * tiles_x + (x // tile)
    thread = (y % tile) * tile + (x % tile)
    warps_per_tile = tile * tile // WARP_SIZE
    warp = tile_index * warps_per_tile + thread // WARP_SIZE
    return warp.astype(np.int64), (thread % WARP_SIZE).astype(np.int64)


def trace_from_tiled_image(
    destinations: np.ndarray,
    n_slots: int,
    num_params: int = 1,
    tile: int = 16,
    compute_cycles: float = 20.0,
    bfly_eligible: bool = False,
    name: str = "image-scatter",
) -> KernelTrace:
    """Trace of a per-pixel scatter with the tiled thread layout.

    ``destinations`` is an ``(H, W)`` array of slots (or :data:`INACTIVE`).
    Each pixel issues ``num_params`` atomics to its slot; warps follow the
    16x16-tile CUDA layout, so the trace exhibits whatever spatial locality
    the destination image has -- exactly how rendering workloads acquire
    their intra-warp locality.
    """
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.ndim != 2:
        raise ValueError("destinations must be (H, W)")
    height, width = destinations.shape
    if height % tile or width % tile:
        raise ValueError(f"image must be a multiple of {tile} pixels")

    ys, xs = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
    warps, lanes = pixel_to_warp_lane(xs.ravel(), ys.ravel(), width, tile)
    n_warps = int(warps.max()) + 1
    lane_slots = np.full((n_warps, WARP_SIZE), INACTIVE, dtype=np.int64)
    lane_slots[warps, lanes] = destinations.ravel()
    return KernelTrace(
        lane_slots=lane_slots,
        num_params=num_params,
        n_slots=n_slots,
        warp_id=np.arange(n_warps),
        compute_cycles=compute_cycles,
        bfly_eligible=bfly_eligible,
        name=name,
    )
