"""Atomic traces: events, capture from renderers, analysis, synthesis."""

from repro.trace.capture import (
    pixel_to_warp_lane,
    trace_from_scatter,
    trace_from_tiled_image,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.events import INACTIVE, CoalescedTrace, KernelTrace, coalesce_trace
from repro.trace.synthetic import (
    coalesced_trace,
    hotspot_trace,
    mixed_locality_trace,
    scattered_trace,
)

__all__ = [
    "INACTIVE",
    "CoalescedTrace",
    "KernelTrace",
    "coalesce_trace",
    "load_trace",
    "save_trace",
    "pixel_to_warp_lane",
    "trace_from_scatter",
    "trace_from_tiled_image",
    "coalesced_trace",
    "hotspot_trace",
    "mixed_locality_trace",
    "scattered_trace",
]
