"""Trace analysis: the paper's two motivating observations, quantified.

* **Observation 1** (§3.1): in differentiable rendering, nearly all warps
  have *all* their active threads atomically update the same memory
  location (>99% for 3D-PL in the paper).  :func:`intra_warp_locality`
  measures that fraction.
* **Observation 2** (§3.1, Figure 7): the number of threads per warp that
  participate in a gradient update varies widely because of dynamic
  conditions.  :func:`active_thread_histogram` reproduces the Figure 7
  histograms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.trace.events import KernelTrace

__all__ = [
    "TraceProfile",
    "intra_warp_locality",
    "active_thread_histogram",
    "profile_trace",
]


def intra_warp_locality(trace: KernelTrace) -> float:
    """Fraction of non-empty warp batches whose active lanes all share
    one destination (Observation 1)."""
    coalesced = trace.coalesced
    groups_per_batch = np.diff(coalesced.offsets)
    non_empty = groups_per_batch > 0
    if not non_empty.any():
        return 0.0
    return float((groups_per_batch[non_empty] == 1).mean())


def active_thread_histogram(trace: KernelTrace) -> np.ndarray:
    """(33,) histogram of active lanes per batch (Observation 2, Fig 7).

    Index ``k`` counts batches in which exactly ``k`` lanes issued atomic
    updates; index 0 counts fully-predicated-off batches.
    """
    counts = trace.active_lane_counts
    return np.bincount(counts, minlength=WARP_SIZE + 1)


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one kernel trace."""

    name: str
    n_batches: int
    num_params: int
    lane_ops: int
    locality: float
    mean_active: float
    mean_groups: float
    histogram: np.ndarray

    def __str__(self) -> str:
        return (
            f"{self.name or 'trace'}: {self.n_batches} batches, "
            f"{self.lane_ops} lane-ops, locality={self.locality:.1%}, "
            f"mean active={self.mean_active:.1f}, "
            f"mean groups={self.mean_groups:.2f}"
        )


def profile_trace(trace: KernelTrace) -> TraceProfile:
    """Compute the full :class:`TraceProfile` of *trace*."""
    groups_per_batch = np.diff(trace.coalesced.offsets)
    active = trace.active_lane_counts
    return TraceProfile(
        name=trace.name,
        n_batches=trace.n_batches,
        num_params=trace.num_params,
        lane_ops=trace.total_lane_ops,
        locality=intra_warp_locality(trace),
        mean_active=float(active.mean()) if len(active) else 0.0,
        mean_groups=float(groups_per_batch.mean()) if len(groups_per_batch) else 0.0,
        histogram=active_thread_histogram(trace),
    )
