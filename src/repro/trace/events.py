"""Kernel atomic traces: the interface between workloads and the simulator.

A *kernel trace* records, for one launch of a gradient-computation kernel,
every warp loop iteration that may issue atomic adds (Figure 5 of the
paper).  Each record ("warp batch") stores, per lane, the *slot* the lane
atomically updates.  A slot identifies one primitive's gradient record; the
lane issues ``num_params`` atomic adds to consecutive addresses inside that
slot (``p.grad_x1 .. p.grad_xN`` in the paper's pseudo-code).  Lanes made
inactive by the kernel's dynamic conditions carry slot ``-1``.

Traces are stored struct-of-arrays so that analysis (Observations 1 and 2)
and strategy planning are vectorizable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.gpu.warp import WARP_SIZE

__all__ = ["INACTIVE", "KernelTrace", "CoalescedTrace", "coalesce_trace"]

#: Lane-slot value marking a lane that does not issue atomics this iteration.
INACTIVE = -1


@dataclass(frozen=True)
class CoalescedTrace:
    """Address-coalescing result for a whole trace.

    This mirrors what the SM address-coalescing unit produces per warp
    instruction: the lanes of each batch grouped by destination slot.  Group
    ``g`` spans ``[offsets[b], offsets[b+1])`` for its batch ``b``.
    """

    #: (n_batches + 1,) start offset of each batch's groups.
    offsets: np.ndarray
    #: (n_groups,) destination slot per group.
    slots: np.ndarray
    #: (n_groups,) active-lane count per group.
    sizes: np.ndarray
    #: (n_groups,) 32-bit lane mask per group.
    masks: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.slots)

    def groups_of(self, batch: int) -> slice:
        """Index range of *batch*'s groups in the flat group arrays."""
        return slice(int(self.offsets[batch]), int(self.offsets[batch + 1]))


@dataclass(frozen=True)
class KernelTrace:
    """One kernel launch worth of warp atomic batches.

    Parameters
    ----------
    lane_slots:
        ``(n_batches, 32)`` int array; entry ``[b, l]`` is the slot lane
        ``l`` updates during batch ``b``, or :data:`INACTIVE`.
    num_params:
        Atomic adds each active lane issues per batch (one per learned
        parameter of the primitive).
    n_slots:
        Size of the gradient buffer in slots; all slot ids must be below it.
    warp_id:
        ``(n_batches,)`` hardware warp of each batch.  Batches of one warp
        execute in trace order on the same sub-core.  Defaults to one warp
        per batch.
    compute_cycles:
        Gradient-math cycles charged at the sub-core before the batch's
        atomics (the paper's "gradient computation is done here" region).
        Either one scalar for every batch or a per-batch array -- warps
        whose lanes all fail the early-out conditions only pay the check,
        not the full gradient math.
    values:
        Optional ``(n_batches, 32, num_params)`` float array of the actual
        gradient contributions, used for functional verification.
    bfly_eligible:
        Whether the kernel admits the Figure 17 code transformation that
        ARC-SW butterfly reduction requires (False for Pulsar, per §7.2).
    """

    lane_slots: np.ndarray
    num_params: int
    n_slots: int
    warp_id: np.ndarray = None  # type: ignore[assignment]
    compute_cycles: "float | np.ndarray" = 120.0
    values: np.ndarray | None = None
    bfly_eligible: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        lane_slots = np.ascontiguousarray(self.lane_slots, dtype=np.int32)
        if lane_slots.ndim != 2 or lane_slots.shape[1] != WARP_SIZE:
            raise ValueError(
                f"lane_slots must be (n, {WARP_SIZE}), got {lane_slots.shape}"
            )
        if self.num_params <= 0:
            raise ValueError("num_params must be positive")
        if self.n_slots <= 0:
            raise ValueError("n_slots must be positive")
        if lane_slots.size and lane_slots.max(initial=INACTIVE) >= self.n_slots:
            raise ValueError("lane_slots contains slot >= n_slots")
        if lane_slots.size and lane_slots.min(initial=INACTIVE) < INACTIVE:
            raise ValueError("lane_slots below -1 are invalid")
        object.__setattr__(self, "lane_slots", lane_slots)

        warp_id = self.warp_id
        if warp_id is None:
            warp_id = np.arange(len(lane_slots), dtype=np.int64)
        else:
            warp_id = np.ascontiguousarray(warp_id, dtype=np.int64)
            if warp_id.shape != (len(lane_slots),):
                raise ValueError("warp_id must be one entry per batch")
            if warp_id.size and warp_id.min() < 0:
                raise ValueError("warp_id must be non-negative")
        object.__setattr__(self, "warp_id", warp_id)

        if self.values is not None:
            values = np.ascontiguousarray(self.values, dtype=np.float64)
            expected = (len(lane_slots), WARP_SIZE, self.num_params)
            if values.shape != expected:
                raise ValueError(
                    f"values must have shape {expected}, got {values.shape}"
                )
            object.__setattr__(self, "values", values)
        compute = self.compute_cycles
        if np.ndim(compute) == 0:
            if compute < 0:
                raise ValueError("compute_cycles must be non-negative")
        else:
            compute = np.ascontiguousarray(compute, dtype=np.float64)
            if compute.shape != (len(lane_slots),):
                raise ValueError(
                    "per-batch compute_cycles must have one entry per batch"
                )
            if compute.size and compute.min() < 0:
                raise ValueError("compute_cycles must be non-negative")
            object.__setattr__(self, "compute_cycles", compute)

    @property
    def n_batches(self) -> int:
        return len(self.lane_slots)

    @property
    def active_lane_counts(self) -> np.ndarray:
        """(n_batches,) number of active lanes per batch (Observation 2)."""
        return (self.lane_slots != INACTIVE).sum(axis=1)

    @property
    def compute_cycles_per_batch(self) -> np.ndarray:
        """(n_batches,) gradient-math cycles, broadcasting a scalar."""
        if np.ndim(self.compute_cycles) == 0:
            return np.full(self.n_batches, float(self.compute_cycles))
        return self.compute_cycles

    @property
    def total_lane_ops(self) -> int:
        """Total per-lane atomic adds the kernel issues (all params)."""
        return int(self.active_lane_counts.sum()) * self.num_params

    @cached_property
    def coalesced(self) -> CoalescedTrace:
        """Cached address-coalescing of every batch (see module docs)."""
        return coalesce_trace(self.lane_slots)

    @cached_property
    def fingerprint(self) -> str:  # arclint: disable=ARC001 (name is cosmetic, see below)
        """Deterministic content hash of everything the simulator reads.

        Covers lane slots, warp placement, per-batch compute cycles, the
        parameter/slot shape, butterfly eligibility and (when captured)
        the gradient values.  The cosmetic :attr:`name` is deliberately
        excluded: renaming a trace must not invalidate cached simulation
        results, while any change to simulated content must.
        """
        digest = hashlib.sha256()
        digest.update(b"kernel-trace-v1\0")
        digest.update(
            np.array(
                [self.num_params, self.n_slots, int(self.bfly_eligible)],
                dtype=np.int64,
            ).tobytes()
        )
        digest.update(self.lane_slots.tobytes())
        digest.update(self.warp_id.tobytes())
        compute = self.compute_cycles
        if np.ndim(compute) == 0:
            digest.update(np.float64(compute).tobytes())
        else:
            digest.update(np.ascontiguousarray(compute, np.float64).tobytes())
        if self.values is not None:
            digest.update(b"values\0")
            digest.update(self.values.tobytes())
        return digest.hexdigest()

    def reference_sums(self) -> np.ndarray:
        """Dense scatter-add of :attr:`values` -- the ground-truth gradient.

        This is what any correct atomic strategy must reproduce (up to
        floating-point reassociation).  Requires the trace to carry values.
        """
        if self.values is None:
            raise ValueError("trace carries no values; capture with values=True")
        sums = np.zeros((self.n_slots, self.num_params), dtype=np.float64)
        active = self.lane_slots != INACTIVE
        batch_idx, lane_idx = np.nonzero(active)
        slots = self.lane_slots[batch_idx, lane_idx]
        np.add.at(sums, slots, self.values[batch_idx, lane_idx])
        return sums

    def subsample(self, n: int, seed: int = 0) -> "KernelTrace":
        """Random subset of *n* batches (for fast functional tests)."""
        if n >= self.n_batches:
            return self
        rng = np.random.default_rng(seed)
        pick = np.sort(rng.choice(self.n_batches, size=n, replace=False))
        compute = self.compute_cycles
        if np.ndim(compute) != 0:
            compute = compute[pick]
        return KernelTrace(
            lane_slots=self.lane_slots[pick],
            num_params=self.num_params,
            n_slots=self.n_slots,
            warp_id=self.warp_id[pick],
            compute_cycles=compute,
            values=None if self.values is None else self.values[pick],
            bfly_eligible=self.bfly_eligible,
            name=f"{self.name}[sub{n}]" if self.name else "",
        )


def coalesce_trace(lane_slots: np.ndarray) -> CoalescedTrace:
    """Group every batch's lanes by destination slot, vectorized.

    Equivalent to running the SM address-coalescing unit over each warp
    atomic instruction: lanes with a common destination form one *atomic
    transaction* whose same-address lane operations the ROP unit serializes.
    """
    lane_slots = np.asarray(lane_slots, dtype=np.int64)
    n_batches = len(lane_slots)
    if n_batches == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        return CoalescedTrace(
            offsets=np.zeros(1, dtype=np.int64),
            slots=empty_i,
            sizes=empty_i.copy(),
            masks=np.zeros(0, dtype=np.uint64),
        )

    order = np.argsort(lane_slots, axis=1, kind="stable")
    sorted_slots = np.take_along_axis(lane_slots, order, axis=1)
    valid = sorted_slots != INACTIVE
    is_first = np.zeros_like(valid)
    is_first[:, 0] = valid[:, 0]
    is_first[:, 1:] = valid[:, 1:] & (sorted_slots[:, 1:] != sorted_slots[:, :-1])

    flat_first = is_first.ravel()
    flat_valid = valid.ravel()
    group_of_element = np.cumsum(flat_first) - 1

    n_groups = int(flat_first.sum())
    slots = sorted_slots.ravel()[flat_first]
    sizes = np.bincount(group_of_element[flat_valid], minlength=n_groups)

    # Lane masks: each valid element contributes bit (1 << lane).  Sums of
    # distinct powers of two below 2**32 are exact in float64.
    lane_bits = (1.0 * 2.0 ** order).ravel()[flat_valid]
    masks = np.bincount(
        group_of_element[flat_valid], weights=lane_bits, minlength=n_groups
    ).astype(np.uint64)

    batch_of_group = np.repeat(np.arange(n_batches), WARP_SIZE)[flat_first]
    counts = np.bincount(batch_of_group, minlength=n_batches)
    offsets = np.zeros(n_batches + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CoalescedTrace(
        offsets=offsets,
        slots=slots.astype(np.int64),
        sizes=sizes.astype(np.int64),
        masks=masks,
    )
