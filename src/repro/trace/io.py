"""Trace serialization: save captured kernel traces to ``.npz``.

Capturing a trace from a renderer costs a full instrumented backward pass;
saving lets a trace be captured once and replayed across many simulator
sessions (or shared as a benchmark input, like real GPU traces are).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.trace.events import KernelTrace

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: KernelTrace, path: "str | Path") -> Path:
    """Write *trace* to a compressed ``.npz`` file; returns the path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "lane_slots": trace.lane_slots,
        "warp_id": trace.warp_id,
        "num_params": np.int64(trace.num_params),
        "n_slots": np.int64(trace.n_slots),
        "compute_cycles": np.asarray(trace.compute_cycles),
        "bfly_eligible": np.bool_(trace.bfly_eligible),
        "name": np.str_(trace.name),
    }
    if trace.values is not None:
        payload["values"] = trace.values
    np.savez_compressed(path, **payload)
    return path


def load_trace(path: "str | Path") -> KernelTrace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        compute = data["compute_cycles"]
        if compute.ndim == 0:
            compute = float(compute)
        return KernelTrace(
            lane_slots=data["lane_slots"],
            num_params=int(data["num_params"]),
            n_slots=int(data["n_slots"]),
            warp_id=data["warp_id"],
            compute_cycles=compute,
            values=data["values"] if "values" in data else None,
            bfly_eligible=bool(data["bfly_eligible"]),
            name=str(data["name"]),
        )
