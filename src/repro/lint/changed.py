"""Diff-aware lint selection: which files did this change touch.

``repro lint --changed [BASE]`` asks git for the files that differ from
*BASE* (default ``HEAD``): committed, staged and worktree modifications
plus untracked files.  The engine then expands that set through the
module import graph (:func:`repro.lint.dataflow.reverse_dependents`) so
editing ``repro/gpu/config.py`` also re-checks everything that imports
it -- the modules whose *interprocedural* findings the edit could have
changed.  Deleted files drop out naturally (they no longer parse into
modules); their baseline entries are left for the next full run to
flag as stale.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

__all__ = ["GitError", "changed_files"]


class GitError(RuntimeError):
    """git was unavailable or rejected the requested base revision."""


def _git(args: "list[str]", cwd: "Path | None") -> str:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitError(f"git {' '.join(args)} failed: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit code {proc.returncode}"
        raise GitError(f"git {' '.join(args)} failed: {detail}")
    return proc.stdout


def changed_files(
    base: str = "HEAD", cwd: "Path | None" = None
) -> "list[Path]":
    """Absolute paths of python files changed relative to *base*.

    The union of ``git diff --name-only <base>`` (committed + staged +
    worktree changes, deletions excluded via ``--diff-filter``) and
    untracked files.  Paths are resolved against the repository root,
    not the working directory, so the command works from any subdir.
    """
    root = Path(_git(["rev-parse", "--show-toplevel"], cwd).strip())
    listed = _git(
        ["diff", "--name-only", "--diff-filter=d", base, "--"], cwd
    )
    untracked = _git(
        ["ls-files", "--others", "--exclude-standard"], cwd
    )
    out: list[Path] = []
    seen: set[Path] = set()
    for line in (*listed.splitlines(), *untracked.splitlines()):
        name = line.strip()
        if not name.endswith(".py"):
            continue
        path = (root / name).resolve()
        if path not in seen and path.exists():
            seen.add(path)
            out.append(path)
    return out
