"""arclint: domain-invariant static analysis for the reproduction.

The tier-1 test suite checks *numbers*; this package checks the
*invariants those numbers silently depend on* -- the bug class PR 1's
review cycles were spent on.  An AST-based rule framework
(:mod:`repro.lint.registry`, :mod:`repro.lint.engine`) runs twelve
domain rules (:mod:`repro.lint.rules`):

========  ===========================================================
ARC001    fingerprint-completeness: every dataclass field reachable
          from the fingerprint / key schema caching its results
ARC002    determinism: no global RNG, wall clocks or unordered
          iteration inside ``repro/{core,gpu,trace}``
ARC003    unit-safety: ns- and cycle-domain values only combine
          through an explicit ``clock_ghz`` conversion
          (flow-sensitive since v2)
ARC004    strategy-conformance: concrete strategies are exported,
          implement the interface, and stay cacheable (scalar ctors)
ARC005    resilient-execution: experiment workers are never awaited
          without a timeout
ARC006    interprocedural unit contracts: ns values never reach
          cycles-typed parameters/returns across call chains
ARC007    event-tie determinism: engine heap events carry a monotonic
          sequence tiebreaker (runtime twin: ``REPRO_SANITIZE=1``)
ARC008    cache-key taint: fields excluded from a fingerprint are
          never read in result-influencing engine positions
ARC009    shared-file write protocol: writes to multi-process files
          (cache entries, manifests, obslog) are atomic temp+rename
          or single-``write`` ``O_APPEND``, never torn
ARC010    spawn-global carry: a module global written only in the
          parent is never read in worker context (``spawn`` workers
          do not inherit parent globals)
ARC011    env mutation discipline: no ``os.environ`` writes after a
          pool exists; worker env reads stay in the spawn-carry set
ARC012    resource protocol agreement: all writers of one resource
          class (cache root, quarantine, manifest, obslog) use the
          same sound protocol
========  ===========================================================

ARC003/006/008 are built on a project-wide dataflow layer
(:mod:`repro.lint.dataflow`): symbol table, call graph, and an abstract
interpreter propagating unit tags through assignments, calls and
dataclass fields to a fixpoint.  The same layer's import graph powers
``repro lint --changed``, which re-checks only the files a diff touched
plus their transitive importers.

ARC009-012 add two more analyses on that layer
(:mod:`repro.lint.dataflow.procctx`,
:mod:`repro.lint.dataflow.resources`): a process-context lattice
(parent / worker / both) derived from the executor submission graph,
and an escape analysis attributing file accesses to shared resource
classes and write protocols.  Their runtime twin is the
``REPRO_SANITIZE`` I/O shim (:mod:`repro.experiments.iosan`), which the
chaos suite diffs against the static model.

Findings are suppressed inline (``# arclint: disable=ARC001``) or
grandfathered in a checked-in, content-addressed baseline
(:mod:`repro.lint.baseline`).  Reports render as text, JSON, or SARIF
2.1.0 (:mod:`repro.lint.sarif`) for code-scanning upload.  Entry point:
``repro lint`` (see :mod:`repro.cli`) or :func:`run_lint`.
"""

from repro.lint.baseline import (
    load_baseline,
    refresh_baseline,
    write_baseline,
)
from repro.lint.engine import (
    LintConfig,
    LintReport,
    run_lint,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, register, rule_ids

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "load_baseline",
    "refresh_baseline",
    "register",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
