"""arclint: domain-invariant static analysis for the reproduction.

The tier-1 test suite checks *numbers*; this package checks the
*invariants those numbers silently depend on* -- the bug class PR 1's
review cycles were spent on.  An AST-based rule framework
(:mod:`repro.lint.registry`, :mod:`repro.lint.engine`) runs four domain
rules (:mod:`repro.lint.rules`):

========  ===========================================================
ARC001    fingerprint-completeness: every dataclass field reachable
          from the fingerprint / key schema caching its results
ARC002    determinism: no global RNG, wall clocks or unordered
          iteration inside ``repro/{core,gpu,trace}``
ARC003    unit-safety: ns- and cycle-domain values only combine
          through an explicit ``clock_ghz`` conversion
ARC004    strategy-conformance: concrete strategies are exported,
          implement the interface, and stay cacheable (scalar ctors)
========  ===========================================================

Findings are suppressed inline (``# arclint: disable=ARC001``) or
grandfathered in a checked-in, content-addressed baseline
(:mod:`repro.lint.baseline`).  Entry point: ``repro lint`` (see
:mod:`repro.cli`) or :func:`run_lint`.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import (
    LintConfig,
    LintReport,
    run_lint,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, register, rule_ids

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "load_baseline",
    "register",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
