"""arclint's dataflow layer: symbols, call graph, abstract interpretation.

One :class:`DataflowAnalysis` is built lazily per lint run and shared by
every rule that needs project-wide facts (ARC003's flow-sensitive unit
checks, ARC006's interprocedural mismatches, ARC008's cache-key
reachability).  Construction parses nothing -- it reuses the ASTs the
engine already holds -- so the whole layer costs one pass over the
in-memory trees plus a small fixpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.dataflow.asyncctx import AsyncContexts
from repro.lint.dataflow.callgraph import (
    CallGraph,
    module_imports,
    reverse_dependents,
)
from repro.lint.dataflow.interp import Conflict, UnitInterpreter
from repro.lint.dataflow.lattice import (
    Unit,
    add_units,
    div_units,
    join,
    mul_units,
)
from repro.lint.dataflow.summaries import Summaries
from repro.lint.dataflow.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    annotation_name,
    module_dotted_name,
)

if TYPE_CHECKING:
    from repro.lint.engine import LintContext

__all__ = [
    "AsyncContexts",
    "CallGraph",
    "ClassSymbol",
    "Conflict",
    "DataflowAnalysis",
    "FunctionSymbol",
    "Summaries",
    "SymbolTable",
    "Unit",
    "UnitInterpreter",
    "add_units",
    "analysis_for",
    "annotation_name",
    "div_units",
    "join",
    "module_dotted_name",
    "module_imports",
    "mul_units",
    "reverse_dependents",
]

_SHARED_KEY = "dataflow.analysis"


class DataflowAnalysis:
    """Symbol table + call graph + converged summaries for one run."""

    def __init__(self, ctx: "LintContext"):
        self.config = ctx.config
        self.table = SymbolTable(ctx.modules)
        self.graph = CallGraph(self.table)
        self.summaries = Summaries(self.table, self.graph, self.config)

    def conflicts_in(self, module):
        return self.summaries.conflicts_in(module)


def analysis_for(ctx: "LintContext") -> DataflowAnalysis:
    """The run's shared analysis, built on first use."""
    analysis = ctx.shared.get(_SHARED_KEY)
    if analysis is None:
        analysis = DataflowAnalysis(ctx)
        ctx.shared[_SHARED_KEY] = analysis
    return analysis
