"""The abstract domains the dataflow analysis propagates.

Two lattices travel through the interpreter:

* **Unit** -- which clock/measurement domain a value lives in.  The
  reproduction's cost model keeps memory-domain service times in
  nanoseconds and the timing engine sums shader cycles; the only legal
  bridge is multiplication by a clock frequency (``cycles = ns * ghz``).
  The lattice records exactly enough to check that: ``NS``, ``CYCLES``,
  ``GHZ``, ``DIMLESS`` (pure numbers: literals, counts, ratios) and
  ``UNKNOWN`` (top -- no information, never reported on).
* **Taint** -- whether a value is *result-influencing* (derived from a
  fingerprinted input field).  Tracked as plain membership in a set of
  tainted names, so it needs no class here; :mod:`.interp` documents it.

Transfer functions are deliberately forgiving: any combination this
module cannot prove meaningful maps to ``UNKNOWN`` rather than to an
error, so the rules built on top only report provable conflicts
(``NS`` meeting ``CYCLES`` additively) and stay quiet on everything
else.  False silence is acceptable; false alarms are not.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Unit", "join", "add_units", "mul_units", "div_units"]


class Unit(str, Enum):
    """Measurement domain of one abstract value."""

    NS = "ns"
    CYCLES = "cycles"
    GHZ = "ghz"
    DIMLESS = "dimensionless"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def join(a: Unit, b: Unit) -> Unit:
    """Least upper bound: what a value is after control flow merges.

    Equal tags keep their tag; ``DIMLESS`` is absorbed by any informative
    tag (initializing an accumulator to ``0.0`` must not erase the unit
    later additions establish); anything else merges to ``UNKNOWN``.
    """
    if a == b:
        return a
    if a is Unit.DIMLESS:
        return b
    if b is Unit.DIMLESS:
        return a
    return Unit.UNKNOWN


def add_units(a: Unit, b: Unit) -> Unit:
    """Result of ``a + b`` / ``a - b`` (the *conflict* is reported by the
    rule, not here; the transfer just keeps the analysis going)."""
    if a is Unit.DIMLESS:
        return b
    if b is Unit.DIMLESS:
        return a
    if a == b:
        return a
    return Unit.UNKNOWN


def mul_units(a: Unit, b: Unit) -> Unit:
    """Result of ``a * b``; the ns->cycles clock conversion lives here."""
    pair = {a, b}
    if pair == {Unit.NS, Unit.GHZ}:
        return Unit.CYCLES
    if a is Unit.DIMLESS:
        return b
    if b is Unit.DIMLESS:
        return a
    return Unit.UNKNOWN


def div_units(a: Unit, b: Unit) -> Unit:
    """Result of ``a / b``; ``cycles / ghz`` converts back to ns."""
    if a is Unit.CYCLES and b is Unit.GHZ:
        return Unit.NS
    if b is Unit.DIMLESS:
        return a
    if a == b and a is not Unit.UNKNOWN:
        return Unit.DIMLESS
    return Unit.UNKNOWN
