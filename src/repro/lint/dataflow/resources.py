"""Escape/alias analysis for shared-resource file handles.

Multiple processes of one experiment run share four kinds of on-disk
state: committed cache entries (``<root>/results``), quarantined corrupt
entries (``<root>/quarantine``), the resumable run manifest
(``<root>/manifests``) and the ``REPRO_OBSLOG`` JSONL sink.  Each is a
**resource class**, and every file access whose path provably derives
from one of them is attributed to its class plus the **protocol** the
access uses:

* ``atomic-rename``   -- ``os.replace``/``os.rename`` onto the shared
  path (readers observe the old or the new file, never a mix);
* ``o-append``        -- ``os.open`` with ``O_APPEND`` (concurrent
  single-``write`` appends interleave at record granularity);
* ``temp-file``       -- ``tempfile.mkstemp`` next to the target (the
  private half of an atomic-rename write; never shared, never flagged);
* ``raw-write``       -- ``open(path, "w")`` / ``write_text`` /
  ``write_bytes`` directly on the shared path (a concurrent reader can
  observe a torn file);
* ``buffered-append`` -- ``open(path, "a")`` (appends through a python
  buffer can flush mid-record, interleaving torn lines).

The first two are *sound* under concurrency; the last two are what
ARC009 flags, and ARC012 checks that all sound writers of one class
agree on a single protocol.

Attribution is an alias analysis seeded by identifier patterns
(:attr:`~repro.lint.engine.LintConfig.resource_patterns`): an expression
mentioning ``quarantine_dir`` or calling ``entry_path()`` is classified
directly, and the class then propagates through local assignment,
``/``-joins, ``.parent``/``.name`` hops, f-strings, ``Path(...)``
wrapping, the return values of project functions (``entry_path`` returns
a results path, so every resolved call site inherits it), methods of a
class whose *name* matches a pattern (``RunManifest.record`` writing
``self.path``), and one level of parameter passing at resolved call
sites (``faults.corrupt_entry(path)`` truncating whatever
``cache.entry_path(key)`` the caller handed it).  Paths that resolve to
no class -- spool temp dirs, fixture scratch files -- are simply outside
the model, keeping the analysis under-approximate like the rest of the
dataflow layer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lint import astutil
from repro.lint.dataflow.procctx import method_call_target, receiver_classes
from repro.lint.dataflow.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
)

if TYPE_CHECKING:
    from repro.lint.dataflow.callgraph import CallGraph
    from repro.lint.engine import ModuleInfo

__all__ = [
    "Access",
    "PROTOCOL_APPEND",
    "PROTOCOL_ATOMIC_RENAME",
    "PROTOCOL_BUFFERED_APPEND",
    "PROTOCOL_RAW_WRITE",
    "PROTOCOL_TEMP",
    "ResourceModel",
    "SOUND_PROTOCOLS",
]

PROTOCOL_ATOMIC_RENAME = "atomic-rename"
PROTOCOL_APPEND = "o-append"
PROTOCOL_TEMP = "temp-file"
PROTOCOL_RAW_WRITE = "raw-write"
PROTOCOL_BUFFERED_APPEND = "buffered-append"

#: Write protocols safe under concurrent multi-process writers.
SOUND_PROTOCOLS = frozenset({PROTOCOL_ATOMIC_RENAME, PROTOCOL_APPEND})

#: ``os.open`` flag names that make the descriptor writable.
_WRITE_FLAGS = frozenset({"O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC"})

#: How many alias hops :meth:`ResourceModel._classify` will follow.
_MAX_DEPTH = 10


@dataclass(frozen=True)
class Access:
    """One classified file access at a concrete source location."""

    function: str           #: qname of the enclosing function
    module_path: str        #: lint-root-relative path (finding anchor)
    line: int
    kind: str               #: ``"read"`` or ``"write"``
    protocol: "str | None"  #: write protocol (``None`` for reads)
    resource: str           #: resource class name
    detail: str             #: rendered path expression


class ResourceModel:
    """Every classified access in the process-safety module scope."""

    def __init__(self, table: SymbolTable, graph: "CallGraph", config,
                 modules: "list[ModuleInfo]"):
        self.table = table
        self.graph = graph
        self.config = config
        self.patterns = tuple(config.resource_patterns)
        scope_ids = {id(module) for module in modules}
        self._functions = [
            fn for fn in table.functions() if id(fn.module) in scope_ids
        ]
        self._receivers = {
            fn.qname: receiver_classes(fn, table) for fn in self._functions
        }
        #: Function qname -> resource class its return value carries.
        self.returns: dict[str, str] = {}
        self._param_classes: dict[tuple[str, str], str] = {}
        self._converge_returns()
        self._param_classes = self._infer_param_classes()
        self.accesses: list[Access] = []
        for fn in self._functions:
            self._extract_accesses(fn)

    # Classification ---------------------------------------------------- #

    def _pattern_class(self, name: "str | None") -> "str | None":
        if not name:
            return None
        lowered = name.lower()
        for pattern, resource in self.patterns:
            if pattern in lowered:
                return resource
        return None

    def _call_target(
        self, fn: FunctionSymbol, call: ast.Call
    ) -> "FunctionSymbol | None":
        method = method_call_target(call, self._receivers.get(fn.qname, {}))
        if method is not None:
            return method
        dotted = astutil.dotted_name(call.func)
        if (fn.cls is not None and dotted is not None
                and dotted.startswith("self.")):
            rest = dotted[len("self."):]
            if "." not in rest:
                found = fn.cls.methods.get(rest)
                if found is not None:
                    return found
        symbol = self.table.resolve_call(fn.module, call)
        if isinstance(symbol, FunctionSymbol):
            return symbol
        return None

    def _classify(self, fn: FunctionSymbol, expr: "ast.AST | None",
                  env: dict[str, str], depth: int = 0) -> "str | None":
        """Resource class of a path expression, or ``None``."""
        if expr is None or depth > _MAX_DEPTH:
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id) or self._pattern_class(expr.id)
        if isinstance(expr, ast.Attribute):
            cls = self._pattern_class(expr.attr)
            if cls is not None:
                return cls
            # Methods of e.g. RunManifest: self-rooted paths belong to
            # the class the enclosing type's *name* matches.
            if (isinstance(expr.value, ast.Name) and expr.value.id == "self"
                    and fn.cls is not None):
                cls = self._pattern_class(fn.cls.name)
                if cls is not None:
                    return cls
            return self._classify(fn, expr.value, env, depth + 1)
        if isinstance(expr, ast.BinOp):
            return (self._classify(fn, expr.left, env, depth + 1)
                    or self._classify(fn, expr.right, env, depth + 1))
        if isinstance(expr, ast.Subscript):
            return self._classify(fn, expr.value, env, depth + 1)
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    cls = self._classify(fn, value.value, env, depth + 1)
                    if cls is not None:
                        return cls
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                cls = self._classify(fn, value, env, depth + 1)
                if cls is not None:
                    return cls
            return None
        if isinstance(expr, ast.Call):
            name = astutil.called_name(expr)
            cls = self._pattern_class(name)
            if cls is not None:
                return cls
            target = self._call_target(fn, expr)
            if target is not None and target.qname in self.returns:
                return self.returns[target.qname]
            if name in ("Path", "PurePath", "str", "fspath") and expr.args:
                return self._classify(fn, expr.args[0], env, depth + 1)
            # Path-producing methods (.with_suffix, .resolve, .absolute)
            # keep their receiver's class.
            if isinstance(expr.func, ast.Attribute):
                return self._classify(fn, expr.func.value, env, depth + 1)
            return None
        return None

    def _local_env(self, fn: FunctionSymbol) -> dict[str, str]:
        """Name -> class for *fn*'s parameters and local aliases."""
        env: dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = (self._param_classes.get((fn.qname, arg.arg))
                   or self._pattern_class(arg.arg))
            if cls is not None:
                env[arg.arg] = cls
        assigns = [
            node for node in ast.walk(fn.node)
            if isinstance(node, ast.Assign) and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ]
        assigns.sort(key=lambda node: node.lineno)
        # Two passes pick up aliases defined textually after first use
        # (loop bodies); chains longer than that are outside the model.
        for _ in range(2):
            for node in assigns:
                cls = self._classify(fn, node.value, env)
                if cls is not None:
                    env[node.targets[0].id] = cls
        return env

    # Interprocedural summaries ----------------------------------------- #

    def _converge_returns(self) -> None:
        """Return-class summaries, iterated so call chains converge."""
        for _ in range(3):
            changed = False
            for fn in self._functions:
                env = self._local_env(fn)
                classes = set()
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        cls = self._classify(fn, node.value, env)
                        if cls is not None:
                            classes.add(cls)
                if len(classes) == 1:
                    cls = classes.pop()
                    if self.returns.get(fn.qname) != cls:
                        self.returns[fn.qname] = cls
                        changed = True
            if not changed:
                return

    def _infer_param_classes(self) -> dict[tuple[str, str], str]:
        """(function qname, param) -> class, from resolved call sites.

        One level only: the caller's own environment is computed from
        patterns and summaries, not from *its* callers.
        """
        out: dict[tuple[str, str], str] = {}
        caller_envs: dict[str, dict[str, str]] = {}
        for fn in self._functions:
            params = [
                arg.arg for arg in fn.node.args.posonlyargs + fn.node.args.args
                if arg.arg != "self"
            ]
            if not params:
                continue
            candidates: dict[str, set[str]] = {}
            for site in self.graph.calls_to.get(fn.qname, ()):
                caller = site.caller
                if caller.qname not in caller_envs:
                    caller_envs[caller.qname] = (
                        self._local_env(caller)
                        if any(c is caller for c in self._functions)
                        else {}
                    )
                env = caller_envs[caller.qname]
                for index, arg in enumerate(site.node.args):
                    if index >= len(params):
                        break
                    cls = self._classify(caller, arg, env)
                    if cls is not None:
                        candidates.setdefault(params[index], set()).add(cls)
                for keyword in site.node.keywords:
                    if keyword.arg in params:
                        cls = self._classify(caller, keyword.value, env)
                        if cls is not None:
                            candidates.setdefault(
                                keyword.arg, set()
                            ).add(cls)
            for param, classes in candidates.items():
                if len(classes) == 1:
                    out[(fn.qname, param)] = classes.pop()
        return out

    # Access extraction -------------------------------------------------- #

    def _record(self, fn: FunctionSymbol, env: dict[str, str],
                node: ast.Call, path_expr: ast.AST, kind: str,
                protocol: "str | None") -> None:
        resource = self._classify(fn, path_expr, env)
        if resource is None:
            return
        self.accesses.append(Access(
            function=fn.qname,
            module_path=fn.module.rel_path,
            line=node.lineno,
            kind=kind,
            protocol=protocol,
            resource=resource,
            detail=ast.unparse(path_expr),
        ))

    def _extract_accesses(self, fn: FunctionSymbol) -> None:
        env = self._local_env(fn)
        imports = self.table.imports[self.table.name_of(fn.module)]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = astutil.called_name(node)
            qualified = astutil.qualified_call(node, imports)
            if qualified in ("os.open",) and len(node.args) >= 2:
                flags = {
                    ident for ident in astutil.identifier_names(node.args[1])
                }
                if "O_APPEND" in flags:
                    kind, protocol = "write", PROTOCOL_APPEND
                elif flags & _WRITE_FLAGS:
                    kind, protocol = "write", PROTOCOL_RAW_WRITE
                else:
                    kind, protocol = "read", None
                self._record(fn, env, node, node.args[0], kind, protocol)
            elif qualified in ("os.fdopen",):
                continue  # wraps an fd; its protocol was set at os.open
            elif name == "open" and qualified in ("open", "io.open"):
                if not node.args:
                    continue
                kind, protocol = _open_mode_protocol(node, mode_index=1)
                self._record(fn, env, node, node.args[0], kind, protocol)
            elif (name == "open" and isinstance(node.func, ast.Attribute)):
                # pathlib-style p.open(mode): the receiver is the path.
                kind, protocol = _open_mode_protocol(node, mode_index=0)
                self._record(fn, env, node, node.func.value, kind, protocol)
            elif name in ("replace", "rename"):
                if qualified in ("os.replace", "os.rename"):
                    if len(node.args) >= 2:
                        self._record(fn, env, node, node.args[1],
                                     "write", PROTOCOL_ATOMIC_RENAME)
                elif isinstance(node.func, ast.Attribute) and node.args:
                    self._record(fn, env, node, node.args[0],
                                 "write", PROTOCOL_ATOMIC_RENAME)
            elif (name in ("write_text", "write_bytes")
                    and isinstance(node.func, ast.Attribute)):
                self._record(fn, env, node, node.func.value,
                             "write", PROTOCOL_RAW_WRITE)
            elif (name in ("read_text", "read_bytes")
                    and isinstance(node.func, ast.Attribute)):
                self._record(fn, env, node, node.func.value, "read", None)
            elif name == "mkstemp":
                for keyword in node.keywords:
                    if keyword.arg == "dir":
                        self._record(fn, env, node, keyword.value,
                                     "write", PROTOCOL_TEMP)

    # The model ---------------------------------------------------------- #

    def writes(self) -> list[Access]:
        """Every write access, temp-file halves excluded."""
        return [
            access for access in self.accesses
            if access.kind == "write" and access.protocol != PROTOCOL_TEMP
        ]

    def protocol_model(self) -> dict[str, set[str]]:
        """Resource class -> set of write protocols the tree uses.

        This is the static side of the ``REPRO_SANITIZE`` I/O
        cross-check: every protocol the runtime shim observes for a
        class must appear here, or the analysis missed a writer.
        """
        model: dict[str, set[str]] = {}
        for access in self.writes():
            model.setdefault(access.resource, set()).add(access.protocol)
        return model


def _open_mode_protocol(
    node: ast.Call, mode_index: int
) -> "tuple[str, str | None]":
    """(kind, protocol) of an ``open``-style call from its mode."""
    mode = "r"
    if len(node.args) > mode_index:
        arg = node.args[mode_index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            mode = arg.value
    for keyword in node.keywords:
        if (keyword.arg == "mode" and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)):
            mode = keyword.value.value
    if any(flag in mode for flag in ("w", "x", "+")):
        return "write", PROTOCOL_RAW_WRITE
    if "a" in mode:
        return "write", PROTOCOL_BUFFERED_APPEND
    return "read", None
