"""Project-wide symbol table and module resolver.

The per-expression rules of arclint v1 saw one module at a time; the
dataflow rules need to answer *project* questions: which module does
``repro.gpu.config`` name, which function does ``simulate_kernel`` in
this call refer to, what dataclass does the annotation ``GPUConfig``
denote.  This module builds that index once per lint run from the
already-parsed :class:`~repro.lint.engine.ModuleInfo` list -- no
imports are executed; everything is derived from source.

Naming: each module gets a dotted name derived from its package chain
on disk (ascending through ``__init__.py`` directories), falling back
to its lint-root-relative path for bare fixture trees.  Resolution then
works over a *suffix table*: every dotted suffix of a module name maps
to it unless two modules share the suffix, so ``repro.gpu.config``,
``gpu.config`` and (if unambiguous) ``config`` all resolve to the same
module regardless of how the lint root was chosen.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint import astutil

if TYPE_CHECKING:
    from repro.lint.engine import ModuleInfo

__all__ = [
    "ClassSymbol",
    "FunctionSymbol",
    "SymbolTable",
    "annotation_name",
    "module_dotted_name",
]


def module_dotted_name(module: "ModuleInfo") -> str:
    """Dotted module name of *module* (``repro.gpu.engine``).

    Ascends the on-disk package chain when one exists; otherwise the
    lint-root-relative path provides the name, so fixture trees without
    ``__init__.py`` files still get stable, import-matchable names.
    """
    path = module.path
    if (path.parent / "__init__.py").exists():
        parts = [] if path.stem == "__init__" else [path.stem]
        directory = path.parent
        while (directory / "__init__.py").exists() \
                and directory.parent != directory:
            parts.insert(0, directory.name)
            directory = directory.parent
        if parts:
            return ".".join(parts)
    parts = list(module.rel_parts)
    parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else path.stem


def annotation_name(node: "ast.AST | None") -> "str | None":
    """Best-effort class name named by an annotation expression.

    Handles ``Name``, dotted ``Attribute`` chains, string annotations
    (parsed), PEP 604 unions (the non-``None`` side) and
    ``Optional[X]``.  Container annotations (``list[X]``, ``dict``)
    yield ``None``: the *elements* are typed, not the value.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value.strip(), mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_name(node.left)
        if left is not None and left != "None":
            return left
        return annotation_name(node.right)
    if isinstance(node, ast.Subscript):
        head = astutil.dotted_name(node.value)
        if head and head.rpartition(".")[2] == "Optional":
            return annotation_name(node.slice)
        return None
    name = astutil.dotted_name(node)
    if name in (None, "None"):
        return None
    return name


class FunctionSymbol:
    """One function or method definition, addressable project-wide."""

    def __init__(self, qname: str, module: "ModuleInfo",
                 node: "ast.FunctionDef | ast.AsyncFunctionDef",
                 cls: "ClassSymbol | None" = None):
        self.qname = qname
        self.name = node.name
        self.module = module
        self.node = node
        self.cls = cls
        #: Whether this is an ``async def`` -- the coroutine-context
        #: analysis seeds its reachability lattice from these.
        self.is_async = isinstance(node, ast.AsyncFunctionDef)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionSymbol({self.qname})"


class ClassSymbol:
    """One class definition plus what the dataflow layer needs of it."""

    def __init__(self, qname: str, module: "ModuleInfo", node: ast.ClassDef):
        self.qname = qname
        self.name = node.name
        self.module = module
        self.node = node
        self.is_dataclass = astutil.is_dataclass_def(node)
        #: Dataclass field name -> definition line (empty for plain classes).
        self.fields = (
            astutil.dataclass_fields(node) if self.is_dataclass else {}
        )
        self.methods: dict[str, FunctionSymbol] = {}
        #: Attribute -> annotation class-name string, from class-level
        #: annotations and ``self.x = param`` bindings in ``__init__``.
        self.attr_class: dict[str, str] = {}
        self._scan_attr_types()

    def _scan_attr_types(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                name = annotation_name(stmt.annotation)
                if name:
                    self.attr_class[stmt.target.id] = name
        init = next(
            (s for s in self.node.body
             if isinstance(s, ast.FunctionDef) and s.name == "__init__"),
            None,
        )
        if init is None:
            return
        param_types = {
            arg.arg: annotation_name(arg.annotation)
            for arg in init.args.args
        }
        for stmt in ast.walk(init):
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Attribute)
                    and isinstance(stmt.target.value, ast.Name)
                    and stmt.target.value.id == "self"):
                # ``self._journal: "RunManifest | None" = None`` -- a
                # deferred attribute typed at its declaration site.
                name = annotation_name(stmt.annotation)
                if name:
                    self.attr_class.setdefault(stmt.target.attr, name)
                continue
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(stmt.value, ast.Name)):
                cls_name = param_types.get(stmt.value.id)
                if cls_name:
                    self.attr_class.setdefault(target.attr, cls_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClassSymbol({self.qname})"


class SymbolTable:
    """Index of every module, class and function in one lint run."""

    def __init__(self, modules: "list[ModuleInfo]"):
        self.modules = modules
        #: ModuleInfo -> dotted name and back.
        self.module_names: dict[str, "ModuleInfo"] = {}
        self._name_of: dict[int, str] = {}
        #: Dotted suffix -> module name (ambiguous suffixes removed).
        self._suffixes: dict[str, "str | None"] = {}
        #: module name -> local symbol name -> symbol.
        self._functions: dict[str, dict[str, FunctionSymbol]] = {}
        self._classes: dict[str, dict[str, ClassSymbol]] = {}
        #: module name -> import alias map (local name -> dotted origin).
        self.imports: dict[str, dict[str, str]] = {}
        for module in modules:
            self._index_module(module)

    # Construction ------------------------------------------------------ #

    def _index_module(self, module: "ModuleInfo") -> None:
        name = module_dotted_name(module)
        self.module_names[name] = module
        self._name_of[id(module)] = name
        parts = name.split(".")
        for start in range(len(parts)):
            suffix = ".".join(parts[start:])
            if suffix in self._suffixes \
                    and self._suffixes[suffix] != name:
                self._suffixes[suffix] = None  # ambiguous
            else:
                self._suffixes[suffix] = name
        self._functions[name] = {}
        self._classes[name] = {}
        self.imports[name] = astutil.import_map(module.tree)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = FunctionSymbol(f"{name}.{node.name}", module, node)
                self._functions[name][node.name] = symbol
            elif isinstance(node, ast.ClassDef):
                cls = ClassSymbol(f"{name}.{node.name}", module, node)
                self._classes[name][node.name] = cls
                for stmt in node.body:
                    if isinstance(stmt,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = FunctionSymbol(
                            f"{cls.qname}.{stmt.name}", module, stmt, cls
                        )
                        cls.methods[stmt.name] = method
                        self._functions[name][
                            f"{node.name}.{stmt.name}"
                        ] = method

    # Lookup ------------------------------------------------------------ #

    def name_of(self, module: "ModuleInfo") -> str:
        return self._name_of[id(module)]

    def resolve_module(self, dotted: str) -> "str | None":
        """Module name a dotted import path denotes, or ``None``."""
        resolved = self._suffixes.get(dotted)
        return resolved

    def functions(self) -> Iterator[FunctionSymbol]:
        """Every function and method, in deterministic order."""
        for name in sorted(self._functions):
            for local in sorted(self._functions[name]):
                yield self._functions[name][local]

    def classes(self) -> Iterator[ClassSymbol]:
        for name in sorted(self._classes):
            for local in sorted(self._classes[name]):
                yield self._classes[name][local]

    def resolve_qualified(
        self, module: "ModuleInfo", qualified: str
    ) -> "FunctionSymbol | ClassSymbol | None":
        """Symbol an alias-resolved dotted path refers to, if any.

        *qualified* is what :func:`repro.lint.astutil.qualified_call`
        produces: a bare local name, ``Class.method``, or a dotted path
        whose head names a module (``repro.gpu.engine.simulate_kernel``).
        """
        mod_name = self.name_of(module)
        local = (self._functions[mod_name].get(qualified)
                 or self._classes[mod_name].get(qualified))
        if local is not None:
            return local
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            target = self.resolve_module(".".join(parts[:cut]))
            if target is None:
                continue
            rest = ".".join(parts[cut:])
            symbol = (self._functions[target].get(rest)
                      or self._classes[target].get(rest))
            if symbol is not None:
                return symbol
        return None

    def resolve_call(
        self, module: "ModuleInfo", call: ast.Call
    ) -> "FunctionSymbol | ClassSymbol | None":
        """Callee symbol of *call* in *module* (``None`` when unknown)."""
        qualified = astutil.qualified_call(
            call, self.imports[self.name_of(module)]
        )
        if qualified is None:
            return None
        return self.resolve_qualified(module, qualified)

    def resolve_class_name(
        self, module: "ModuleInfo", name: "str | None"
    ) -> "ClassSymbol | None":
        """Class symbol an annotation token denotes from *module*."""
        if not name:
            return None
        symbol = self.resolve_qualified(module, name)
        if isinstance(symbol, ClassSymbol):
            return symbol
        # An imported name: map through the module's import aliases.
        imports = self.imports[self.name_of(module)]
        head, _, rest = name.partition(".")
        origin = imports.get(head)
        if origin is not None:
            dotted = f"{origin}.{rest}" if rest else origin
            symbol = self.resolve_qualified(module, dotted)
            if isinstance(symbol, ClassSymbol):
                return symbol
        # Last resort: a unique class of that bare name anywhere.
        tail = name.rpartition(".")[2]
        matches = [
            cls for cls in self.classes() if cls.name == tail
        ]
        if len(matches) == 1:
            return matches[0]
        return None
