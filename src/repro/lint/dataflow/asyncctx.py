"""Coroutine-context analysis: which functions run on the event loop.

The simulation service (PR 8) put an asyncio daemon in front of the
experiment stack, which adds a third execution axis to the dataflow
layer: *where a function's body runs relative to the event loop*.  A
blocking call is harmless in a worker thread and catastrophic inside a
coroutine -- one sync ``open()`` in the broker's admission path stalls
every queued request at once.  This module computes the async
reachability lattice the async-safety rules (ARC013-ARC016) consume:

* **sync**      -- only ever runs off the loop (CLI entry points, the
  socket client, pool workers);
* **coroutine** -- runs on the loop: every ``async def`` body plus each
  sync helper a coroutine provably calls;
* **both**      -- shared helpers reachable from either side.

Edges are built from a function's *own body only* -- nested ``def``s and
lambdas do not execute when the enclosing function runs, so walking into
them (as the generic call graph does) would fabricate coroutine
reachability for sanitizer internals that are only ever invoked through
dynamically-installed wrappers.  Escape hatches are modelled
explicitly: a function passed *by reference* to ``run_in_executor``,
``asyncio.to_thread`` or a pool's ``submit`` runs off the loop, produces
no call edge, and is recorded as an escape so rules (and docs) can say
*why* a blocking helper is considered safe.

On top of the lattice sits a blocking-call classifier seeded with the
project's real blockers (sync ``open``/pathlib reads, ``time.sleep``,
``subprocess``, ``socket`` dials, ``Future.result()``, numpy trace
spooling) and closed into a blocking *effect* per function: a function
blocks if its own body hits a primitive or if it calls -- directly or
transitively, never through an ``async def`` boundary or an escape
hatch -- a function that does.  The coroutine-reachable slice of that
effect set is exported as :meth:`AsyncContexts.blocking_model`, the
exact static model the runtime loop sanitizer
(:mod:`repro.service.loopsan`) checks observed stalls against.

Everything stays under-approximate: calls the resolver cannot bind
produce no edge and no effect, so the analysis only ever *claims*
coroutine context or blocking behaviour along a provable path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.lint import astutil
from repro.lint.dataflow.procctx import (
    method_call_target,
    receiver_classes,
    resolve_function_ref,
)
from repro.lint.dataflow.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    annotation_name,
)

if TYPE_CHECKING:
    from repro.lint.dataflow.callgraph import CallGraph

__all__ = [
    "BOTH",
    "CORO",
    "SYNC",
    "AsyncContexts",
    "BlockingCall",
    "BlockingEffect",
    "classify_call",
    "walk_own_body",
]

SYNC = "sync"
CORO = "coroutine"
BOTH = "both"

#: Call names that move a callable *off* the event loop: the argument
#: runs in an executor thread, so its blocking calls are by design.
EXECUTOR_ESCAPES = ("run_in_executor", "to_thread")

#: Call names that schedule a coroutine on the loop without awaiting it.
TASK_SPAWNERS = ("create_task", "ensure_future")

#: Receiver-name fragments marking a concurrent future / socket; the
#: same lexical-hint style the executor heuristic (ARC005) established.
_FUTURE_NAME_HINTS = ("future", "fut")
_SOCKET_NAME_HINTS = ("sock", "conn")

_FUTURE_BLOCKING_METHODS = ("result", "exception")
_SOCKET_BLOCKING_METHODS = (
    "connect", "accept", "recv", "recv_into", "sendall", "makefile",
)

_EXECUTOR_NAME_HINTS = ("pool", "executor")


def walk_own_body(node: ast.AST) -> Iterator[ast.AST]:
    """Every AST node of *node*'s body, excluding nested callables.

    Nested ``def``/``async def``/``lambda`` bodies do not execute when
    the enclosing function does, so both the context closure and the
    blocking classifier must not look inside them.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


@dataclass(frozen=True)
class BlockingCall:
    """One blocking primitive hit directly in a function body."""

    line: int
    display: str
    reason: str


@dataclass(frozen=True)
class BlockingEffect:
    """Why a function blocks: a primitive of its own, or a callee's."""

    origin: str  #: qname of the function whose body hits the primitive
    reason: str
    line: int    #: line of the primitive inside *origin*


def _call_display(call: ast.Call) -> str:
    name = astutil.dotted_name(call.func)
    return f"{name}()" if name else "<call>()"


def classify_call(call: ast.Call, imports: dict[str, str],
                  config) -> "str | None":
    """Reason string if *call* is a blocking primitive, else ``None``."""
    qualified = astutil.qualified_call(call, imports)
    if qualified in config.async_blocking_calls:
        return f"blocking primitive {qualified}()"
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = (astutil.dotted_name(func.value) or "").lower()
        if func.attr in config.async_blocking_methods:
            return f"synchronous file I/O via .{func.attr}()"
        if func.attr in _FUTURE_BLOCKING_METHODS \
                and any(h in receiver for h in _FUTURE_NAME_HINTS):
            return f"thread-blocking wait on a future via .{func.attr}()"
        if func.attr in _SOCKET_BLOCKING_METHODS \
                and any(h in receiver for h in _SOCKET_NAME_HINTS):
            return f"blocking socket operation .{func.attr}()"
    return None


class AsyncContexts:
    """Sync/coroutine/both classification plus blocking effects."""

    def __init__(self, table: SymbolTable, graph: "CallGraph", config):
        self.table = table
        self.graph = graph
        self.config = config
        #: qname -> callee qnames, own-body resolved calls only.
        self.edges: dict[str, set[str]] = {}
        #: qname -> human-readable reason it escapes the event loop.
        self.escapes: dict[str, str] = {}
        #: qname -> blocking primitives hit directly in its own body.
        self.direct: dict[str, list[BlockingCall]] = {}
        #: qname -> the effect that makes it block (fixpoint result).
        self.effects: dict[str, BlockingEffect] = {}
        self._receivers: dict[str, dict[str, ClassSymbol]] = {}
        self._attr_cls_cache: dict[str, dict[str, ClassSymbol]] = {}
        self._build()
        self.coro_roots = {
            f.qname for f in table.functions() if f.is_async
        }
        self.coro_set = self._coroutine_closure()
        self.sync_set = self._sync_closure()
        self._converge_effects()

    # Construction ------------------------------------------------------ #

    def _receiver_map(self, function: FunctionSymbol) -> dict:
        cached = self._receivers.get(function.qname)
        if cached is None:
            cached = receiver_classes(function, self.table)
            self._receivers[function.qname] = cached
        return cached

    def resolve_call_target(
        self, function: FunctionSymbol, call: ast.Call
    ) -> "FunctionSymbol | None":
        """Project function a call in *function*'s body binds to.

        Resolution sources, in order: typed local receivers
        (``cache.load`` through ``cache = active_cache()``), ``self``
        attributes typed in ``__init__`` (``self._journal.record``),
        and the symbol table's alias-resolved lookup (which covers
        plain names, ``module.func`` and ``self.method``).
        """
        method = method_call_target(call, self._receiver_map(function))
        if method is not None:
            return method
        func = call.func
        if (function.cls is not None
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            method = function.cls.methods.get(func.attr)
            if method is not None:
                return method
        method = self._self_attr_target(function, call)
        if method is not None:
            return method
        symbol = self.table.resolve_call(function.module, call)
        if isinstance(symbol, FunctionSymbol):
            return symbol
        if isinstance(symbol, ClassSymbol):
            return symbol.methods.get("__init__")
        return None

    def _self_attr_target(
        self, function: FunctionSymbol, call: ast.Call
    ) -> "FunctionSymbol | None":
        if function.cls is None:
            return None
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"):
            return None
        cls = self._attr_classes(function.cls).get(func.value.attr)
        if cls is not None:
            return cls.methods.get(func.attr)
        return None

    def _attr_classes(self, cls: ClassSymbol) -> dict[str, ClassSymbol]:
        """``self.X`` attribute -> class, resolved project-wide.

        Merges the symbol table's annotation-derived map with
        constructor assignments made in *any* method body
        (``self._supervisor = PoolSupervisor(...)`` in ``start``), the
        same two sources :func:`receiver_classes` trusts for locals.
        """
        cached = self._attr_cls_cache.get(cls.qname)
        if cached is not None:
            return cached
        out: dict[str, ClassSymbol] = {}
        for attr, name in cls.attr_class.items():
            resolved = self.table.resolve_class_name(cls.module, name)
            if resolved is not None:
                out[attr] = resolved
        for method in cls.methods.values():
            for node in walk_own_body(method.node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and isinstance(node.value, ast.Call)):
                    continue
                symbol = self.table.resolve_call(cls.module, node.value)
                resolved = None
                if isinstance(symbol, ClassSymbol):
                    resolved = symbol
                elif isinstance(symbol, FunctionSymbol):
                    resolved = self.table.resolve_class_name(
                        symbol.module,
                        annotation_name(symbol.node.returns),
                    )
                if resolved is not None:
                    out.setdefault(node.targets[0].attr, resolved)
        self._attr_cls_cache[cls.qname] = out
        return out

    def _resolve_ref(
        self, function: FunctionSymbol, node: ast.AST
    ) -> "FunctionSymbol | None":
        dotted = astutil.dotted_name(node)
        if dotted and dotted.startswith("self.") and function.cls:
            return function.cls.methods.get(dotted[len("self."):])
        return resolve_function_ref(self.table, function.module, node)

    def _build(self) -> None:
        for function in self.table.functions():
            imports = self.table.imports[
                self.table.name_of(function.module)
            ]
            targets: set[str] = set()
            blockers: list[BlockingCall] = []
            for node in walk_own_body(function.node):
                if not isinstance(node, ast.Call):
                    continue
                self._scan_escape(function, node)
                reason = classify_call(node, imports, self.config)
                if reason is not None:
                    blockers.append(BlockingCall(
                        node.lineno, _call_display(node), reason
                    ))
                    continue
                callee = self.resolve_call_target(function, node)
                if callee is not None:
                    targets.add(callee.qname)
            self.edges[function.qname] = targets
            if blockers:
                self.direct[function.qname] = sorted(
                    blockers, key=lambda b: b.line
                )

    def _scan_escape(self, function: FunctionSymbol,
                     call: ast.Call) -> None:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        ref: "ast.AST | None" = None
        if name == "run_in_executor" and len(call.args) >= 2:
            ref = call.args[1]
        elif name == "to_thread" and call.args:
            ref = call.args[0]
        elif (name == "submit" and call.args
                and isinstance(func, ast.Attribute)):
            receiver = (astutil.dotted_name(func.value) or "").lower()
            if any(h in receiver for h in _EXECUTOR_NAME_HINTS):
                ref = call.args[0]
        if ref is None:
            return
        target = self._resolve_ref(function, ref)
        if target is not None:
            self.escapes.setdefault(
                target.qname,
                f"passed to {name}() in {function.qname}",
            )

    def _coroutine_closure(self) -> set[str]:
        """Roots are ``async def`` bodies; every resolved call from one
        runs on the loop too (awaited coroutines *and* sync helpers)."""
        seen = set(self.coro_roots)
        frontier = list(self.coro_roots)
        while frontier:
            for callee in self.edges.get(frontier.pop(), ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def _sync_closure(self) -> set[str]:
        """Roots: uncalled sync functions (library/CLI entries) plus
        every escape-hatch target.  Calling an ``async def`` from sync
        code does not run its body, so the walk stops there."""
        incoming: set[str] = set()
        for callees in self.edges.values():
            incoming.update(callees)
        roots = {
            qname for qname in self.edges
            if qname not in incoming and qname not in self.coro_roots
        }
        roots.update(self.escapes)
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            for callee in self.edges.get(frontier.pop(), ()):
                if callee in seen or callee in self.coro_roots:
                    continue
                seen.add(callee)
                frontier.append(callee)
        return seen

    def _converge_effects(self) -> None:
        """Propagate blocking effects callee -> caller to a fixpoint.

        An ``async def`` callee contributes no effect to its caller:
        *calling* a coroutine function only instantiates it, and once
        awaited its body is judged in its own right as a coroutine
        root.  Escaped callees likewise stay out -- invoking them goes
        through an executor by construction.
        """
        for qname, blockers in self.direct.items():
            first = blockers[0]
            self.effects[qname] = BlockingEffect(
                qname, first.reason, first.line
            )
        changed = True
        while changed:
            changed = False
            for qname in sorted(self.edges):
                if qname in self.effects:
                    continue
                for callee in sorted(self.edges[qname]):
                    if callee in self.coro_roots:
                        continue
                    effect = self.effects.get(callee)
                    if effect is not None:
                        self.effects[qname] = effect
                        changed = True
                        break

    # Lookup ------------------------------------------------------------ #

    def context_of(self, qname: str) -> str:
        """``sync`` / ``coroutine`` / ``both`` for a function qname.

        Functions outside both closures default to ``sync``: the
        analysis never claims coroutine context without a provable
        path, so the async-safety rules stay free of false positives.
        """
        in_coro = qname in self.coro_set
        in_sync = qname in self.sync_set
        if in_coro and in_sync:
            return BOTH
        if in_coro:
            return CORO
        return SYNC

    def coroutine_context(self, qname: str) -> bool:
        """Whether *qname* can run on the event loop at all."""
        return qname in self.coro_set

    def blocking_model(self) -> set[str]:
        """Coroutine-reachable functions with a blocking effect.

        This is the static half of the loopsan cross-check: on a clean
        sanitized daemon run, every frame the runtime attributes a
        loop-thread blocking operation to must be in this set.
        Allowlisted callees (ARC013 exemptions) are deliberately *in*
        the model -- exemption silences the finding, not the physics.
        """
        return {
            qname for qname in self.coro_set if qname in self.effects
        }
