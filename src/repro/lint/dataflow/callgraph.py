"""Call graph and module dependency graph over the linted tree.

Two graphs, both derived statically from the
:class:`~repro.lint.dataflow.symbols.SymbolTable`:

* the **call graph** links each function to every project function it
  calls (resolving import aliases, ``module.func`` paths and
  ``self.method()`` receivers); edges carry the call node so rules can
  report at the call site.  Unresolvable calls (externals, dynamic
  dispatch through arbitrary receivers) simply produce no edge -- the
  analysis is *under*-approximate by design, which keeps every finding
  built on it provable;
* the **module import graph** links each module to the project modules
  it imports.  Its reverse closure answers "who could my edit affect",
  which is what ``repro lint --changed`` uses to expand a diff into the
  set of modules worth re-linting.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint import astutil
from repro.lint.dataflow.symbols import FunctionSymbol, SymbolTable

if TYPE_CHECKING:
    from repro.lint.engine import ModuleInfo

__all__ = ["CallSite", "CallGraph", "module_imports", "reverse_dependents"]


class CallSite:
    """One resolved call edge: *caller* invokes *callee* at *node*."""

    def __init__(self, caller: FunctionSymbol, callee: FunctionSymbol,
                 node: ast.Call):
        self.caller = caller
        self.callee = callee
        self.node = node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CallSite({self.caller.qname} -> {self.callee.qname})"


class CallGraph:
    """Forward and reverse call edges over every project function."""

    def __init__(self, table: SymbolTable):
        self.table = table
        #: caller qname -> call sites out of it.
        self.calls_from: dict[str, list[CallSite]] = {}
        #: callee qname -> call sites into it.
        self.calls_to: dict[str, list[CallSite]] = {}
        for function in table.functions():
            self.calls_from[function.qname] = []
            self.calls_to.setdefault(function.qname, [])
        for function in table.functions():
            self._scan_function(function)

    def _scan_function(self, function: FunctionSymbol) -> None:
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_callee(function, node)
            if callee is None:
                continue
            site = CallSite(function, callee, node)
            self.calls_from[function.qname].append(site)
            self.calls_to.setdefault(callee.qname, []).append(site)

    def _resolve_callee(
        self, function: FunctionSymbol, call: ast.Call
    ) -> "FunctionSymbol | None":
        dotted = astutil.dotted_name(call.func)
        if dotted is None:
            return None
        # self.method() resolves inside the enclosing class first.
        if function.cls is not None and dotted.startswith("self."):
            rest = dotted[len("self."):]
            if "." not in rest:
                method = function.cls.methods.get(rest)
                if method is not None:
                    return method
        symbol = self.table.resolve_call(function.module, call)
        if isinstance(symbol, FunctionSymbol):
            return symbol
        return None

    def callees(self, qname: str) -> list[FunctionSymbol]:
        return [site.callee for site in self.calls_from.get(qname, ())]

    def callers(self, qname: str) -> list[FunctionSymbol]:
        return [site.caller for site in self.calls_to.get(qname, ())]


def module_imports(table: SymbolTable) -> dict[str, set[str]]:
    """Module name -> project modules it imports (externals dropped)."""
    graph: dict[str, set[str]] = {}
    for name in sorted(table.module_names):
        module = table.module_names[name]
        targets: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    resolved = _resolve_import_target(table, alias.name)
                    if resolved:
                        targets.add(resolved)
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = _resolve_import_target(table, node.module)
                if base:
                    targets.add(base)
                for alias in node.names:
                    resolved = _resolve_import_target(
                        table, f"{node.module}.{alias.name}"
                    )
                    if resolved:
                        targets.add(resolved)
        targets.discard(name)
        graph[name] = targets
    return graph


def _resolve_import_target(table: SymbolTable, dotted: str) -> "str | None":
    resolved = table.resolve_module(dotted)
    if resolved is not None:
        return resolved
    # ``from repro.gpu import engine`` puts the module in the alias slot.
    head = dotted.rpartition(".")[0]
    return table.resolve_module(head) if head else None


def reverse_dependents(
    imports: dict[str, set[str]], roots: set[str]
) -> set[str]:
    """Transitive closure of modules that (indirectly) import *roots*.

    Returns the closure *including* the roots themselves: the natural
    "what must be re-linted after editing these modules" set.
    """
    importers: dict[str, set[str]] = {name: set() for name in imports}
    for name, targets in imports.items():
        for target in targets:
            importers.setdefault(target, set()).add(name)
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        current = frontier.pop()
        for dependent in importers.get(current, ()):
            if dependent not in seen:
                seen.add(dependent)
                frontier.append(dependent)
    return seen
