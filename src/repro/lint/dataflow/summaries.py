"""Interprocedural fixpoint: per-function summaries over the call graph.

A function's *summary* is the unit of its return value.  Summaries feed
call sites in :class:`~repro.lint.dataflow.interp.UnitInterpreter`, so
a nanosecond value produced three calls away still reaches the caller
tagged ``NS`` -- that is the whole point of arclint v2 over v1's
single-expression view.

The computation is a worklist fixpoint:

1. every function starts at ``UNKNOWN`` (top: assume nothing);
2. interpret each function; if its inferred return unit changed,
   re-enqueue its *callers* (their call sites now evaluate differently);
3. repeat until no summary moves.

Because the lattice is finite and tiny, each function's summary can
change only a handful of times, so the loop terminates quickly; a
generous iteration cap guards against pathological oscillation (and is
counted, never silently hit, in :attr:`Summaries.passes`).

After the fixpoint, one final pass interprets every function *and* each
module's top level with the converged summaries, collecting the
definitive :class:`~repro.lint.dataflow.interp.Conflict` stream the
rules report from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint.dataflow.callgraph import CallGraph
from repro.lint.dataflow.interp import (
    FunctionFacts,
    UnitInterpreter,
    declared_unit,
)
from repro.lint.dataflow.lattice import Unit
from repro.lint.dataflow.symbols import SymbolTable

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig, ModuleInfo

__all__ = ["Summaries"]

_MAX_PASSES = 32


class Summaries:
    """Converged return units + final facts for every function."""

    def __init__(self, table: SymbolTable, graph: CallGraph,
                 config: "LintConfig"):
        self.table = table
        self.graph = graph
        self.config = config
        #: qname -> converged return unit.
        self.returns: dict[str, Unit] = {}
        #: qname -> facts from the final (post-fixpoint) pass.
        self.function_facts: dict[str, FunctionFacts] = {}
        #: module name -> facts for its top-level statements.
        self.module_facts: dict[str, FunctionFacts] = {}
        self.passes = 0
        self._compute()

    # Interface consumed by the interpreter ----------------------------- #

    def return_unit_of(self, qname: str) -> Unit:
        tag = self.returns.get(qname)
        if tag is not None:
            return tag
        # Unindexed callee: fall back to what its name declares.
        name = qname.rpartition(".")[2]
        return declared_unit(name, self.config) or Unit.UNKNOWN

    # Fixpoint ----------------------------------------------------------- #

    def _compute(self) -> None:
        interp = UnitInterpreter(self.table, self.config, summaries=self)
        functions = {f.qname: f for f in self.table.functions()}
        self.returns = {qname: Unit.UNKNOWN for qname in functions}
        pending = list(functions)
        in_queue = set(pending)
        steps = 0
        budget = _MAX_PASSES * max(len(functions), 1)
        while pending and steps < budget:
            qname = pending.pop(0)
            in_queue.discard(qname)
            steps += 1
            facts = interp.run_function(functions[qname])
            if facts.return_unit != self.returns[qname]:
                self.returns[qname] = facts.return_unit
                for caller in self.graph.callers(qname):
                    if caller.qname not in in_queue:
                        pending.append(caller.qname)
                        in_queue.add(caller.qname)
        self.passes = steps
        # Definitive pass with converged summaries.
        for qname, function in functions.items():
            self.function_facts[qname] = interp.run_function(function)
        for name in sorted(self.table.module_names):
            module = self.table.module_names[name]
            self.module_facts[name] = interp.run_module_level(module)

    # Reporting helpers --------------------------------------------------- #

    def conflicts_in(self, module: "ModuleInfo"):
        """Every conflict recorded against *module*, in line order.

        De-duplicates across function facts: the fixpoint interprets
        nested/closure bodies with their enclosing function, so the same
        (kind, line, names) triple can surface once per enclosing scope.
        """
        seen = set()
        out = []
        name = self.table.name_of(module)
        buckets = [self.module_facts.get(name)] + [
            facts for facts in self.function_facts.values()
            if facts.module is module
        ]
        for facts in buckets:
            if facts is None:
                continue
            for conflict in facts.conflicts:
                key = (conflict.kind, conflict.line, conflict.names,
                       conflict.left, conflict.right, conflict.augmented)
                if key in seen:
                    continue
                seen.add(key)
                out.append(conflict)
        out.sort(key=lambda c: (c.line, c.kind, c.names))
        return out
