"""Process-context analysis: which functions run in spawn workers.

The experiment stack fans cells across a ``spawn``-based
:class:`~concurrent.futures.ProcessPoolExecutor`, which splits every
function in ``repro/experiments`` into three execution contexts:

* **parent** -- runs only in the orchestrating process (matrix planning,
  future driving, manifest bookkeeping);
* **worker** -- runs only inside pool workers (the submitted task, the
  pool initializer, and everything they call);
* **both**   -- shared helpers reachable from either side
  (``simulate_cell``, the fault hooks, the disk-cache machinery).

The split matters because ``spawn`` re-imports modules in the worker:
module state mutated by the parent after import is *not* inherited, and
environment variables are snapshotted at pool construction.  The
process-safety rules (ARC010/ARC011) are context judgements, and this
module computes the context lattice they consume.

Worker entry points are discovered syntactically, then closed over the
call graph:

* the first positional argument of ``<pool-like>.submit(f, ...)`` calls
  (receiver named like a pool/executor, matching ARC005's heuristic);
* the ``initializer=`` keyword of any call (executor construction);
* the ``target=`` keyword of any call (``multiprocessing.Process``).

Everything transitively callable from an entry is *worker*; everything
reachable from a parent root -- a function no project code calls, which
is where the CLI, tests and library consumers enter -- is *parent*; the
intersection is *both*.  The closure walks the shared
:class:`~repro.lint.dataflow.callgraph.CallGraph` plus two edge kinds it
deliberately omits: constructor calls (``DiskCache(root)`` enters
``__init__``) and method calls on locals whose class is known from a
constructor assignment, an annotated parameter, or a called function's
return annotation (``cache = active_cache(); cache.load(key)``).  Calls
that still fail to resolve produce no edge, so the analysis stays
under-approximate: a function is only ever *claimed* to run in a worker
when a submission path provably exists.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.lint import astutil
from repro.lint.dataflow.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    annotation_name,
)

if TYPE_CHECKING:
    from repro.lint.dataflow.callgraph import CallGraph
    from repro.lint.engine import ModuleInfo

__all__ = [
    "BOTH",
    "PARENT",
    "WORKER",
    "ProcessContexts",
    "method_call_target",
    "receiver_classes",
    "resolve_function_ref",
]

PARENT = "parent"
WORKER = "worker"
BOTH = "both"

#: Receiver-name fragments marking an executor/pool object -- the same
#: heuristic ARC005 uses, so "what is a pool" has one answer repo-wide.
_EXECUTOR_NAME_HINTS = ("pool", "executor")

#: Call keywords whose value is a function that will run in another
#: process: executor initializers and Process targets.
_ENTRY_KEYWORDS = ("initializer", "target")


def _names_an_executor(node: ast.AST) -> bool:
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return False
    lowered = dotted.lower()
    return any(hint in lowered for hint in _EXECUTOR_NAME_HINTS)


def resolve_function_ref(
    table: SymbolTable, module: "ModuleInfo", node: ast.AST
) -> "FunctionSymbol | None":
    """Project function a bare reference expression names, if any.

    Handles local names (``_run_spec``), ``module.func`` paths and
    import aliases -- the shapes a function travels in when passed to
    ``submit``/``initializer=`` rather than called.
    """
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return None
    symbol = table.resolve_qualified(module, dotted)
    if isinstance(symbol, FunctionSymbol):
        return symbol
    imports = table.imports[table.name_of(module)]
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is not None:
        qualified = f"{origin}.{rest}" if rest else origin
        symbol = table.resolve_qualified(module, qualified)
        if isinstance(symbol, FunctionSymbol):
            return symbol
    return None


def receiver_classes(
    function: FunctionSymbol, table: SymbolTable
) -> dict[str, ClassSymbol]:
    """Local name -> class of the instance it holds, where provable.

    Three sources, all static: annotated parameters
    (``def load(cache: DiskCache)``), constructor assignments
    (``cache = DiskCache(root)``) and calls whose callee's return
    annotation names a class (``cache = active_cache()`` through
    ``-> "DiskCache | None"``).
    """
    out: dict[str, ClassSymbol] = {}
    module = function.module
    args = function.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "self":
            continue
        cls = table.resolve_class_name(module, annotation_name(arg.annotation))
        if cls is not None:
            out[arg.arg] = cls
    for node in ast.walk(function.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        symbol = table.resolve_call(module, node.value)
        cls = None
        if isinstance(symbol, ClassSymbol):
            cls = symbol
        elif isinstance(symbol, FunctionSymbol):
            cls = table.resolve_class_name(
                symbol.module, annotation_name(symbol.node.returns)
            )
        if cls is not None:
            out[node.targets[0].id] = cls
    return out


def method_call_target(
    call: ast.Call, receivers: dict[str, ClassSymbol]
) -> "FunctionSymbol | None":
    """Method a ``var.method(...)`` call resolves to via *receivers*."""
    if (isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)):
        cls = receivers.get(call.func.value.id)
        if cls is not None:
            return cls.methods.get(call.func.attr)
    return None


class ProcessContexts:
    """Parent/worker/both classification of every project function."""

    def __init__(self, table: SymbolTable, graph: "CallGraph", config):
        self.table = table
        self.graph = graph
        self.config = config
        #: qname -> callee qnames (call graph + constructor/method edges).
        self.edges: dict[str, set[str]] = {}
        #: qname -> human-readable reason it is a worker entry.
        self.worker_entries: dict[str, str] = {}
        self._build_edges()
        self._scan_entries()
        self.worker_set = self._closure(set(self.worker_entries))
        incoming: set[str] = set()
        for callees in self.edges.values():
            incoming.update(callees)
        self.parent_roots = {
            qname for qname in self.edges
            if qname not in incoming and qname not in self.worker_entries
        }
        self.parent_set = self._closure(self.parent_roots)

    # Construction ------------------------------------------------------ #

    def _build_edges(self) -> None:
        for function in self.table.functions():
            targets = {
                site.callee.qname
                for site in self.graph.calls_from.get(function.qname, ())
            }
            receivers = receiver_classes(function, self.table)
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                method = method_call_target(node, receivers)
                if method is not None:
                    targets.add(method.qname)
                    continue
                symbol = self.table.resolve_call(function.module, node)
                if isinstance(symbol, ClassSymbol):
                    init = symbol.methods.get("__init__")
                    if init is not None:
                        targets.add(init.qname)
            self.edges[function.qname] = targets

    def _scan_entries(self) -> None:
        for name in sorted(self.table.module_names):
            module = self.table.module_names[name]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr == "submit"
                        and _names_an_executor(func.value)
                        and node.args):
                    entry = resolve_function_ref(
                        self.table, module, node.args[0]
                    )
                    if entry is not None:
                        self.worker_entries.setdefault(
                            entry.qname, "submitted to a worker pool"
                        )
                for keyword in node.keywords:
                    if keyword.arg not in _ENTRY_KEYWORDS:
                        continue
                    entry = resolve_function_ref(
                        self.table, module, keyword.value
                    )
                    if entry is not None:
                        self.worker_entries.setdefault(
                            entry.qname,
                            f"passed as {keyword.arg}= of a process "
                            "constructor",
                        )

    def _closure(self, roots: set[str]) -> set[str]:
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    # Lookup ------------------------------------------------------------ #

    def context_of(self, qname: str) -> str:
        """``parent`` / ``worker`` / ``both`` for a function qname.

        Functions outside both closures (only reachable through calls
        the graph cannot resolve) default to ``parent``: the analysis
        never *claims* worker execution without a provable path, so the
        worker-context rules stay free of false positives.
        """
        in_worker = qname in self.worker_set
        in_parent = qname in self.parent_set
        if in_worker and in_parent:
            return BOTH
        if in_worker:
            return WORKER
        return PARENT

    def worker_context(self, qname: str) -> bool:
        """Whether *qname* can execute inside a spawn worker at all."""
        return qname in self.worker_set
