"""Per-function abstract interpreter over the unit lattice.

Walks one function (or one module's top level) in source order,
maintaining an environment of ``name -> Unit`` tags, and records every
*provable* unit conflict it encounters.  Tags enter the environment
three ways:

* **declared** -- identifier naming: ``*_ns``/``*_NS`` bindings carry
  nanoseconds, ``*_cycles`` carry shader cycles, ``clock_ghz``/``*_ghz``
  carry a clock frequency (the same convention arclint v1 checked
  per-expression, now seeded into dataflow);
* **flowed** -- assignments, augmented ops and tuple-free expressions
  propagate tags through the function body (strong updates in
  straight-line code, joins inside branches and loops);
* **summarized** -- calls to project functions yield the callee's
  return unit from the interprocedural fixpoint
  (:mod:`repro.lint.dataflow.summaries`), which is how a nanosecond
  value is tracked across call boundaries.

Everything the interpreter cannot prove becomes ``UNKNOWN`` and is
never reported on.  The recorded :class:`Conflict` stream is consumed
by ARC003 (local and flow-sensitive mixes) and ARC006 (interprocedural
mismatches at call/return boundaries).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lint import astutil
from repro.lint.dataflow.lattice import (
    Unit,
    add_units,
    div_units,
    join,
    mul_units,
)
from repro.lint.dataflow.symbols import (
    ClassSymbol,
    FunctionSymbol,
    SymbolTable,
    annotation_name,
)

if TYPE_CHECKING:
    from repro.lint.engine import LintConfig, ModuleInfo

__all__ = ["Conflict", "FunctionFacts", "UnitInterpreter", "declared_unit"]

#: Builtins that pass their arguments' unit through unchanged.
_PASSTHROUGH_CALLS = {
    "max", "min", "abs", "sum", "round", "float", "int", "sorted",
}


def declared_unit(name: str, config: "LintConfig") -> "Unit | None":
    """Unit an identifier *declares* through its naming, or ``None``."""
    if name in config.clock_names or name.endswith(("_ghz", "_GHZ")):
        return Unit.GHZ
    for suffix in config.ns_suffixes:
        if name.endswith(suffix):
            return Unit.NS
    for suffix in config.cycle_suffixes:
        if name.endswith(suffix):
            return Unit.CYCLES
    return None


def _is_bare_number(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    )


@dataclass(frozen=True)
class Conflict:
    """One provable unit violation, located and categorized.

    ``kind`` is one of:

    * ``mix`` -- an additive expression combines NS and CYCLES;
    * ``table-literal`` -- a bare numeric literal meets a ``*_NS`` table
      entry additively (the literal's unit is unknowable);
    * ``table-store`` -- a CYCLES value stored/accumulated into a
      ``*_NS`` table;
    * ``binding`` -- a value of one unit assigned to a name (or
      attribute, or dataclass field) declaring the other;
    * ``arg`` -- a call passes one unit into a parameter declaring the
      other (the interprocedural case);
    * ``return`` -- a function whose name declares a unit returns the
      other.
    """

    kind: str
    module: "ModuleInfo"
    line: int
    left: Unit
    right: Unit
    #: Human context: (what carries ``left``, what expects ``right``).
    names: tuple[str, ...] = ()
    #: Whether the site is an augmented (``+=``) statement; the table
    #: kinds word their message differently for accumulation vs. store.
    augmented: bool = False


class FunctionFacts:
    """Everything one interpreter run learned about one function."""

    def __init__(self, qname: str, module: "ModuleInfo"):
        self.qname = qname
        self.module = module
        self.return_unit: Unit = Unit.UNKNOWN
        self.conflicts: list[Conflict] = []


class _ReturnSource:
    """Summary lookup interface the interpreter consumes.

    :class:`~repro.lint.dataflow.summaries.Summaries` implements it; a
    dict-backed stub is enough for unit tests.
    """

    def return_unit_of(self, qname: str) -> Unit:  # pragma: no cover
        raise NotImplementedError


class UnitInterpreter:
    """Interpret one function body (or module top level) at a time."""

    def __init__(self, table: SymbolTable, config: "LintConfig",
                 summaries: "_ReturnSource | None" = None):
        self.table = table
        self.config = config
        self.summaries = summaries

    # Entry points ------------------------------------------------------ #

    def run_function(self, function: FunctionSymbol) -> FunctionFacts:
        facts = FunctionFacts(function.qname, function.module)
        env = self._seed_params(function.node)
        self._exec_block(
            function.node.body, env, depth=0, facts=facts,
            function=function,
        )
        declared = declared_unit(function.name, self.config)
        if declared is not None and facts.return_unit is Unit.UNKNOWN:
            facts.return_unit = declared
        return facts

    def run_module_level(self, module: "ModuleInfo") -> FunctionFacts:
        """Interpret statements outside any function: module constants,
        class-level assignments, top-level expressions."""
        facts = FunctionFacts(self.table.name_of(module), module)
        env: dict[str, Unit] = {}
        body: list[ast.stmt] = []
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.ClassDef):
                body.extend(
                    s for s in stmt.body
                    if not isinstance(s, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                )
                continue
            body.append(stmt)
        self._exec_block(body, env, depth=0, facts=facts, function=None)
        return facts

    # Environment ------------------------------------------------------- #

    def _seed_params(self, node: ast.FunctionDef) -> dict[str, Unit]:
        env: dict[str, Unit] = {}
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            declared = declared_unit(arg.arg, self.config)
            if declared is not None:
                env[arg.arg] = declared
        return env

    def _lookup(self, name: str, env: dict[str, Unit]) -> Unit:
        tag = env.get(name)
        if tag is not None:
            return tag
        return declared_unit(name, self.config) or Unit.UNKNOWN

    # Statements -------------------------------------------------------- #

    def _exec_block(
        self,
        body: "list[ast.stmt]",
        env: dict[str, Unit],
        depth: int,
        facts: FunctionFacts,
        function: "FunctionSymbol | None",
    ) -> None:
        nested: list[tuple[ast.FunctionDef, dict[str, Unit]]] = []
        for stmt in body:
            self._exec_stmt(stmt, env, depth, facts, function, nested)
        # Nested defs interpret against a snapshot of the closure env.
        for node, closure in nested:
            inner_env = dict(closure)
            inner_env.update(self._seed_params(node))
            self._exec_block(
                node.body, inner_env, depth=0, facts=facts,
                function=function,
            )

    def _exec_stmt(self, stmt, env, depth, facts, function, nested) -> None:
        if isinstance(stmt, ast.FunctionDef):
            nested.append((stmt, dict(env)))
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, facts)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, env, depth, facts)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, env, facts)
                self._assign(stmt.target, stmt.value, value, env, depth,
                             facts)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt, env, facts)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env, facts)
                facts.return_unit = (
                    value if facts.return_unit is Unit.UNKNOWN
                    else join(facts.return_unit, value)
                )
                if function is not None:
                    self._check_return(stmt, value, facts, function)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, facts)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env, facts)
            for branch in (stmt.body, stmt.orelse):
                self._exec_branch(branch, env, depth, facts, function,
                                  nested)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env, facts)
            if isinstance(stmt.target, ast.Name):
                declared = declared_unit(stmt.target.id, self.config)
                env[stmt.target.id] = declared or Unit.UNKNOWN
            self._exec_branch(stmt.body, env, depth, facts, function,
                              nested)
            self._exec_branch(stmt.orelse, env, depth, facts, function,
                              nested)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env, facts)
            self._exec_branch(stmt.body, env, depth, facts, function,
                              nested)
            self._exec_branch(stmt.orelse, env, depth, facts, function,
                              nested)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env, facts)
            for inner in stmt.body:
                self._exec_stmt(inner, env, depth, facts, function, nested)
        elif isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                self._exec_branch(block, env, depth, facts, function,
                                  nested)
            for handler in stmt.handlers:
                self._exec_branch(handler.body, env, depth, facts,
                                  function, nested)

    def _exec_branch(self, body, env, depth, facts, function,
                     nested) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env, depth + 1, facts, function, nested)

    def _assign(self, target, value_node, value: Unit, env, depth,
                facts) -> None:
        if isinstance(target, ast.Name):
            declared = declared_unit(target.id, self.config)
            if declared is not None:
                self._check_binding(target, declared, value, facts,
                                    target.id)
                env[target.id] = declared
            elif depth == 0:
                env[target.id] = value
            else:
                env[target.id] = join(env.get(target.id, value), value)
        elif isinstance(target, ast.Attribute):
            declared = declared_unit(target.attr, self.config)
            if declared is not None:
                self._check_binding(target, declared, value, facts,
                                    target.attr)
        elif isinstance(target, ast.Subscript):
            if self._mentions_ns_table(target.value) \
                    and value is Unit.CYCLES:
                facts.conflicts.append(Conflict(
                    "table-store", facts.module, target.lineno,
                    Unit.CYCLES, Unit.NS,
                ))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value_node, Unit.UNKNOWN, env,
                             depth, facts)

    def _aug_assign(self, stmt: ast.AugAssign, env, facts) -> None:
        value = self._eval(stmt.value, env, facts)
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            if isinstance(stmt.target, ast.Subscript) \
                    and self._mentions_ns_table(stmt.target.value):
                if value is Unit.CYCLES:
                    facts.conflicts.append(Conflict(
                        "table-store", facts.module, stmt.lineno,
                        Unit.CYCLES, Unit.NS, augmented=True,
                    ))
                elif _is_bare_number(stmt.value):
                    facts.conflicts.append(Conflict(
                        "table-literal", facts.module, stmt.lineno,
                        Unit.DIMLESS, Unit.NS, augmented=True,
                    ))
                return
            target_tag = self._eval(stmt.target, env, facts)
            if {target_tag, value} == {Unit.NS, Unit.CYCLES}:
                facts.conflicts.append(Conflict(
                    "mix", facts.module, stmt.lineno, target_tag, value,
                ))
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = add_units(target_tag, value)

    def _check_binding(self, target, declared: Unit, value: Unit, facts,
                       name: str) -> None:
        if {declared, value} == {Unit.NS, Unit.CYCLES}:
            facts.conflicts.append(Conflict(
                "binding", facts.module, target.lineno, value, declared,
                (name,),
            ))

    def _check_return(self, stmt: ast.Return, value: Unit, facts,
                      function: FunctionSymbol) -> None:
        declared = declared_unit(function.name, self.config)
        if declared is not None \
                and {declared, value} == {Unit.NS, Unit.CYCLES}:
            facts.conflicts.append(Conflict(
                "return", facts.module, stmt.lineno, value, declared,
                (function.qname,),
            ))

    # Expressions ------------------------------------------------------- #

    def _eval(self, node: ast.AST, env: dict[str, Unit],
              facts: FunctionFacts) -> Unit:
        if isinstance(node, ast.Name):
            return self._lookup(node.id, env)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Unit.DIMLESS
            if isinstance(node.value, (int, float)):
                return Unit.DIMLESS
            return Unit.UNKNOWN
        if isinstance(node, ast.Attribute):
            self._eval(node.value, env, facts)
            return declared_unit(node.attr, self.config) or Unit.UNKNOWN
        if isinstance(node, ast.Subscript):
            self._eval(node.slice, env, facts)
            return self._eval(node.value, env, facts)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env, facts)
        if isinstance(node, ast.Await):
            # ``await f()`` carries the unit of the awaited expression.
            return self._eval(node.value, env, facts)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env, facts)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, facts)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, facts)
            return join(self._eval(node.body, env, facts),
                        self._eval(node.orelse, env, facts))
        if isinstance(node, (ast.BoolOp, ast.Compare)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env, facts)
            return Unit.DIMLESS
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._eval(element, env, facts)
            return Unit.UNKNOWN
        if isinstance(node, ast.Dict):
            for child in (*node.keys, *node.values):
                if child is not None:
                    self._eval(child, env, facts)
            return Unit.UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # Comprehensions run in their own scope; evaluate for side
            # effects (nested conflicts) against a scratch env.
            scratch = dict(env)
            for generator in node.generators:
                self._eval(generator.iter, scratch, facts)
                if isinstance(generator.target, ast.Name):
                    declared = declared_unit(generator.target.id,
                                             self.config)
                    scratch[generator.target.id] = (
                        declared or Unit.UNKNOWN
                    )
            if isinstance(node, ast.DictComp):
                self._eval(node.key, scratch, facts)
                self._eval(node.value, scratch, facts)
            else:
                self._eval(node.elt, scratch, facts)
            return Unit.UNKNOWN
        return Unit.UNKNOWN

    def _eval_binop(self, node: ast.BinOp, env, facts) -> Unit:
        left = self._eval(node.left, env, facts)
        right = self._eval(node.right, env, facts)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if {left, right} == {Unit.NS, Unit.CYCLES}:
                facts.conflicts.append(Conflict(
                    "mix", facts.module, node.lineno, left, right,
                ))
            elif self._literal_meets_ns_table(node, left, right):
                facts.conflicts.append(Conflict(
                    "table-literal", facts.module, node.lineno,
                    Unit.DIMLESS, Unit.NS,
                ))
            return add_units(left, right)
        if isinstance(node.op, ast.Mult):
            return mul_units(left, right)
        if isinstance(node.op, ast.Div):
            return div_units(left, right)
        return Unit.UNKNOWN

    def _literal_meets_ns_table(self, node: ast.BinOp, left: Unit,
                                right: Unit) -> bool:
        pairs = ((node.left, left, node.right),
                 (node.right, right, node.left))
        for term, tag, other in pairs:
            if tag is Unit.NS and self._mentions_ns_table(term) \
                    and _is_bare_number(other):
                return True
        return False

    def _mentions_ns_table(self, term: ast.AST) -> bool:
        """An uppercase ``*_NS`` identifier marks a module-level table."""
        return any(
            name.endswith("_NS") for name in astutil.identifier_names(term)
        )

    def _eval_call(self, node: ast.Call, env, facts) -> Unit:
        for keyword in node.keywords:
            self._eval(keyword.value, env, facts)
        arg_tags = [self._eval(arg, env, facts) for arg in node.args]
        name = astutil.called_name(node)
        if name in _PASSTHROUGH_CALLS:
            result = Unit.DIMLESS
            for tag in arg_tags:
                result = add_units(result, tag)
            return result
        symbol = self._resolve_call(node, facts)
        if isinstance(symbol, FunctionSymbol):
            self._check_call_args(node, symbol, arg_tags, env, facts)
            if self.summaries is not None:
                return self.summaries.return_unit_of(symbol.qname)
            return declared_unit(symbol.name, self.config) or Unit.UNKNOWN
        if isinstance(symbol, ClassSymbol):
            self._check_constructor(node, symbol, env, facts)
        return Unit.UNKNOWN

    def _resolve_call(self, node: ast.Call, facts):
        dotted = astutil.dotted_name(node.func)
        if dotted is not None and dotted.startswith("self."):
            rest = dotted[len("self."):]
            if "." not in rest:
                for cls in self.table.classes():
                    if cls.module is facts.module \
                            and facts.qname.startswith(cls.qname + "."):
                        return cls.methods.get(rest)
                return None
        return self.table.resolve_call(facts.module, node)

    def _check_call_args(self, node: ast.Call, callee: FunctionSymbol,
                         arg_tags: "list[Unit]", env, facts) -> None:
        params = [
            arg.arg
            for arg in (*callee.node.args.posonlyargs,
                        *callee.node.args.args)
        ]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        for param, tag in zip(params, arg_tags):
            self._check_one_arg(node, callee, param, tag, facts)
        named = set(params) | {
            arg.arg for arg in callee.node.args.kwonlyargs
        }
        for keyword in node.keywords:
            if keyword.arg in named:
                tag = self._eval(keyword.value, env, facts)
                self._check_one_arg(node, callee, keyword.arg, tag, facts)

    def _check_one_arg(self, node: ast.Call, callee: FunctionSymbol,
                       param: str, tag: Unit, facts) -> None:
        declared = declared_unit(param, self.config)
        if declared is not None \
                and {declared, tag} == {Unit.NS, Unit.CYCLES}:
            facts.conflicts.append(Conflict(
                "arg", facts.module, node.lineno, tag, declared,
                (callee.qname, param),
            ))

    def _check_constructor(self, node: ast.Call, cls: ClassSymbol, env,
                           facts) -> None:
        """Dataclass keyword construction: a field whose name declares a
        unit must not receive the other unit."""
        if not cls.fields:
            return
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg not in cls.fields:
                continue
            declared = declared_unit(keyword.arg, self.config)
            if declared is None:
                continue
            tag = self._eval(keyword.value, env, facts)
            if {declared, tag} == {Unit.NS, Unit.CYCLES}:
                facts.conflicts.append(Conflict(
                    "arg", facts.module, node.lineno, tag, declared,
                    (cls.qname, keyword.arg),
                ))
