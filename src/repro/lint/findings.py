"""Findings: what a lint rule reports and how it is identified.

A :class:`Finding` pins one invariant violation to a source location.  Its
:attr:`~Finding.content_id` is *content-addressed*: it hashes the rule, the
file's path relative to the lint root, the stripped text of the offending
line and an occurrence counter -- never the line number.  Inserting code
above a grandfathered finding therefore does not invalidate the baseline
entry, while editing the flagged line itself (presumably to fix it) does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How bad a finding is; only ``ERROR`` findings fail the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    #: Stripped source text of the flagged line (what the id hashes).
    snippet: str = ""
    #: Disambiguates identical (rule, path, snippet, message) tuples --
    #: the same violation repeated on identical lines of one file.
    occurrence: int = 0
    content_id: str = field(init=False, default="")

    def __post_init__(self) -> None:
        payload = "\0".join(
            (self.rule, self.path, self.snippet, self.message,
             str(self.occurrence))
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        object.__setattr__(self, "content_id", digest)

    def to_dict(self) -> dict:
        """JSON-compatible form (the ``--format json`` schema)."""
        return {
            "id": self.content_id,
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "occurrence": self.occurrence,
        }

    def render(self) -> str:
        """One-line human-readable form (``path:line: RULE message``)."""
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"{self.severity.value}: {self.message}"
        )
