"""Shared AST helpers used by the arclint rules.

These keep the rules themselves about *invariants*, not AST plumbing:
resolving imported names to qualified origins, recognising dataclasses and
their fields, and collecting the identifier terminals of an expression.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "import_map",
    "dotted_name",
    "is_dataclass_def",
    "dataclass_fields",
    "identifier_names",
    "called_name",
    "qualified_call",
    "walk_functions",
]


def import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> qualified origin for every import in *tree*.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter`` maps ``perf_counter -> time.perf_counter``.  Relative
    imports keep their module path without resolving the package.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def qualified_call(node: ast.Call, imports: dict[str, str]) -> "str | None":
    """Fully qualified name of *node*'s callee, resolving import aliases.

    ``np.random.default_rng(...)`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``; a bare ``perf_counter()`` imported from
    :mod:`time` resolves to ``time.perf_counter``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def called_name(node: ast.Call) -> "str | None":
    """Last component of the callee's dotted name (``default_rng``)."""
    name = dotted_name(node.func)
    return name.rpartition(".")[2] if name else None


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Whether *node* carries a ``@dataclass`` / ``@dataclasses.dataclass``
    decorator (bare or called)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name and name.rpartition(".")[2] == "dataclass":
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> dict[str, int]:
    """Field name -> definition line for a dataclass body.

    Covers annotated assignments at class-body level, excluding
    ``ClassVar`` annotations (not fields per the dataclass protocol).
    """
    out: dict[str, int] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        out[stmt.target.id] = stmt.lineno
    return out


def identifier_names(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr inside *node* (terminals only)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def walk_functions(node: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync) function definition under *node*, including nested."""
    for child in ast.walk(node):
        if isinstance(child, ast.FunctionDef):
            yield child
