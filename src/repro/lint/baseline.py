"""Baseline file: grandfathered findings, content-addressed and diffable.

The baseline is a checked-in JSON document listing findings that predate a
rule (or are accepted debt).  Entries are keyed by
:attr:`~repro.lint.findings.Finding.content_id` -- a hash of the rule, the
file and the offending line's *text* -- so unrelated edits (line-number
churn) keep entries valid, while fixing or changing a flagged line makes
its entry *stale*.  Stale entries fail the run: the baseline must shrink
in the same commit, keeping it an honest ledger rather than a landfill.

:func:`write_baseline` emits entries sorted by id with a stable layout, so
regeneration (``repro lint --fix-baseline``) produces byte-identical files
for identical findings and reviewable diffs otherwise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "write_baseline",
    "refresh_baseline",
    "diff_against_baseline",
]

BASELINE_VERSION = 1


def load_baseline(path: "Path | str | None") -> dict[str, dict]:
    """Entries by content id; empty when *path* is ``None`` or absent.

    A malformed baseline raises: silently treating it as empty would
    resurface every grandfathered finding as "new" and fail the build
    with a misleading report.
    """
    if path is None:
        return {}
    path = Path(path)
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version in {path}: "
            f"{payload.get('version')!r} (expected {BASELINE_VERSION}); "
            "regenerate with `repro lint --fix-baseline`"
        )
    entries = payload.get("entries", [])
    return {entry["id"]: entry for entry in entries}


def write_baseline(path: "Path | str", findings: Iterable[Finding]) -> int:
    """Write *findings* as the new baseline; returns the entry count.

    Entries carry the human-facing fields (rule, path, message, snippet)
    purely for reviewability -- only ``id`` participates in matching.
    """
    return _write_entries(path, [_entry(f) for f in findings])


def _entry(finding: Finding) -> dict:
    return {
        "id": finding.content_id,
        "rule": finding.rule,
        "path": finding.path,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def _write_entries(path: "Path | str", entries: Iterable[dict]) -> int:
    entries = sorted(entries, key=lambda entry: entry["id"])
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def refresh_baseline(
    path: "Path | str",
    findings: Iterable[Finding],
    checked_paths: "set[str] | None" = None,
) -> "tuple[int, int, int]":
    """Rewrite the baseline from *findings*; returns (total, added,
    pruned).

    Entries whose finding no longer fires are *pruned* -- the baseline
    only ever records what the current tree actually produces.  With
    *checked_paths* (a partial ``--changed --fix-baseline`` run), old
    entries for files outside the checked set are preserved untouched:
    the run cannot know whether they still fire.
    """
    try:
        old = load_baseline(path)
    except (ValueError, json.JSONDecodeError):
        if checked_paths is not None:
            raise  # a partial refresh must trust the old entries
        old = {}  # full regeneration recovers a corrupt baseline
    merged = {
        key: entry for key, entry in old.items()
        if checked_paths is not None
        and entry.get("path") not in checked_paths
    }
    merged.update((f.content_id, _entry(f)) for f in findings)
    total = _write_entries(path, merged.values())
    added = len(set(merged) - set(old))
    pruned = len(set(old) - set(merged))
    return total, added, pruned


def diff_against_baseline(
    findings: Sequence[Finding],
    baseline: dict[str, dict],
    checked_paths: "set[str] | None" = None,
) -> "tuple[list[Finding], list[Finding], list[dict]]":
    """Split *findings* into (new, baselined) and report stale entries.

    Stale entries are baseline ids no current finding produced -- the
    flagged code was fixed or changed, so the entry must be removed.
    On a partial run, *checked_paths* limits staleness to entries for
    files that were actually re-checked: an entry for an unvisited file
    is simply unknown, not stale.
    """
    new: list[Finding] = []
    baselined: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        if finding.content_id in baseline:
            baselined.append(finding)
            seen.add(finding.content_id)
        else:
            new.append(finding)
    stale = [
        entry for key, entry in sorted(baseline.items())
        if key not in seen
        and (checked_paths is None or entry.get("path") in checked_paths)
    ]
    return new, baselined, stale
