"""SARIF 2.1.0 output: arclint findings as a code-scanning document.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests; ``repro lint --format sarif`` emits one run with:

* the full rule catalog under ``tool.driver.rules`` (id, invariant,
  default level), so viewers can show what each ``ARC00x`` protects;
* one ``result`` per finding.  *New* findings carry no suppressions and
  fail CI as usual; *baselined* findings are included with an
  ``external`` suppression (the checked-in baseline is exactly that) and
  inline-suppressed ones with ``inSource``, so the dashboard shows
  accepted debt without alerting on it;
* the finding's content id as a ``partialFingerprints`` entry, which
  keeps GitHub's alert identity stable across unrelated line churn for
  the same reason the baseline keys on it.

The document is rendered with sorted keys and sorted results, so
identical findings produce byte-identical SARIF -- diffable in CI
artifacts just like the baseline file.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lint.findings import Finding
from repro.lint.registry import all_rules

if TYPE_CHECKING:
    from repro.lint.engine import LintReport

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "report_to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_catalog() -> list[dict]:
    rules = []
    for rule in all_rules():
        rules.append({
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.invariant},
            "defaultConfiguration": {"level": rule.severity.value},
            "properties": {"category": rule.category},
        })
    return rules


def _result(finding: Finding, suppression_kind: "str | None") -> dict:
    result = {
        "ruleId": finding.rule,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
        "partialFingerprints": {
            "arclintContentId/v1": finding.content_id,
        },
    }
    if suppression_kind is not None:
        result["suppressions"] = [{"kind": suppression_kind}]
    return result


def _sorted(findings: Iterable[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule,
                                           f.occurrence))


def report_to_sarif(report: "LintReport") -> dict:
    """*report* as a SARIF 2.1.0 document (a plain dict, JSON-ready)."""
    results = [_result(f, None) for f in _sorted(report.new)]
    results += [_result(f, "external") for f in _sorted(report.baselined)]
    results += [_result(f, "inSource") for f in _sorted(report.suppressed)]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "arclint",
                    "rules": _rule_catalog(),
                },
            },
            "results": results,
        }],
    }
