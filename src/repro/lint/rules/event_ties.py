"""ARC007: heap events in the engine carry a monotonic tiebreaker.

The timing engine is a discrete-event simulation: sub-core readiness
events live in a ``heapq`` and strategies *observe engine state* when
they plan, so the order in which equal-time events pop is
result-influencing.  Python's ``heapq`` breaks ties by comparing the
whole pushed value -- for a bare ``(time, payload)`` tuple that means
ties fall through to comparing payloads, which is either an exception
(unorderable payloads) or, worse, a silent dependence on whatever the
payload's comparison happens to be.  The engine's contract
(:mod:`repro.gpu.engine`) is that every *tuple* pushed onto a heap ends
in a monotonically increasing sequence number, so event order is a pure
function of ``(time, explicit keys..., push order)`` and reruns are
bit-identical.

Statically checked on the pushed expression's shape, inside the engine
packages:

* ``heapq.heappush(heap, (...))`` where the tuple has no *sequence
  element* -- a name containing ``seq`` that the function provably
  advances (``seq += 1`` / ``seq = next(...)``), or an inline
  ``next(...)`` call -- is flagged;
* the same applies to ``heap.append((...))`` when ``heap`` is also a
  ``heappush`` target in the same function (the engine seeds its heap by
  appending in order before the event loop);
* scalar pushes (``heappush(heap, t)``) are fine: floats totally order
  and equal floats are interchangeable.

The static check is backed by a runtime assert in the engine's pop loop,
enabled by ``REPRO_SANITIZE=1``, which verifies the popped stream is
strictly increasing -- the dynamic complement for anything this rule
cannot see.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["EventTies"]


def _is_heappush(node: ast.Call, imports: dict[str, str]) -> bool:
    qualified = astutil.qualified_call(node, imports)
    return qualified in ("heapq.heappush", "heapq.heappushpop") \
        and len(node.args) >= 2


def _is_next_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and astutil.called_name(node) == "next")


def _advanced_seq_names(func: ast.AST) -> set[str]:
    """Names the function provably advances monotonically."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Name) \
                and isinstance(node.op, ast.Add):
            names.add(node.target.id)
        elif isinstance(node, ast.Assign) and _is_next_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _has_sequence_element(tuple_node: ast.Tuple,
                          advanced: set[str]) -> bool:
    for element in tuple_node.elts:
        if _is_next_call(element):
            return True
        if isinstance(element, ast.Name) and "seq" in element.id.lower() \
                and element.id in advanced:
            return True
    return False


@register
class EventTies(Rule):
    """Tuple heap pushes end in a monotonic sequence tiebreaker."""

    rule_id = "ARC007"
    category = "determinism"
    invariant = (
        "every tuple pushed onto an engine event heap carries a "
        "monotonically increasing sequence number, so equal-time events "
        "pop in push order on every run"
    )

    def configure(self, config) -> None:
        super().configure(config)
        self.packages = config.engine_packages

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        imports = astutil.import_map(module.tree)
        for func in astutil.walk_functions(module.tree):
            yield from self._check_function(module, func, imports)
        # Module-level pushes (rare, but the contract still applies).
        top_level = ast.Module(
            body=[s for s in module.tree.body
                  if not isinstance(s, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))],
            type_ignores=[],
        )
        yield from self._check_function(module, top_level, imports)

    def _check_function(
        self, module: "ModuleInfo", func: ast.AST, imports: dict[str, str]
    ) -> Iterable[Finding]:
        pushes: list[ast.Call] = []
        heap_names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.FunctionDef) and node is not func:
                continue  # nested defs are walked on their own
            if isinstance(node, ast.Call) and _is_heappush(node, imports):
                pushes.append(node)
                target = astutil.dotted_name(node.args[0])
                if target:
                    heap_names.add(target)
        if not pushes:
            return
        advanced = _advanced_seq_names(func)
        for push in pushes:
            yield from self._check_push(
                module, push, push.args[1], advanced
            )
        # Appends that seed a heap later served by heappush.
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "append"
                    and len(node.args) == 1
                    and astutil.dotted_name(node.func.value)
                    in heap_names):
                yield from self._check_push(
                    module, node, node.args[0], advanced
                )

    def _check_push(
        self, module: "ModuleInfo", site: ast.Call, value: ast.AST,
        advanced: set[str]
    ) -> Iterable[Finding]:
        if not isinstance(value, ast.Tuple):
            return  # scalar pushes totally order on their own
        if _has_sequence_element(value, advanced):
            return
        yield self.finding(
            module, site.lineno,
            "tuple pushed onto an event heap without a monotonic "
            "sequence tiebreaker; equal-time events would compare "
            "payloads, making pop order run-dependent -- append a "
            "`push_seq` counter element (incremented after every push)",
        )
