"""ARC001: every dataclass field must be reachable from its fingerprint.

The PR 1 stale-cache incident: a cache key schema enumerated dataclass
fields by hand, a later field was added to the dataclass but not the
schema, and the cache silently served results computed under different
configs.  This rule makes that divergence a build failure, two ways:

1. **Explicit fingerprint methods.**  A dataclass method named
   ``fingerprint`` or ``to_dict`` that enumerates fields by hand
   (``self.x`` reads / ``"x"`` literals) must mention *every* field.
   Methods built on a generic enumerator (``dataclasses.asdict``,
   ``dataclasses.fields``, ``vars``, or delegating to ``self.to_dict()``)
   are complete by construction and pass.

2. **Key-schema constants.**  A module-level ``*_FIELDS`` tuple/list of
   field-name strings (the ``diskcache._KEY_FIELDS`` style) is
   cross-checked against the dataclass it names: entries must exist as
   fields, and no field may be absent from the schema.  The schema is
   matched to the dataclass whose field set it overlaps most, so the
   check follows renames without explicit wiring.

Intentional exclusions (a cosmetic ``name`` that must not invalidate
caches) are recorded with an inline ``# arclint: disable=ARC001`` on the
method definition line, next to the docstring that justifies them.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["FingerprintCompleteness"]

#: Methods whose body is expected to reach every field.
_FINGERPRINT_METHODS = ("fingerprint", "to_dict")

#: Callees that enumerate fields generically (complete by construction).
_GENERIC_ENUMERATORS = {"asdict", "astuple", "fields", "vars"}


def _is_schema_name(name: str) -> bool:
    return name.endswith("_FIELDS")


def _schema_entries(node: ast.AST) -> "list[str] | None":
    """String entries of a tuple/list/set display, or ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    entries = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        entries.append(element.value)
    return entries


def _uses_generic_enumerator(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = astutil.called_name(node)
        if name in _GENERIC_ENUMERATORS:
            return True
        # Delegation to the (already checked) to_dict of the same object.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "to_dict"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            return True
    return False


def _referenced_fields(func: ast.FunctionDef, fields: set[str]) -> set[str]:
    """Fields the method body mentions, via ``self.x`` or a ``"x"`` literal
    (dict keys, ``getattr(self, "x")``)."""
    seen: set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in fields):
            seen.add(node.attr)
        elif (isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in fields):
            seen.add(node.value)
    return seen


@register
class FingerprintCompleteness(Rule):
    """Fingerprints and key schemas must cover every dataclass field."""

    rule_id = "ARC001"
    category = "cache-integrity"
    needs_all_modules = True  # finalize() matches schemas to dataclasses
    invariant = (
        "every dataclass field is reachable from the fingerprint / key "
        "schema that caches results computed from it"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        classes = ctx.shared.setdefault("ARC001.dataclasses", {})
        schemas = ctx.shared.setdefault("ARC001.schemas", [])
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and astutil.is_dataclass_def(node):
                fields = {
                    name: line
                    for name, line in astutil.dataclass_fields(node).items()
                    if not name.startswith("_")
                }
                classes[node.name] = (module.rel_path, set(fields))
                yield from self._check_methods(module, node, set(fields))
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_schema_name(target.id):
                    entries = _schema_entries(node.value)
                    if entries is not None:
                        schemas.append(
                            (module, node.lineno, target.id, entries)
                        )

    def _check_methods(
        self, module: "ModuleInfo", node: ast.ClassDef, fields: set[str]
    ) -> Iterable[Finding]:
        if not fields:
            return
        for stmt in node.body:
            if not (isinstance(stmt, ast.FunctionDef)
                    and stmt.name in _FINGERPRINT_METHODS):
                continue
            if _uses_generic_enumerator(stmt):
                continue
            missing = fields - _referenced_fields(stmt, fields)
            if missing:
                yield self.finding(
                    module, stmt.lineno,
                    f"{node.name}.{stmt.name} never reaches field(s) "
                    f"{', '.join(sorted(missing))}; results keyed by it can "
                    "be served for inputs they were not produced with "
                    "(enumerate the fields, use dataclasses.asdict/fields, "
                    "or suppress with a justification if the exclusion is "
                    "intentional)",
                )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        classes: dict = ctx.shared.get("ARC001.dataclasses", {})
        for module, lineno, name, entries in ctx.shared.get(
            "ARC001.schemas", []
        ):
            schema = set(entries)
            best_name, best_fields, best_overlap = None, set(), 0
            for cls_name, (_, fields) in sorted(classes.items()):
                overlap = len(schema & fields)
                if overlap > best_overlap:
                    best_name, best_fields, best_overlap = (
                        cls_name, fields, overlap
                    )
            # Require a majority overlap before treating the constant as a
            # key schema of that class; unrelated string tuples stay quiet.
            if best_name is None or best_overlap * 2 < len(schema):
                continue
            missing = best_fields - schema
            unknown = schema - best_fields
            if missing:
                yield self.finding(
                    module, lineno,
                    f"key schema {name} omits field(s) "
                    f"{', '.join(sorted(missing))} of {best_name}; cache "
                    "keys built from it under-hash the config and can "
                    "serve stale results",
                )
            if unknown:
                yield self.finding(
                    module, lineno,
                    f"key schema {name} lists "
                    f"{', '.join(sorted(unknown))} which are not field(s) "
                    f"of {best_name}; the schema is stale",
                )
