"""ARC006: unit contracts hold across call boundaries.

ARC003 checks unit arithmetic *inside* an expression or function; this
rule checks the seams between functions, where the reproduction has
actually been bitten: a helper computes a nanosecond service time, a
caller three modules away feeds it into a ``*_cycles`` parameter, and
every individual expression looks locally consistent.

Built on the same dataflow layer, using the interprocedural pieces:

* **call-site mismatch** -- an argument whose converged abstract unit is
  nanoseconds reaches a parameter whose name declares cycles (or vice
  versa).  Works positionally and by keyword, and through dataclass
  constructors (``KernelTrace(compute_cycles=service_ns)``);
* **return mismatch** -- a function whose *name* declares a unit
  (``def issue_cycles(...)``) returns a value the interpreter proves to
  be the other unit, possibly obtained from further calls via their
  summaries.

A value's unit can travel any number of calls before the mismatch: the
fixpoint in :mod:`repro.lint.dataflow.summaries` converges the return
units first, so ``a() -> b() -> c()`` chains need no special casing
here.  Multiplying by ``clock_ghz`` (or dividing cycles by it) converts
the unit in the lattice itself, so properly converted values cross any
boundary silently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lint.dataflow import analysis_for
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["InterprocUnits"]


@register
class InterprocUnits(Rule):
    """ns/cycles contracts of parameters and returns hold at call sites."""

    rule_id = "ARC006"
    category = "unit-safety"
    invariant = (
        "a value tagged nanoseconds never reaches a cycles-typed "
        "parameter or return (or vice versa) without a clock conversion"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        analysis = analysis_for(ctx)
        for conflict in analysis.conflicts_in(module):
            if conflict.kind == "arg":
                callee, param = conflict.names
                yield self.finding(
                    module, conflict.line,
                    f"{conflict.left}-valued argument passed to "
                    f"parameter `{param}` of `{callee}`, which declares "
                    f"{conflict.right}; convert through clock_ghz at "
                    "the call site or fix the parameter's contract",
                )
            elif conflict.kind == "return":
                (qname,) = conflict.names
                yield self.finding(
                    module, conflict.line,
                    f"`{qname}` declares a {conflict.right} return "
                    f"through its name but returns a "
                    f"{conflict.left}-valued expression; convert before "
                    "returning or rename the function",
                )
