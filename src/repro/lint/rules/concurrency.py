"""ARC009-ARC012: process-safety of the multi-process experiment stack.

The experiment runner fans cells across a ``spawn``
:class:`~concurrent.futures.ProcessPoolExecutor`; the disk cache, the
quarantine dir, the manifest journal and the ``REPRO_OBSLOG`` sink are
all written by several processes at once.  These rules make the three
disciplines that keep that sound *checkable*, on top of the
process-context analysis (:mod:`repro.lint.dataflow.procctx`) and the
shared-resource escape analysis (:mod:`repro.lint.dataflow.resources`):

* **ARC009 -- sound write protocols.**  Every write whose path reaches a
  shared resource class must be a private temp file + ``os.replace``
  (readers see old or new, never a mix) or an ``os.open(...O_APPEND)``
  single-``write`` (appends land whole).  Raw ``open(path, "w")`` /
  ``write_text`` / buffered ``open(path, "a")`` on a shared path lets a
  concurrent reader observe a torn file.
* **ARC010 -- spawn inherits nothing.**  A spawn worker re-imports every
  module, so module-level mutations made by the parent *after* import
  never arrive.  A global that is only ever written in parent context
  but read in worker context is therefore silently stale in the worker;
  the value must travel via submit arguments, the pool initializer, or a
  declared environment variable.
* **ARC011 -- the spawn-carry set is the env contract.**  Workers see
  the parent's environment as snapshotted at pool construction: mutating
  ``os.environ`` after a pool exists (or inside a worker) configures
  nobody, and a worker-context read of a ``REPRO_*`` key only works if
  that key is exported before construction -- i.e. is declared in
  :attr:`~repro.lint.engine.LintConfig.spawn_carry_env`.
* **ARC012 -- one protocol per resource.**  Atomicity protocols only
  compose with themselves: an ``O_APPEND`` writer interleaved with an
  atomic-rename rewriter of the same file can lose the append that
  landed between the rename's read and replace.  All (sound) writers of
  one resource class must agree on a single protocol.

All four are finalize-only rules over the process-safety scope
(``repro/experiments`` plus ``repro/obslog.py`` by default) and share
one ``(contexts, resources)`` analysis pair per run.  The static model
ARC009/ARC012 consume is cross-checked at runtime by the
``REPRO_SANITIZE`` I/O shim (:mod:`repro.experiments.iosan`): protocols
the shim observes during the chaos suite must be a subset of the model,
so analysis unsoundness surfaces as a test failure.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.dataflow import FunctionSymbol, analysis_for
from repro.lint.dataflow.procctx import BOTH, WORKER, ProcessContexts
from repro.lint.dataflow.resources import (
    PROTOCOL_BUFFERED_APPEND,
    PROTOCOL_RAW_WRITE,
    SOUND_PROTOCOLS,
    ResourceModel,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = [
    "SharedWriteProtocol",
    "SpawnGlobalCarry",
    "SpawnEnvDiscipline",
    "ResourceProtocolAgreement",
]

_SHARED_KEY = "procsafety.analyses"

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "update", "setdefault", "pop", "extend",
    "insert", "remove", "discard", "popitem", "appendleft",
})

#: ``os.environ`` methods that mutate the environment.
_ENV_MUTATORS = frozenset({"pop", "setdefault", "update", "clear"})


def _scope_modules(ctx: "LintContext") -> "list[ModuleInfo]":
    config = ctx.config
    out = []
    for module in ctx.modules:
        if module.tree is None:
            continue
        in_package = any(
            part in config.procsafety_packages
            for part in module.rel_parts[:-1]
        )
        stem = Path(module.rel_parts[-1]).stem
        if in_package or stem in config.procsafety_module_stems:
            out.append(module)
    return out


def _analyses(
    ctx: "LintContext",
) -> "tuple[list[ModuleInfo], ProcessContexts, ResourceModel]":
    """The run's shared (scope, contexts, resources) triple."""
    cached = ctx.shared.get(_SHARED_KEY)
    if cached is None:
        analysis = analysis_for(ctx)
        scope = _scope_modules(ctx)
        contexts = ProcessContexts(analysis.table, analysis.graph, ctx.config)
        resources = ResourceModel(
            analysis.table, analysis.graph, ctx.config, scope
        )
        cached = (scope, contexts, resources)
        ctx.shared[_SHARED_KEY] = cached
    return cached


def _module_for(ctx: "LintContext", rel_path: str) -> "ModuleInfo | None":
    for module in ctx.modules:
        if module.rel_path == rel_path:
            return module
    return None


def _scope_functions(
    ctx: "LintContext", scope: "list[ModuleInfo]"
) -> "list[FunctionSymbol]":
    table = analysis_for(ctx).table
    scope_ids = {id(module) for module in scope}
    return [fn for fn in table.functions() if id(fn.module) in scope_ids]


class _ProcessSafetyRule(Rule):
    """Shared scaffolding: finalize-only, whole-tree, process-safety."""

    category = "process-safety"
    needs_all_modules = True


@register
class SharedWriteProtocol(_ProcessSafetyRule):
    """ARC009: shared files are written atomically or O_APPEND."""

    rule_id = "ARC009"
    invariant = (
        "every write to a shared resource path (cache entries, "
        "quarantine, manifest journal, obslog sink) uses a private temp "
        "file + os.replace or an os.open(O_APPEND) single write; raw "
        "open(path, 'w')/'a'/write_text can be observed torn by a "
        "concurrent reader"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        _, _, resources = _analyses(ctx)
        for access in resources.writes():
            if access.protocol not in (PROTOCOL_RAW_WRITE,
                                       PROTOCOL_BUFFERED_APPEND):
                continue
            module = _module_for(ctx, access.module_path)
            if module is None:
                continue
            how = ("a buffered append" if
                   access.protocol == PROTOCOL_BUFFERED_APPEND
                   else "a raw in-place write")
            yield self.finding(
                module, access.line,
                f"{how} to shared resource '{access.resource}' "
                f"({access.detail}): a concurrent process can read the "
                "file mid-write; write a private temp file and "
                "os.replace() it over the target, or append one "
                "complete record via os.open(..., O_APPEND) + a single "
                "os.write",
            )


@register
class SpawnGlobalCarry(_ProcessSafetyRule):
    """ARC010: parent-mutated globals are invisible to spawn workers."""

    rule_id = "ARC010"
    invariant = (
        "module-level mutable state read in spawn-worker context is "
        "never written only by the parent: spawn re-imports modules, so "
        "parent mutations after import do not reach workers -- carry "
        "the value via submit arguments, the pool initializer, or a "
        "declared REPRO_* environment variable"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        scope, contexts, _ = _analyses(ctx)
        functions = _scope_functions(ctx, scope)
        by_module: dict[int, list[FunctionSymbol]] = {}
        for fn in functions:
            by_module.setdefault(id(fn.module), []).append(fn)
        for module in scope:
            globals_ = _module_level_names(module.tree)
            if not globals_:
                continue
            writers: dict[str, list[str]] = {}
            readers: dict[str, list[tuple[FunctionSymbol, int]]] = {}
            for fn in by_module.get(id(module), ()):  # noqa: B020
                usage = _global_usage(fn, globals_)
                for name in usage.writes:
                    writers.setdefault(name, []).append(fn.qname)
                for name, line in usage.reads:
                    readers.setdefault(name, []).append((fn, line))
            for name, writer_qnames in sorted(writers.items()):
                if any(contexts.worker_context(q) for q in writer_qnames):
                    # A worker-side writer means the worker establishes
                    # its own copy (initializer pattern) -- sound.
                    continue
                flagged: set[int] = set()
                for fn, line in readers.get(name, ()):  # noqa: B020
                    if not contexts.worker_context(fn.qname):
                        continue
                    if line in flagged:
                        continue
                    flagged.add(line)
                    context = contexts.context_of(fn.qname)
                    side = ("worker" if context == WORKER
                            else "worker-reachable")
                    yield self.finding(
                        module, line,
                        f"global '{name}' is written only in parent "
                        f"context ({', '.join(sorted(set(writer_qnames)))}) "
                        f"but read here in {side} context "
                        f"({fn.qname}): spawn workers re-import the "
                        "module and never see parent mutations; carry "
                        "the value via submit arguments, the pool "
                        "initializer, or a declared REPRO_* env var",
                    )


@register
class SpawnEnvDiscipline(_ProcessSafetyRule):
    """ARC011: env mutations precede pools; worker reads are declared."""

    rule_id = "ARC011"
    invariant = (
        "os.environ is never mutated after a worker pool is constructed "
        "(workers snapshot the environment at construction) or inside "
        "worker context, and every worker-context read of a REPRO_* key "
        "is declared in the spawn-carry set"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        scope, contexts, _ = _analyses(ctx)
        table = analysis_for(ctx).table
        carry = set(ctx.config.spawn_carry_env)
        prefixes = tuple(ctx.config.env_prefixes)
        constants = _module_constants(ctx)
        for fn in _scope_functions(ctx, scope):
            module = fn.module
            module_name = table.name_of(module)
            imports = table.imports[module_name]
            in_worker = contexts.worker_context(fn.qname)
            nodes = list(_walked(fn.node))
            pool_lines = [
                node.lineno for node in nodes
                if isinstance(node, ast.Call) and _is_pool_ctor(node)
            ]
            pool_line = min(pool_lines) if pool_lines else None
            for node in nodes:
                line = getattr(node, "lineno", 0)
                mutation = _env_mutation(node, imports)
                if mutation is not None:
                    if in_worker:
                        yield self.finding(
                            module, line,
                            f"os.environ {mutation} in worker-reachable "
                            f"context ({fn.qname}): a worker mutating "
                            "its own environment snapshot configures "
                            "nothing outside that process and leaks "
                            "state across the cells the worker is "
                            "reused for",
                        )
                    elif pool_line is not None and line > pool_line:
                        yield self.finding(
                            module, line,
                            f"os.environ {mutation} after a worker pool "
                            f"was constructed (line {pool_line}): spawn "
                            "workers snapshot the environment at "
                            "construction, so this value never reaches "
                            "them; export it before building the pool",
                        )
                if in_worker and isinstance(node, ast.expr):
                    key = _env_read_key(node, module_name, imports,
                                        constants)
                    if (key is not None and key.startswith(prefixes)
                            and key not in carry):
                        yield self.finding(
                            module, line,
                            f"worker-context read of env var '{key}' "
                            f"({fn.qname}) that is not in the "
                            "spawn-carry set: the key is only visible "
                            "to workers if it is exported before pool "
                            "construction; add it to "
                            "LintConfig.spawn_carry_env alongside the "
                            "export, or pass the value via submit "
                            "arguments",
                        )


@register
class ResourceProtocolAgreement(_ProcessSafetyRule):
    """ARC012: all writers of one resource share one protocol."""

    rule_id = "ARC012"
    invariant = (
        "all concurrent writers of one shared resource class use a "
        "single atomicity protocol: O_APPEND appends interleaved with "
        "atomic-rename rewrites of the same file can lose records"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        _, _, resources = _analyses(ctx)
        by_resource: dict[str, list] = {}
        for access in resources.writes():
            if access.protocol in SOUND_PROTOCOLS:
                by_resource.setdefault(access.resource, []).append(access)
        for resource, accesses in sorted(by_resource.items()):
            protocols = {access.protocol for access in accesses}
            if len(protocols) <= 1:
                continue
            counts: dict[str, int] = {}
            for access in accesses:
                counts[access.protocol] = counts.get(access.protocol, 0) + 1
            dominant = min(
                counts, key=lambda proto: (-counts[proto], proto)
            )
            for access in accesses:
                if access.protocol == dominant:
                    continue
                module = _module_for(ctx, access.module_path)
                if module is None:
                    continue
                yield self.finding(
                    module, access.line,
                    f"resource '{resource}' is written with protocol "
                    f"'{access.protocol}' here but "
                    f"'{dominant}' elsewhere "
                    f"({counts[dominant]} site(s)): mixed atomicity "
                    "protocols on one resource can lose concurrent "
                    "updates; converge every writer on one protocol",
                )


# Helpers -------------------------------------------------------------- #


def _walked(node: ast.AST) -> Iterable[ast.AST]:
    return ast.walk(node)


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound by module-level assignments (candidate globals)."""
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(
                    elt.id for elt in target.elts
                    if isinstance(elt, ast.Name)
                )
    return names


class _GlobalUsage:
    def __init__(self) -> None:
        self.writes: set[str] = set()
        self.reads: list[tuple[str, int]] = []


def _global_usage(fn: FunctionSymbol, globals_: set[str]) -> _GlobalUsage:
    """Which module globals *fn* writes (rebind/mutate) and reads.

    A name locally rebound without a ``global`` declaration shadows the
    module global, so its uses are neither reads nor writes of it.
    """
    usage = _GlobalUsage()
    declared: set[str] = set()
    stored: set[str] = set()
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else [])]:
        stored.add(arg.arg)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            stored.add(node.id)
    for name in globals_:
        if name in declared and name in stored:
            usage.writes.add(name)
    shadowed = {
        name for name in stored
        if name in globals_ and name not in declared
    }
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in globals_
                    and func.value.id not in shadowed):
                usage.writes.add(func.value.id)
        elif (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and node.value.id in globals_
                and node.value.id not in shadowed):
            usage.writes.add(node.value.id)
        elif (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                and node.id in globals_ and node.id not in shadowed):
            usage.reads.append((node.id, node.lineno))
    return usage


def _is_pool_ctor(node: ast.Call) -> bool:
    name = astutil.called_name(node)
    if not name or not name[0].isupper():
        return False
    return "Executor" in name or name.endswith("Pool")


def _environ_expr(node: ast.AST, imports: dict) -> bool:
    """Whether *node* denotes ``os.environ`` (through import aliases)."""
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return False
    if dotted == "os.environ":
        return True
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    qualified = f"{origin}.{rest}" if origin and rest else origin
    return qualified == "os.environ" or dotted == "environ" and (
        imports.get("environ") == "os.environ"
    )


def _env_mutation(node: ast.AST, imports: dict) -> "str | None":
    """Describe the env mutation *node* performs, or ``None``."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if (isinstance(target, ast.Subscript)
                    and _environ_expr(target.value, imports)):
                return "item assignment"
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and _environ_expr(target.value, imports)):
                return "item deletion"
    elif isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _ENV_MUTATORS
                and _environ_expr(func.value, imports)):
            return f".{func.attr}() call"
        qualified = astutil.qualified_call(node, imports)
        if qualified in ("os.putenv", "os.unsetenv"):
            return f"{qualified}() call"
    return None


def _module_constants(ctx: "LintContext") -> dict[str, dict[str, str]]:
    """module dotted name -> {constant name: string value}."""
    table = analysis_for(ctx).table
    out: dict[str, dict[str, str]] = {}
    for module in ctx.modules:
        if module.tree is None:
            continue
        consts: dict[str, str] = {}
        for stmt in module.tree.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                consts[stmt.targets[0].id] = stmt.value.value
        out[table.name_of(module)] = consts
    return out


def _resolve_key(
    node: ast.AST, module_name: str, imports: dict,
    constants: dict[str, dict[str, str]],
) -> "str | None":
    """String value of an env-key expression, where provable."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return None
    value = constants.get(module_name, {}).get(dotted)
    if value is not None:
        return value
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return None
    qualified = f"{origin}.{rest}" if rest else origin
    owner, _, const = qualified.rpartition(".")
    for name, consts in constants.items():
        if name == owner or name.endswith(f".{owner}"):
            if const in consts:
                return consts[const]
    return None


def _env_read_key(
    node: ast.expr, module_name: str, imports: dict,
    constants: dict[str, dict[str, str]],
) -> "str | None":
    """Env key an expression reads via environ/getenv, if resolvable."""
    key_expr: "ast.AST | None" = None
    if isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "get"
                and _environ_expr(func.value, imports) and node.args):
            key_expr = node.args[0]
        elif (astutil.qualified_call(node, imports) == "os.getenv"
                and node.args):
            key_expr = node.args[0]
    elif (isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and _environ_expr(node.value, imports)):
        key_expr = node.slice
    if key_expr is None:
        return None
    return _resolve_key(key_expr, module_name, imports, constants)
