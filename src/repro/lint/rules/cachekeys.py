"""ARC008: fields that influence results must reach the fingerprint.

ARC001 checks a fingerprint *locally*: the method enumerates every
field of its own dataclass (or justifies exclusions with a suppression).
This rule closes the loop those suppressions open: an excluded field is
only safe if nothing result-influencing ever reads it.  The disk cache
keys simulation results by fingerprints -- if the engine's behaviour
depends on a field the fingerprint omits, two configs that differ only
in that field share a cache slot and one of them silently gets the
other's results.

Whole-program check, built on the dataflow symbol table:

1. collect every fingerprinted dataclass (a ``fingerprint``/``to_dict``
   method that hand-enumerates fields) and its *excluded* set -- fields
   the dataclass declares but the method never references.  Methods
   using a generic enumerator (``asdict`` & co.) exclude nothing;
2. inside the engine packages, type every attribute read: parameter
   annotations, ``self`` receivers, annotated instance attributes,
   locals bound from constructors or annotated-return calls, and loop
   variables over annotated containers;
3. a read of an excluded field is flagged -- unless it occurs in a
   *label-only* context, where the value demonstrably cannot steer the
   simulation: a keyword argument named like a label (``name=``,
   ``trace_name=``, ...), a string-keyed label entry in a dict literal,
   or an f-string (presentation, error messages).

The canonical allowed case is :class:`repro.trace.events.KernelTrace`'s
cosmetic ``name``: excluded from the fingerprint (with a justified
ARC001 suppression) and only ever read as ``trace_name=trace.name`` or
inside f-strings.  Renaming a trace must not change which cache entry it
hits; feeding ``trace.name`` into a branch in the engine would.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.dataflow import (
    ClassSymbol,
    analysis_for,
    annotation_name,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.fingerprints import (
    _FINGERPRINT_METHODS,
    _referenced_fields,
    _uses_generic_enumerator,
)

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["CacheKeyTaint"]

_SHARED_KEY = "cachekeys.excluded"

#: Keyword / dict-key names whose values are presentation-only.
_LABEL_KEYWORDS = {"name", "trace_name", "label", "title", "description"}

#: Container annotation heads whose element type we can extract.
_CONTAINER_HEADS = {"list", "List", "tuple", "Tuple", "Sequence",
                    "Iterable", "Iterator", "FrozenSet", "Set"}


def _excluded_fields(cls: ClassSymbol) -> "tuple[str, set[str]] | None":
    """(method name, excluded field set) for a fingerprinted dataclass."""
    if not cls.is_dataclass or not cls.fields:
        return None
    for method_name in _FINGERPRINT_METHODS:
        method = cls.methods.get(method_name)
        if method is None:
            continue
        if _uses_generic_enumerator(method.node):
            return None  # complete by construction
        fields = set(cls.fields)
        excluded = fields - _referenced_fields(method.node, fields)
        if excluded:
            return method_name, excluded
        return None
    return None


def _element_class_name(node: "ast.AST | None") -> "str | None":
    """Element class of a container annotation (``list[KernelTrace]``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value.strip(), mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = astutil.dotted_name(node.value)
        if head and head.rpartition(".")[2] in _CONTAINER_HEADS:
            return annotation_name(node.slice)
    return None


def _label_read_ids(func: ast.AST) -> set[int]:
    """ids of Attribute nodes appearing in label-only positions."""
    label_roots: list[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg in _LABEL_KEYWORDS:
                    label_roots.append(keyword.value)
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant)
                        and key.value in _LABEL_KEYWORDS):
                    label_roots.append(value)
        elif isinstance(node, ast.JoinedStr):
            label_roots.append(node)
    out: set[int] = set()
    for root in label_roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute):
                out.add(id(node))
    return out


@register
class CacheKeyTaint(Rule):
    """Excluded fingerprint fields never steer engine behaviour."""

    rule_id = "ARC008"
    category = "cache-integrity"
    invariant = (
        "every dataclass field the engine's behaviour depends on is "
        "reachable from its fingerprint enumeration; excluded fields are "
        "read only in label contexts"
    )

    def configure(self, config) -> None:
        super().configure(config)
        self.packages = config.engine_packages

    # ------------------------------------------------------------------ #

    def _exclusions(self, ctx: "LintContext"):
        """class qname -> (ClassSymbol, method name, excluded fields)."""
        cached = ctx.shared.get(_SHARED_KEY)
        if cached is not None:
            return cached
        analysis = analysis_for(ctx)
        exclusions: dict[str, tuple[ClassSymbol, str, set[str]]] = {}
        for cls in analysis.table.classes():
            info = _excluded_fields(cls)
            if info is not None:
                exclusions[cls.qname] = (cls, info[0], info[1])
        ctx.shared[_SHARED_KEY] = exclusions
        return exclusions

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        exclusions = self._exclusions(ctx)
        if not exclusions:
            return
        analysis = analysis_for(ctx)
        watched_fields = {
            field
            for _, _, excluded in exclusions.values()
            for field in excluded
        }
        for function in analysis.table.functions():
            if function.module is not module:
                continue
            yield from self._check_function(
                module, function, analysis, exclusions, watched_fields
            )

    def _check_function(self, module, function, analysis, exclusions,
                        watched_fields) -> Iterable[Finding]:
        # The fingerprint method needs no special casing: by definition
        # it never references the fields it excludes.
        types = self._type_env(module, function, analysis)
        label_ids = _label_read_ids(function.node)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Attribute) \
                    or node.attr not in watched_fields \
                    or id(node) in label_ids:
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                continue
            cls = self._receiver_class(node.value, types, function,
                                       analysis, module)
            if cls is None or cls.qname not in exclusions:
                continue
            _, method_name, excluded = exclusions[cls.qname]
            if node.attr not in excluded:
                continue
            yield self.finding(
                module, node.lineno,
                f"`{cls.name}.{node.attr}` is excluded from "
                f"`{cls.name}.{method_name}()` but is read here in a "
                "result-influencing position; cached results keyed by "
                "that fingerprint would collide across values of "
                f"`{node.attr}` -- add the field to the fingerprint or "
                "restrict the read to a label context",
            )

    # Typing ------------------------------------------------------------- #

    def _type_env(self, module, function, analysis):
        """name -> ClassSymbol for this function's receivers."""
        table = analysis.table
        types: dict[str, ClassSymbol] = {}
        args = function.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            cls = table.resolve_class_name(
                module, annotation_name(arg.annotation)
            )
            if cls is not None:
                types[arg.arg] = cls
        if function.cls is not None:
            types.setdefault("self", function.cls)
        for node in ast.walk(function.node):
            if isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                cls = table.resolve_class_name(
                    module, annotation_name(node.annotation)
                )
                if cls is not None:
                    types.setdefault(node.target.id, cls)
            elif isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                cls = self._call_result_class(module, node.value, table)
                if cls is not None:
                    types.setdefault(node.targets[0].id, cls)
            elif isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.target, ast.Name):
                cls = self._iter_element_class(module, node.iter,
                                               function, table)
                if cls is not None:
                    types.setdefault(node.target.id, cls)
        return types

    def _call_result_class(self, module, call, table):
        symbol = table.resolve_call(module, call)
        if isinstance(symbol, ClassSymbol):
            return symbol  # constructor
        if symbol is not None and symbol.node.returns is not None:
            return table.resolve_class_name(
                module, annotation_name(symbol.node.returns)
            )
        return None

    def _iter_element_class(self, module, iter_node, function, table):
        if not isinstance(iter_node, ast.Name):
            return None
        args = function.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == iter_node.id:
                return table.resolve_class_name(
                    module, _element_class_name(arg.annotation)
                )
        return None

    def _receiver_class(self, receiver, types, function, analysis,
                        module):
        if isinstance(receiver, ast.Name):
            return types.get(receiver.id)
        # self.<attr>.<field>: type the instance attribute.
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and function.cls is not None):
            name = function.cls.attr_class.get(receiver.attr)
            return analysis.table.resolve_class_name(module, name)
        return None
