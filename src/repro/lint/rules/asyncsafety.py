"""ARC013-ARC016: async-safety of the simulation service stack.

The service layer (PR 8) runs a single asyncio event loop in front of
the experiment stack's process pools.  Everything on that loop shares
one thread: a blocking call in any coroutine stalls every queued
request at once, a dropped task swallows its exception, an unbounded
await outlives the deadline the client paid for, and a cancellation
landing between an acquire and its release leaks the slot forever.
These rules make those four contracts checkable on top of the
coroutine-context analysis (:mod:`repro.lint.dataflow.asyncctx`):

* **ARC013 -- the loop never blocks.**  No blocking call (sync file
  I/O, ``time.sleep``, ``subprocess``, socket dials, ``Future.result``)
  may be reachable in coroutine context unless it is routed through an
  executor (``run_in_executor`` / ``to_thread``), which the analysis
  models as an escape hatch.  Audited microsecond appends (the obslog
  sink, the manifest journal) are config-allowlisted -- exempt from the
  finding but still part of the static model the runtime sanitizer
  checks against.
* **ARC014 -- await discipline.**  A coroutine call whose result is
  discarded never runs; a ``create_task``/``ensure_future`` whose
  handle is dropped runs but loses its exception.  Both are silent.
* **ARC015 -- deadline taint.**  In a function that handles a
  deadline-carrying request, every await of an unbounded operation
  (bare futures, ``.wait()``/``.get()``/``.acquire()``/``.join()``,
  ``wrap_future``) must be ``asyncio.wait_for``-guarded, and the
  timeout handed to ``wait_for`` must be a *clamped* value, not the
  shared ``self.policy`` default that ignores the remaining budget.
* **ARC016 -- cancellation safety.**  An await is a cancellation
  point.  Queue items taken before one must be balanced by
  ``task_done()`` in a ``finally``; lock/semaphore/breaker-slot
  acquires must ``release()`` in a ``finally`` (or use ``async
  with``); awaited journal/manifest writes must be wrapped in
  ``asyncio.shield`` so a cancelled waiter cannot tear the record.

All four are finalize-only rules scoped to the service packages and
share one ``(scope, contexts)`` analysis per run.  ARC013's model is
cross-checked at runtime by the ``REPRO_SANITIZE`` loop sanitizer
(:mod:`repro.service.loopsan`): blocking frames the sanitizer observes
on the loop thread during the chaos suite must be a subset of
:meth:`~repro.lint.dataflow.asyncctx.AsyncContexts.blocking_model`, so
analysis unsoundness surfaces as a test failure, exactly as iosan does
for the process-safety rules.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint import astutil
from repro.lint.dataflow import FunctionSymbol, analysis_for
from repro.lint.dataflow.asyncctx import (
    TASK_SPAWNERS,
    AsyncContexts,
    classify_call,
    walk_own_body,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = [
    "LoopBlockingCall",
    "AwaitDiscipline",
    "DeadlineTaint",
    "CancellationSafety",
]

_SHARED_KEY = "asyncsafety.analyses"

#: Awaited attribute calls with no intrinsic timeout: the shapes that
#: must sit inside ``asyncio.wait_for`` on a deadline-carrying path.
_UNBOUNDED_AWAIT_METHODS = ("wait", "get", "join", "acquire")

#: Identifier fragment marking a deadline-carrying binding.
_DEADLINE_HINT = "deadline"

#: Receiver fragments for ARC016's three resource families.
_QUEUE_HINTS = ("queue",)
_SLOT_HINTS = ("lock", "sem", "breaker", "slot")
_JOURNAL_HINTS = ("journal", "manifest")
_JOURNAL_WRITE_METHODS = ("record", "append", "write")


def _scope_modules(ctx: "LintContext") -> "list[ModuleInfo]":
    config = ctx.config
    return [
        module for module in ctx.modules
        if module.tree is not None and any(
            part in config.asyncsafety_packages
            for part in module.rel_parts[:-1]
        )
    ]


def _analyses(
    ctx: "LintContext",
) -> "tuple[list[ModuleInfo], AsyncContexts]":
    """The run's shared (scope, async-contexts) pair."""
    cached = ctx.shared.get(_SHARED_KEY)
    if cached is None:
        analysis = analysis_for(ctx)
        scope = _scope_modules(ctx)
        contexts = AsyncContexts(
            analysis.table, analysis.graph, ctx.config
        )
        cached = (scope, contexts)
        ctx.shared[_SHARED_KEY] = cached
    return cached


def _scope_functions(
    ctx: "LintContext", scope: "list[ModuleInfo]"
) -> "list[FunctionSymbol]":
    table = analysis_for(ctx).table
    scope_ids = {id(module) for module in scope}
    return [fn for fn in table.functions() if id(fn.module) in scope_ids]


def _own_calls(fn: FunctionSymbol) -> "Iterator[ast.Call]":
    for node in walk_own_body(fn.node):
        if isinstance(node, ast.Call):
            yield node


def _mentions_deadline(fn: FunctionSymbol) -> bool:
    """Whether *fn* handles a deadline: a parameter, local or attribute
    whose name carries the hint (``request.deadline``, ``remaining``
    derived from ``effective_deadline()`` included by its callee name)."""
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _DEADLINE_HINT in arg.arg.lower():
            return True
    for node in walk_own_body(fn.node):
        if isinstance(node, ast.Name) \
                and _DEADLINE_HINT in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) \
                and _DEADLINE_HINT in node.attr.lower():
            return True
    return False


class _AsyncSafetyRule(Rule):
    """Shared scaffolding: finalize-only, whole-tree, async-safety."""

    category = "async-safety"
    needs_all_modules = True


@register
class LoopBlockingCall(_AsyncSafetyRule):
    """ARC013: no blocking call reachable in coroutine context."""

    rule_id = "ARC013"
    invariant = (
        "no blocking call (sync file I/O, time.sleep, subprocess, "
        "socket dials, Future.result) is reachable in coroutine "
        "context: one stalled callback serializes every queued "
        "request; blocking work runs through run_in_executor/to_thread "
        "or is config-allowlisted as an audited microsecond append"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        scope, contexts = _analyses(ctx)
        allow = set(ctx.config.async_blocking_allowlist)
        scope_ids = {id(module) for module in scope}
        for fn in _scope_functions(ctx, scope):
            if fn.qname not in contexts.coro_set:
                continue
            imports = contexts.table.imports[
                contexts.table.name_of(fn.module)
            ]
            for call in _own_calls(fn):
                reason = classify_call(call, imports, ctx.config)
                if reason is not None:
                    yield self.finding(
                        fn.module, call.lineno,
                        f"{reason} in coroutine context "
                        f"({fn.qname} runs on the event loop); route "
                        "it through run_in_executor/to_thread",
                    )
                    continue
                callee = contexts.resolve_call_target(fn, call)
                if callee is None or callee.is_async:
                    continue
                if callee.qname in allow:
                    continue
                effect = contexts.effects.get(callee.qname)
                if effect is None:
                    continue
                if id(callee.module) in scope_ids:
                    # The callee is itself in scope and coroutine-
                    # reachable through this very edge: the finding
                    # lands at its primitive site, not at every caller.
                    continue
                via = "" if effect.origin == callee.qname \
                    else f" via {effect.origin}"
                yield self.finding(
                    fn.module, call.lineno,
                    f"call to {callee.qname} blocks the event loop "
                    f"({effect.reason}{via}); route it through "
                    "run_in_executor/to_thread",
                )


@register
class AwaitDiscipline(_AsyncSafetyRule):
    """ARC014: coroutines are awaited, task handles are retained."""

    rule_id = "ARC014"
    invariant = (
        "every coroutine call is awaited (a discarded coroutine object "
        "never runs) and every create_task/ensure_future handle is "
        "retained so its exception has somewhere to land"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        scope, contexts = _analyses(ctx)
        for fn in _scope_functions(ctx, scope):
            for node in walk_own_body(fn.node):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)):
                    continue
                call = node.value
                func = call.func
                name = func.attr if isinstance(func, ast.Attribute) \
                    else (func.id if isinstance(func, ast.Name) else None)
                if name in TASK_SPAWNERS:
                    yield self.finding(
                        fn.module, call.lineno,
                        f"{name}() handle is dropped: the task's "
                        "exception is swallowed when it is garbage "
                        "collected; keep the handle and give it an "
                        "exception sink (await it, or add a "
                        "done-callback that logs)",
                    )
                    continue
                callee = contexts.resolve_call_target(fn, call)
                if callee is not None and callee.is_async:
                    yield self.finding(
                        fn.module, call.lineno,
                        f"coroutine {callee.qname}() is never awaited: "
                        "calling an async def only creates the "
                        "coroutine object; await it or schedule it "
                        "with a retained create_task handle",
                    )


@register
class DeadlineTaint(_AsyncSafetyRule):
    """ARC015: deadline-carrying awaits are guarded and clamped."""

    rule_id = "ARC015"
    invariant = (
        "in a function handling a deadline-carrying request, every "
        "await of an unbounded operation sits inside asyncio.wait_for, "
        "and the wait_for timeout is derived from the remaining budget "
        "(RetryPolicy.clamped), never the shared policy default"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        scope, contexts = _analyses(ctx)
        for fn in _scope_functions(ctx, scope):
            if not fn.is_async or not _mentions_deadline(fn):
                continue
            for node in walk_own_body(fn.node):
                if not isinstance(node, ast.Await):
                    continue
                yield from self._check_await(ctx, contexts, fn, node)

    def _check_await(self, ctx, contexts: AsyncContexts,
                     fn: FunctionSymbol,
                     node: ast.Await) -> Iterable[Finding]:
        operand = node.value
        if isinstance(operand, ast.Name):
            yield self.finding(
                fn.module, node.lineno,
                f"bare await of future '{operand.id}' on a "
                "deadline-carrying path: nothing bounds the wait; "
                "wrap it in asyncio.wait_for with the remaining "
                "budget",
            )
            return
        if not isinstance(operand, ast.Call):
            return
        dotted = astutil.dotted_name(operand.func) or ""
        tail = dotted.rpartition(".")[2]
        head = dotted.partition(".")[0]
        if tail == "wait_for":
            yield from self._check_clamp(fn, operand)
            return
        if head == "asyncio" or tail in ("sleep", "shield", "gather",
                                         "wait_for"):
            # asyncio.sleep is the budget's own pacing; shield/gather
            # contents are judged where their coroutines are defined.
            return
        callee = contexts.resolve_call_target(fn, operand)
        if callee is not None:
            # A project coroutine: its own awaits are judged in its
            # own body, where the deadline taint travels with it.
            return
        if tail in _UNBOUNDED_AWAIT_METHODS or tail == "wrap_future":
            yield self.finding(
                fn.module, node.lineno,
                f"unbounded await {dotted}() on a deadline-carrying "
                "path: the wait can outlive the request's budget; "
                "guard it with asyncio.wait_for(remaining) or clamp "
                "it into the RetryPolicy",
            )

    def _check_clamp(self, fn: FunctionSymbol,
                     call: ast.Call) -> Iterable[Finding]:
        timeout: "ast.AST | None" = None
        if len(call.args) >= 2:
            timeout = call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "timeout":
                timeout = keyword.value
        dotted = astutil.dotted_name(timeout) if timeout is not None \
            else None
        if dotted and dotted.startswith("self.") and "policy" in dotted:
            yield self.finding(
                fn.module, call.lineno,
                f"wait_for timeout {dotted} is the shared policy "
                "default, not the request's remaining budget; derive "
                "it via policy.clamped(remaining) so the guard cannot "
                "outlive the deadline",
            )


@register
class CancellationSafety(_AsyncSafetyRule):
    """ARC016: loop-held resources survive cancellation."""

    rule_id = "ARC016"
    invariant = (
        "resources acquired across an await survive cancellation: "
        "queue items taken before an await are balanced by task_done() "
        "in a finally, lock/semaphore/breaker-slot acquires release() "
        "in a finally (or use async with), and awaited journal writes "
        "are asyncio.shield-wrapped so a cancelled waiter cannot tear "
        "the record"
    )

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        scope, _ = _analyses(ctx)
        for fn in _scope_functions(ctx, scope):
            if not fn.is_async:
                continue
            finally_calls = _finally_call_names(fn)
            for node in walk_own_body(fn.node):
                if not (isinstance(node, ast.Await)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Attribute)):
                    continue
                func = node.value.func
                receiver = (astutil.dotted_name(func.value) or "").lower()
                if func.attr == "get" \
                        and any(h in receiver for h in _QUEUE_HINTS) \
                        and "task_done" not in finally_calls:
                    yield self.finding(
                        fn.module, node.lineno,
                        f"queue item taken from {receiver} with no "
                        "task_done() in a finally: a cancellation "
                        "after this await strands the item and "
                        "deadlocks queue.join()",
                    )
                elif func.attr == "acquire" \
                        and any(h in receiver for h in _SLOT_HINTS) \
                        and "release" not in finally_calls:
                    yield self.finding(
                        fn.module, node.lineno,
                        f"{receiver}.acquire() with no release() in a "
                        "finally: a cancellation landing on a later "
                        "await leaks the slot forever; release in a "
                        "finally or use 'async with'",
                    )
                elif func.attr in _JOURNAL_WRITE_METHODS \
                        and any(h in receiver for h in _JOURNAL_HINTS):
                    yield self.finding(
                        fn.module, node.lineno,
                        f"awaited journal write {receiver}."
                        f"{func.attr}() is not shielded: a cancelled "
                        "waiter tears the record mid-write; wrap it "
                        "in asyncio.shield(...)",
                    )


def _finally_call_names(fn: FunctionSymbol) -> set[str]:
    """Names of every call made inside any ``finally`` block of *fn*."""
    out: set[str] = set()
    for node in walk_own_body(fn.node):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    if isinstance(func, ast.Attribute):
                        out.add(func.attr)
                    elif isinstance(func, ast.Name):
                        out.add(func.id)
    return out
