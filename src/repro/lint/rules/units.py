"""ARC003: nanoseconds and shader cycles must not mix without conversion.

The cost model keeps memory-domain service times in *nanoseconds*
(:data:`repro.gpu.config.MEMORY_DOMAIN_NS`) because those clock domains do
not scale with the shader clock; everything the timing engine adds up is
in *shader cycles*.  The only legal bridge is multiplication by the clock
(``cycles = ns * clock_ghz``).  Mixing the two units in one sum is
dimensionally wrong yet numerically plausible -- exactly the bug class a
test suite calibrated against aggregate figures cannot see.

v2 runs on the dataflow layer (:mod:`repro.lint.dataflow`): identifier
naming still *seeds* the units (``*_ns``/``*_NS`` is nanoseconds,
``*_cycles`` is cycles, ``clock_ghz``/``*_ghz`` is a clock frequency),
but the abstract interpreter then *propagates* the tags through
assignments, augmented ops and intraprocedural flow, so a nanosecond
value laundered through an unsuffixed local is still caught:

.. code-block:: python

    v = table_ns["atomic"]     # v: ns (flowed, no suffix needed)
    total_cycles += v          # ARC003: ns accumulated into cycles

This rule reports the *local* conflict kinds; call- and return-boundary
mismatches are ARC006 (:mod:`repro.lint.rules.interproc`):

* an additive expression combining an ns-tagged and a cycles-tagged
  value;
* a bare numeric literal added to an ``*_NS`` table entry (the literal's
  unit is unknowable, so the table's ns contract is unverifiable);
* storing or accumulating a cycles-valued expression into an ``*_NS``
  table;
* binding a value of one unit to a name or attribute whose suffix
  declares the other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.lint.dataflow import analysis_for
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["UnitSafety"]

#: Conflict kinds this rule owns -> report message.  The remaining kinds
#: (``arg``, ``return``) belong to ARC006.
_MESSAGES = {
    "mix": (
        "additive expression mixes nanosecond-suffixed and "
        "cycle-suffixed terms without a clock_ghz conversion; "
        "convert with `ns * clock_ghz` before summing"
    ),
    "table-literal-add": (
        "bare numeric literal added to a *_NS table entry: the "
        "literal's unit is unknowable; name it with a _ns suffix "
        "or pre-convert it to the table's domain"
    ),
    "table-literal-aug": (
        "bare numeric literal accumulated into a *_NS table "
        "entry; name the quantity with a _ns suffix so its unit "
        "is checkable"
    ),
    "table-store-aug": (
        "cycle-valued expression accumulated into a *_NS table; "
        "the table's contract is nanoseconds"
    ),
    "table-store": (
        "cycle-valued expression stored into a *_NS "
        "table; the table's contract is nanoseconds"
    ),
}


@register
class UnitSafety(Rule):
    """ns- and cycle-valued expressions only meet through ``clock_ghz``."""

    rule_id = "ARC003"
    category = "unit-safety"
    invariant = (
        "nanosecond-domain and cycle-domain quantities are only combined "
        "through an explicit clock conversion"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        analysis = analysis_for(ctx)
        for conflict in analysis.conflicts_in(module):
            if conflict.kind == "mix":
                yield self.finding(
                    module, conflict.line, _MESSAGES["mix"]
                )
            elif conflict.kind == "table-literal":
                key = ("table-literal-aug" if conflict.augmented
                       else "table-literal-add")
                yield self.finding(module, conflict.line, _MESSAGES[key])
            elif conflict.kind == "table-store":
                key = ("table-store-aug" if conflict.augmented
                       else "table-store")
                yield self.finding(module, conflict.line, _MESSAGES[key])
            elif conflict.kind == "binding":
                name = conflict.names[0]
                yield self.finding(
                    module, conflict.line,
                    f"{conflict.left}-valued expression bound to "
                    f"`{name}`, whose suffix declares {conflict.right}; "
                    "rename the binding or convert through clock_ghz",
                )
