"""ARC003: nanoseconds and shader cycles must not mix without conversion.

The cost model keeps memory-domain service times in *nanoseconds*
(:data:`repro.gpu.config.MEMORY_DOMAIN_NS`) because those clock domains do
not scale with the shader clock; everything the timing engine adds up is
in *shader cycles*.  The only legal bridge is multiplication by the clock
(``cycles = ns * clock_ghz``).  Mixing the two units in one sum is
dimensionally wrong yet numerically plausible -- exactly the bug class a
test suite calibrated against aggregate figures cannot see.

The rule works on identifier naming, which the config module already
follows: bindings suffixed ``_ns``/``_NS`` carry nanoseconds, bindings
suffixed ``_cycles`` carry cycles, and a term mentioning ``clock_ghz`` (or
any ``*_ghz``) is treated as converted.  Checks:

* an additive expression (``+``/``-`` chain) containing both an
  unconverted ns-term and a cycles-term;
* a bare numeric literal added to an ``*_NS`` table entry (the literal's
  unit is unknowable, so the table's ns contract is unverifiable);
* storing a ``*_cycles`` value into an ``*_NS`` table.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["UnitSafety"]


def _flatten_terms(node: ast.AST) -> list[ast.AST]:
    """Terms of a ``+``/``-`` chain (``a + b - c`` -> ``[a, b, c]``)."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        return _flatten_terms(node.left) + _flatten_terms(node.right)
    return [node]


def _is_bare_number(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    )


class _Tagger:
    """Assigns a unit tag to one term of an additive chain."""

    def __init__(self, config):
        self.ns_suffixes = config.ns_suffixes
        self.cycle_suffixes = config.cycle_suffixes
        self.clock_names = config.clock_names

    def tag(self, term: ast.AST) -> "str | None":
        names = list(astutil.identifier_names(term))
        if any(
            name in self.clock_names or name.endswith("_ghz")
            for name in names
        ):
            # A clock factor anywhere in the term converts it to cycles.
            return "cycles"
        if any(
            name.endswith(suffix)
            for name in names for suffix in self.ns_suffixes
        ):
            return "ns"
        if any(
            name.endswith(suffix)
            for name in names for suffix in self.cycle_suffixes
        ):
            return "cycles"
        if _is_bare_number(term):
            return "literal"
        return None

    def mentions_ns_table(self, term: ast.AST) -> bool:
        """An uppercase ``*_NS`` identifier marks a module-level table."""
        return any(
            name.endswith("_NS") for name in astutil.identifier_names(term)
        )


@register
class UnitSafety(Rule):
    """ns- and cycle-valued expressions only meet through ``clock_ghz``."""

    rule_id = "ARC003"
    invariant = (
        "nanosecond-domain and cycle-domain quantities are only combined "
        "through an explicit clock conversion"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        tagger = _Tagger(self.config)
        # Only root additive chains are checked: operands of a larger
        # chain were already flattened into it.
        additive_children: set[int] = set()
        roots: list[ast.BinOp] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                roots.append(node)
                for side in (node.left, node.right):
                    if isinstance(side, ast.BinOp) and isinstance(
                        side.op, (ast.Add, ast.Sub)
                    ):
                        additive_children.add(id(side))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_aug_assign(module, node, tagger)
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(module, node, tagger)

        for root in roots:
            if id(root) in additive_children:
                continue
            yield from self._check_chain(module, root, tagger)

    def _check_chain(
        self, module: "ModuleInfo", root: ast.BinOp, tagger: _Tagger
    ) -> Iterable[Finding]:
        terms = _flatten_terms(root)
        tags = [tagger.tag(term) for term in terms]
        if "ns" in tags and "cycles" in tags:
            yield self.finding(
                module, root.lineno,
                "additive expression mixes nanosecond-suffixed and "
                "cycle-suffixed terms without a clock_ghz conversion; "
                "convert with `ns * clock_ghz` before summing",
            )
        elif "ns" in tags and "literal" in tags and any(
            tag == "ns" and tagger.mentions_ns_table(term)
            for term, tag in zip(terms, tags)
        ):
            yield self.finding(
                module, root.lineno,
                "bare numeric literal added to a *_NS table entry: the "
                "literal's unit is unknowable; name it with a _ns suffix "
                "or pre-convert it to the table's domain",
            )

    def _check_aug_assign(
        self, module: "ModuleInfo", node: ast.AugAssign, tagger: _Tagger
    ) -> Iterable[Finding]:
        if not tagger.mentions_ns_table(node.target):
            return
        value_tag = tagger.tag(node.value)
        if value_tag == "cycles":
            yield self.finding(
                module, node.lineno,
                "cycle-valued expression accumulated into a *_NS table; "
                "the table's contract is nanoseconds",
            )
        elif value_tag == "literal":
            yield self.finding(
                module, node.lineno,
                "bare numeric literal accumulated into a *_NS table "
                "entry; name the quantity with a _ns suffix so its unit "
                "is checkable",
            )

    def _check_assign(
        self, module: "ModuleInfo", node: ast.Assign, tagger: _Tagger
    ) -> Iterable[Finding]:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and tagger.mentions_ns_table(
                target.value
            ):
                if tagger.tag(node.value) == "cycles":
                    yield self.finding(
                        module, node.lineno,
                        "cycle-valued expression stored into a *_NS "
                        "table; the table's contract is nanoseconds",
                    )
