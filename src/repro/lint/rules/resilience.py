"""ARC005: experiment execution must never block unboundedly on workers.

The PR that introduced the parallel runner drove its pool with
``pool.map`` -- an all-or-nothing blocking wait where one crashed worker
raised :class:`BrokenProcessPool` and discarded every completed cell,
and one hung simulation blocked the run forever.  The fault-tolerance
layer (:mod:`repro.experiments.resilience`) replaced that with
per-future submission, bounded waits and recovery; this rule keeps the
anti-pattern from creeping back into ``repro/experiments/``:

* **executor ``.map`` calls** (receiver named like a pool/executor) --
  ``Executor.map`` yields results in submission order behind an
  unbounded wait and cannot attribute, retry or time out individual
  cells.  Submit per-cell futures and drive them through
  ``run_resilient`` (or ``concurrent.futures.wait`` with a timeout);
* **``.result()`` / ``.exception()`` without a timeout** -- an
  unbounded block on a single future: a hung worker hangs the whole
  run.  Pass a timeout (``timeout=0`` for futures already known done,
  e.g. returned by ``wait``).

Scoped to the experiment-execution packages
(:attr:`~repro.lint.engine.LintConfig.experiment_packages`): workloads
and benchmarks do not drive worker pools, and the engine packages are
already covered by ARC002's stricter determinism contract.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["ResilientExecution"]

#: Receiver-name fragments marking an executor/pool object.  ``.map`` on
#: anything else (a Series, a custom mapper) is out of scope.
_EXECUTOR_NAME_HINTS = ("pool", "executor")

#: Future methods that block until completion unless given a timeout.
_BLOCKING_FUTURE_METHODS = ("result", "exception")


def _names_an_executor(node: ast.AST) -> bool:
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return False
    lowered = dotted.lower()
    return any(hint in lowered for hint in _EXECUTOR_NAME_HINTS)


def _has_timeout(node: ast.Call) -> bool:
    if node.args:
        return True  # positional timeout
    return any(keyword.arg == "timeout" for keyword in node.keywords)


@register
class ResilientExecution(Rule):
    """No bare ``pool.map`` or unbounded future waits in experiments."""

    rule_id = "ARC005"
    category = "resilience"
    invariant = (
        "experiment execution never blocks unboundedly on a worker: no "
        "executor .map(), and every future .result()/.exception() call "
        "carries a timeout"
    )

    def configure(self, config) -> None:
        super().configure(config)
        self.packages = config.experiment_packages

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "map" and _names_an_executor(func.value):
                yield self.finding(
                    module, node.lineno,
                    "executor .map() is an all-or-nothing blocking wait: "
                    "one crashed worker discards every completed cell and "
                    "one hung task blocks forever; submit per-cell "
                    "futures and drive them through "
                    "resilience.run_resilient (or wait() with a timeout)",
                )
            elif (func.attr in _BLOCKING_FUTURE_METHODS
                    and not _has_timeout(node)):
                yield self.finding(
                    module, node.lineno,
                    f".{func.attr}() without a timeout blocks unboundedly "
                    "on one worker; pass timeout=... (timeout=0 for "
                    "futures already returned as done by wait())",
                )
