"""arclint rule set.

Importing this package registers every rule with
:mod:`repro.lint.registry`:

* ``ARC001`` fingerprint-completeness (:mod:`.fingerprints`)
* ``ARC002`` determinism (:mod:`.determinism`)
* ``ARC003`` unit-safety (:mod:`.units`)
* ``ARC004`` strategy-conformance (:mod:`.strategies`)
* ``ARC005`` resilient-execution (:mod:`.resilience`)
"""

from repro.lint.rules import (
    determinism,
    fingerprints,
    resilience,
    strategies,
    units,
)

__all__ = ["determinism", "fingerprints", "resilience", "strategies", "units"]
