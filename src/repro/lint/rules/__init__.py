"""arclint rule set.

Importing this package registers every rule with
:mod:`repro.lint.registry`:

* ``ARC001`` fingerprint-completeness (:mod:`.fingerprints`)
* ``ARC002`` determinism (:mod:`.determinism`)
* ``ARC003`` unit-safety, flow-sensitive (:mod:`.units`)
* ``ARC004`` strategy-conformance (:mod:`.strategies`)
* ``ARC005`` resilient-execution (:mod:`.resilience`)
* ``ARC006`` interprocedural unit contracts (:mod:`.interproc`)
* ``ARC007`` event-tie determinism (:mod:`.event_ties`)
* ``ARC008`` cache-key taint (:mod:`.cachekeys`)
* ``ARC009``-``ARC012`` process-safety (:mod:`.concurrency`)
* ``ARC013``-``ARC016`` async-safety (:mod:`.asyncsafety`)

ARC003/006/008 share one :class:`repro.lint.dataflow.DataflowAnalysis`
per run, built lazily on first use and cached on the lint context;
ARC009-012 layer the process-context and shared-resource analyses on
top of the same instance, and ARC013-016 layer the coroutine-context
analysis on it the same way.
"""

from repro.lint.rules import (
    asyncsafety,
    cachekeys,
    concurrency,
    determinism,
    event_ties,
    fingerprints,
    interproc,
    resilience,
    strategies,
    units,
)

__all__ = [
    "asyncsafety",
    "cachekeys",
    "concurrency",
    "determinism",
    "event_ties",
    "fingerprints",
    "interproc",
    "resilience",
    "strategies",
    "units",
]
