"""ARC002: simulation and fingerprint state must be deterministic.

The paper's claims are queueing-model numbers; the reproduction's value
rests on bit-identical reruns (serial == parallel == cached, across
processes and machines).  Inside the engine packages
(``repro/{core,gpu,trace}`` by default) this rule bans the constructs
that silently break that:

* **unseeded / global RNG** -- any :mod:`random` stdlib use (global,
  process-seeded state), legacy ``np.random.*`` module functions (shared
  global generator), and ``np.random.default_rng()`` called without a
  seed;
* **wall-clock reads** -- ``time.time/perf_counter/monotonic/...``,
  ``datetime.now`` and friends: simulated time is the only clock the
  engine may read (wall-clock timing belongs in workloads/benchmarks,
  which are outside this rule's scope);
* **unordered iteration** -- ``for``/comprehensions over ``set`` /
  ``frozenset`` expressions or ``dict.values()``, and
  ``list()/tuple()/enumerate()/iter()`` over set expressions.  Iteration
  order there depends on hash seeding or insertion history, which differs
  across processes; wrap in ``sorted(...)`` to fix an order.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["Determinism"]

#: Legacy numpy global-generator entry points (non-exhaustive spot list is
#: unnecessary: everything under ``numpy.random.`` except the seeded
#: constructors below shares module-level state).
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                 "Philox", "SFC64", "MT19937", "BitGenerator", "RandomState"}

_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("date", "today"),
}

#: Materializers whose output order follows the iterable's order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter"}


def _is_set_expr(node: ast.AST) -> bool:
    """Whether *node* is statically known to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return astutil.called_name(node) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_dict_values(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args and not node.keywords)


@register
class Determinism(Rule):
    """No RNG, wall clocks, or unordered iteration in the engine."""

    rule_id = "ARC002"
    category = "determinism"
    invariant = (
        "engine packages produce bit-identical results across processes: "
        "no global/unseeded RNG, no wall-clock reads, no iteration whose "
        "order depends on hashing or insertion history"
    )

    def configure(self, config) -> None:
        super().configure(config)
        self.packages = config.engine_packages

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        imports = astutil.import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, imports)
            elif isinstance(node, ast.For):
                yield from self._check_iterable(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iterable(module, generator.iter)

    def _check_call(
        self, module: "ModuleInfo", node: ast.Call, imports: dict[str, str]
    ) -> Iterable[Finding]:
        name = astutil.called_name(node)
        if (name in _ORDER_SENSITIVE_CALLS and node.args
                and _is_set_expr(node.args[0])):
            yield self.finding(
                module, node.lineno,
                f"{name}() over a set fixes an arbitrary hash order into "
                "downstream state; use sorted(...) instead",
            )
        qualified = astutil.qualified_call(node, imports)
        if qualified is None:
            return
        parts = qualified.split(".")
        if parts[0] == "random":
            yield self.finding(
                module, node.lineno,
                f"stdlib RNG `{qualified}` uses process-global state; use "
                "np.random.default_rng(seed) threaded through explicitly",
            )
        elif len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            tail = parts[2]
            if tail == "default_rng":
                if not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                ):
                    yield self.finding(
                        module, node.lineno,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; every engine RNG must take an explicit "
                        "seed",
                    )
            elif tail not in _NP_RANDOM_OK:
                yield self.finding(
                    module, node.lineno,
                    f"legacy `np.random.{tail}` uses the shared global "
                    "generator; construct np.random.default_rng(seed) "
                    "instead",
                )
        elif len(parts) >= 2 and tuple(parts[-2:]) in _CLOCK_CALLS:
            yield self.finding(
                module, node.lineno,
                f"wall-clock read `{qualified}`: engine code may only "
                "advance simulated time (wall timing belongs in "
                "workloads/benchmarks)",
            )

    def _check_iterable(
        self, module: "ModuleInfo", iterable: ast.AST
    ) -> Iterable[Finding]:
        if _is_set_expr(iterable):
            yield self.finding(
                module, iterable.lineno,
                "iteration over a set: order depends on hash seeding; "
                "wrap in sorted(...) before feeding simulation or "
                "fingerprint state",
            )
        elif _is_dict_values(iterable):
            yield self.finding(
                module, iterable.lineno,
                "iteration over dict.values(): order tracks insertion "
                "history, which can differ across processes; iterate "
                "sorted(d) / sorted(d.items()) instead",
            )
