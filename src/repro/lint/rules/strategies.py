"""ARC004: every concrete ``AtomicStrategy`` must be simulatable *and*
cacheable.

The experiment runner treats strategies uniformly: it instantiates them
from :data:`repro.experiments.runner.STRATEGY_FACTORIES` (which imports
from :mod:`repro.core`), simulates via ``plan_batch``, and keys the disk
cache with :func:`repro.experiments.diskcache.strategy_fingerprint` --
which reads the instance's public attributes and rejects non-scalars at
*runtime*.  This rule moves those contracts to lint time.  For every
concrete subclass of ``AtomicStrategy`` (transitively, across modules):

* it must implement or inherit ``plan_batch`` (below the abstract root);
* it must bind a report ``name`` (class attribute or ``self.name`` in
  ``__init__``) -- the runner and report tables key on it;
* its ``__init__`` parameters must be scalars: no container/array
  annotations, no mutable defaults, so ``strategy_fingerprint`` can
  always derive a complete cache key from the constructed instance;
* it must be exported from its package's ``__init__`` (when that
  ``__init__.py`` is part of the linted tree), so the factory table and
  ``repro list`` can reach it.

Classes prefixed ``_`` are treated as internal bases and only checked as
part of their subclasses' inheritance chains.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["StrategyConformance"]

_ROOT_CLASS = "AtomicStrategy"

#: Annotation identifiers marking a non-scalar constructor parameter.
_NON_SCALAR_ANNOTATIONS = {
    "list", "dict", "set", "tuple", "frozenset",
    "List", "Dict", "Set", "Tuple", "Sequence", "Mapping", "MutableMapping",
    "Iterable", "Iterator", "Callable", "ndarray", "array", "NDArray",
}


@dataclass
class _ClassInfo:
    """What ARC004 needs to know about one class definition."""

    name: str
    module: "ModuleInfo"
    lineno: int
    bases: list[str]
    methods: set[str]
    class_attrs: set[str]
    init_self_attrs: set[str]
    init_node: "ast.FunctionDef | None"
    is_abstract: bool = False


@dataclass
class _PackageExports:
    """Names reachable from one package ``__init__.py``."""

    module: "ModuleInfo"
    names: set[str] = field(default_factory=set)


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        dotted = astutil.dotted_name(base)
        if dotted:
            names.append(dotted.rpartition(".")[2])
    return names


def _collect_class(module: "ModuleInfo", node: ast.ClassDef) -> _ClassInfo:
    methods: set[str] = set()
    class_attrs: set[str] = set()
    init_self_attrs: set[str] = set()
    init_node = None
    is_abstract = any(
        name in ("ABC", "ABCMeta") for name in _base_names(node)
    )
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef):
            methods.add(stmt.name)
            for decorator in stmt.decorator_list:
                dotted = astutil.dotted_name(decorator) or ""
                if dotted.rpartition(".")[2] == "abstractmethod":
                    is_abstract = True
            if stmt.name == "__init__":
                init_node = stmt
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Attribute)
                            and isinstance(sub.ctx, ast.Store)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"):
                        init_self_attrs.add(sub.attr)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    class_attrs.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            class_attrs.add(stmt.target.id)
    return _ClassInfo(
        name=node.name, module=module, lineno=node.lineno,
        bases=_base_names(node), methods=methods, class_attrs=class_attrs,
        init_self_attrs=init_self_attrs, init_node=init_node,
        is_abstract=is_abstract,
    )


def _exported_names(tree: ast.Module) -> set[str]:
    """Names a package ``__init__`` re-exports: ``__all__`` strings plus
    everything it imports or assigns at module level."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
        elif isinstance(node, ast.Import):
            names.update(
                (alias.asname or alias.name).split(".")[0]
                for alias in node.names
            )
        elif isinstance(node, ast.Assign):
            names.update(
                target.id for target in node.targets
                if isinstance(target, ast.Name) and target.id != "__all__"
            )
    for node in ast.walk(tree):
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
    return names


@register
class StrategyConformance(Rule):
    """Concrete strategies implement the interface and stay cacheable."""

    rule_id = "ARC004"
    category = "api-conformance"
    needs_all_modules = True  # finalize() walks inheritance + exports
    invariant = (
        "every concrete AtomicStrategy is exported, implements plan_batch, "
        "binds a report name, and takes scalar-only constructor parameters "
        "so strategy_fingerprint can always key it"
    )

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        classes: dict[str, _ClassInfo] = ctx.shared.setdefault(
            "ARC004.classes", {}
        )
        exports: dict[str, _PackageExports] = ctx.shared.setdefault(
            "ARC004.exports", {}
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                info = _collect_class(module, node)
                # First definition wins; duplicate class names across
                # modules are rare and resolving them needs import
                # tracking this rule does not attempt.
                classes.setdefault(node.name, info)
        if module.rel_parts[-1] == "__init__.py" and len(module.rel_parts) > 1:
            package_dir = "/".join(module.rel_parts[:-1])
            exports[package_dir] = _PackageExports(
                module=module, names=_exported_names(module.tree)
            )
        return ()

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        classes: dict[str, _ClassInfo] = ctx.shared.get("ARC004.classes", {})
        exports: dict[str, _PackageExports] = ctx.shared.get(
            "ARC004.exports", {}
        )
        for name in sorted(classes):
            info = classes[name]
            if name == _ROOT_CLASS or name.startswith("_"):
                continue
            chain = self._chain(info, classes)
            if chain is None or info.is_abstract:
                continue
            yield from self._check_interface(info, chain)
            yield from self._check_ctor(info)
            yield from self._check_export(info, exports)

    def _chain(
        self, info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> "list[_ClassInfo] | None":
        """Inheritance chain up to (excluding) ``AtomicStrategy``, or
        ``None`` when the class does not derive from it."""
        chain: list[_ClassInfo] = []
        cursor = info
        seen = {info.name}
        while True:
            chain.append(cursor)
            if _ROOT_CLASS in cursor.bases:
                return chain
            parents = [
                classes[base] for base in cursor.bases
                if base in classes and base not in seen
            ]
            if not parents:
                return None
            cursor = parents[0]
            seen.add(cursor.name)

    def _check_interface(
        self, info: _ClassInfo, chain: list[_ClassInfo]
    ) -> Iterable[Finding]:
        if not any("plan_batch" in cls.methods for cls in chain):
            yield self.finding(
                info.module, info.lineno,
                f"strategy {info.name} never implements plan_batch; the "
                "engine cannot simulate it",
            )
        has_name = any(
            "name" in cls.class_attrs or "name" in cls.init_self_attrs
            for cls in chain
        )
        if not has_name:
            yield self.finding(
                info.module, info.lineno,
                f"strategy {info.name} never binds a report `name`; the "
                "runner, report tables and cache keys all key on it",
            )

    def _check_ctor(self, info: _ClassInfo) -> Iterable[Finding]:
        init = info.init_node
        if init is None:
            return
        args = init.args
        positional = args.posonlyargs + args.args + args.kwonlyargs
        for arg in positional:
            if arg.arg == "self" or arg.annotation is None:
                continue
            names = set(astutil.identifier_names(arg.annotation))
            bad = sorted(names & _NON_SCALAR_ANNOTATIONS)
            if bad:
                yield self.finding(
                    info.module, init.lineno,
                    f"strategy {info.name}.__init__ parameter "
                    f"`{arg.arg}` is annotated non-scalar "
                    f"({', '.join(bad)}); strategy_fingerprint only keys "
                    "scalar constructor parameters, so cached results "
                    "would collide",
                )
        defaults = list(args.defaults) + list(args.kw_defaults)
        for default in defaults:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                                    ast.Call)):
                yield self.finding(
                    info.module, init.lineno,
                    f"strategy {info.name}.__init__ has a non-scalar "
                    "default value; constructor parameters must be "
                    "scalars for the cache key scheme",
                )

    def _check_export(
        self, info: _ClassInfo, exports: dict[str, _PackageExports]
    ) -> Iterable[Finding]:
        parts = info.module.rel_parts
        if parts[-1] == "__init__.py":
            return
        package_dir = "/".join(parts[:-1])
        package = exports.get(package_dir)
        if package is None:
            return
        if info.name not in package.names:
            yield self.finding(
                info.module, info.lineno,
                f"strategy {info.name} is not exported from "
                f"{package_dir}/__init__.py; the factory registry and "
                "`repro list` cannot reach it",
            )
