"""arclint driver: parse a tree, run every rule, apply suppressions and
the baseline, and package the outcome as a :class:`LintReport`.

The pipeline per run:

1. collect ``.py`` files under the given paths (sorted, so output and
   occurrence counters are deterministic);
2. parse each into a :class:`ModuleInfo` (source, AST, per-line
   suppressions); files that fail to parse yield an ``ARC000`` finding
   instead of aborting the run;
3. run every registered rule: per-module checks first, then the
   cross-module :meth:`~repro.lint.registry.Rule.finalize` hooks;
4. drop findings suppressed by an inline ``# arclint: disable=RULE``
   comment on the flagged line;
5. split the remainder against the baseline file into *new* vs
   *grandfathered*, flagging stale baseline entries.

Only step 5's outcome decides the exit code: new findings or stale
baseline entries fail, grandfathered and suppressed ones do not.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import diff_against_baseline, load_baseline
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules

__all__ = [
    "LintConfig",
    "ModuleInfo",
    "LintContext",
    "LintReport",
    "collect_files",
    "parse_module",
    "run_lint",
]

#: Inline suppression: ``# arclint: disable=ARC002`` (comma-separated ids,
#: or ``all``) anywhere on the flagged line.
_SUPPRESS_RE = re.compile(r"#\s*arclint:\s*disable=([A-Za-z0-9_,\s]*)")

#: Rule id for files the parser rejects.
PARSE_ERROR_RULE = "ARC000"


@dataclass(frozen=True)
class LintConfig:
    """Knobs shared by every rule in one run."""

    #: Package directories whose modules feed simulation or fingerprint
    #: state; determinism/conformance rules scope themselves to these.
    engine_packages: tuple[str, ...] = ("core", "gpu", "trace")
    #: Package directories that drive experiment execution (worker
    #: pools, futures); the resilience rule scopes itself to these.
    #: The service layer drives the same pools, so it is held to the
    #: same discipline.
    experiment_packages: tuple[str, ...] = ("experiments", "service")
    #: Identifier suffixes marking nanosecond- and cycle-valued bindings.
    ns_suffixes: tuple[str, ...] = ("_ns", "_NS")
    cycle_suffixes: tuple[str, ...] = ("_cycles",)
    #: Names whose presence in a term marks a clock-domain conversion.
    clock_names: tuple[str, ...] = ("clock_ghz",)
    #: Package directories in scope for the process-safety analyses
    #: (ARC009-ARC012): code that runs on both sides of the spawn pool.
    procsafety_packages: tuple[str, ...] = ("experiments", "obs",
                                            "service")
    #: Module stems (filenames sans ``.py``) outside those packages that
    #: the process-safety analyses also cover -- the obslog sink is
    #: written from parent and workers alike.
    procsafety_module_stems: tuple[str, ...] = ("obslog",)
    #: Environment variables deliberately carried across the spawn
    #: boundary (exported before pool construction, or inherited via the
    #: OS environment snapshot); worker-context reads of any *other*
    #: ``REPRO_*`` key are ARC011 findings.
    spawn_carry_env: tuple[str, ...] = (
        "REPRO_OBSLOG",
        "REPRO_FAULTS",
        "REPRO_CACHE_DIR",
        "REPRO_NO_DISK_CACHE",
        "REPRO_CACHE_SWEEP_AGE",
        "REPRO_SANITIZE",
        "REPRO_IOSAN_LOG",
        "REPRO_LOOPSAN_LOG",
        "REPRO_LOOPSAN_SLOW_MS",
        "REPRO_LOG_LEVEL",
        "REPRO_TRACE",
    )
    #: Env-key prefixes the spawn-carry discipline applies to; reads of
    #: foreign variables (``HOME``, ``PATH``) are not ours to police.
    env_prefixes: tuple[str, ...] = ("REPRO_",)
    #: (identifier substring, resource class) seeds for the shared-file
    #: escape analysis: an expression mentioning the substring is
    #: attributed to the class, and the class then propagates through
    #: aliases, call returns and one level of parameter passing.
    resource_patterns: tuple[tuple[str, str], ...] = (
        ("quarantine", "cache-quarantine"),
        ("manifest", "manifest"),
        ("obslog", "obslog"),
        ("results_dir", "cache-results"),
        ("entry_path", "cache-results"),
    )
    #: Package directories in scope for the async-safety rules
    #: (ARC013-ARC016): code that runs on (or right next to) the
    #: service's asyncio event loop.
    asyncsafety_packages: tuple[str, ...] = ("obs", "service")
    #: Alias-resolved call paths that block the calling thread -- the
    #: seeds of the blocking-call classifier.  These are the project's
    #: *real* blockers (sync file I/O, sleeps, subprocesses, sockets,
    #: numpy trace spooling), not a generic deny-list.
    async_blocking_calls: tuple[str, ...] = (
        "open",
        "io.open",
        "os.open",
        "os.replace",
        "os.rename",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "numpy.load",
        "numpy.savez",
        "numpy.savez_compressed",
    )
    #: Method names that denote synchronous file I/O on any receiver
    #: (the pathlib idiom used by the disk cache and manifest).
    async_blocking_methods: tuple[str, ...] = (
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
    )
    #: Coroutine-reachable project callees exempt from ARC013: audited
    #: appends whose single O_APPEND write is measured in microseconds
    #: and whose loss would cost more than the stall (telemetry, the
    #: crash-recovery journal).  Exemption is not invisibility -- these
    #: stay in the static model the runtime loop sanitizer checks
    #: observed stalls against.
    async_blocking_allowlist: tuple[str, ...] = (
        "repro.obslog.emit",
        "repro.experiments.manifest.RunManifest.record",
    )


class ModuleInfo:
    """One parsed source file plus everything rules need to report on it."""

    def __init__(self, path: Path, rel_path: str, source: str,
                 tree: "ast.Module | None"):
        self.path = path
        self.rel_path = rel_path
        self.rel_parts = tuple(Path(rel_path).parts)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: (rule, path, snippet) -> occurrences handed out so far.
        self.occurrences: dict[tuple[str, str, str], int] = {}
        self.suppressions = self._scan_suppressions()

    def line_text(self, line: int) -> str:
        """Stripped text of 1-based *line* ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def _scan_suppressions(self) -> dict[int, set[str]]:
        out: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {
                    token.strip()
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                out[lineno] = rules or {"all"}
        return out

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "all" in rules or finding.rule in rules


class LintContext:
    """Run-wide state rules use to communicate across modules."""

    def __init__(self, config: LintConfig, modules: "list[ModuleInfo]"):
        self.config = config
        self.modules = modules
        #: Free-form scratch space, namespaced by rule id.
        self.shared: dict[str, object] = {}


@dataclass
class LintReport:
    """Everything one run produced, pre-split against the baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files_checked: int = 0
    #: Lint-root-relative paths actually checked (equals every parsed
    #: file on a full run; the changed-set expansion on ``--changed``).
    checked_paths: list[str] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        """Every unsuppressed finding (new + grandfathered)."""
        return self.new + self.baselined

    @property
    def exit_code(self) -> int:
        """1 when the run must fail: new findings or a stale baseline."""
        return 1 if self.new or self.stale_baseline else 0

    def summary_line(self) -> str:
        return (
            f"{self.files_checked} files checked: "
            f"{len(self.new)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.stale_baseline)} stale baseline entr(ies)"
        )

    def render_text(self) -> str:
        """Human-readable report (what ``repro lint`` prints)."""
        blocks: list[str] = []
        for finding in sorted(
            self.new, key=lambda f: (f.path, f.line, f.rule)
        ):
            blocks.append(finding.render())
        for entry in self.stale_baseline:
            blocks.append(
                f"stale baseline entry {entry['id']} "
                f"({entry.get('rule', '?')} in {entry.get('path', '?')}): "
                "the flagged line changed; rerun `repro lint --fix-baseline`"
            )
        blocks.append(self.summary_line())
        return "\n".join(blocks)

    def to_dict(self) -> dict:
        """The ``--format json`` schema (stable, versioned)."""
        return {
            "version": 1,
            "summary": {
                "files_checked": self.files_checked,
                "checked_paths": self.checked_paths,
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
                "exit_code": self.exit_code,
            },
            "findings": [
                f.to_dict()
                for f in sorted(
                    self.new, key=lambda f: (f.path, f.line, f.rule)
                )
            ],
            "baselined": [
                f.to_dict()
                for f in sorted(
                    self.baselined, key=lambda f: (f.path, f.line, f.rule)
                )
            ],
            "stale_baseline": self.stale_baseline,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_sarif(self) -> str:
        """SARIF 2.1.0 document (``--format sarif``), for code-scanning
        upload; see :mod:`repro.lint.sarif`."""
        from repro.lint.sarif import report_to_sarif

        return json.dumps(report_to_sarif(self), indent=2, sort_keys=True)


def _package_root(directory: Path) -> Path:
    """First ancestor of *directory* that is not a python package.

    A single-file argument must keep its package context -- rules scoped
    to ``repro/{core,gpu,trace}`` match on the *relative* path, so
    rooting ``.../repro/core/engine.py`` at ``core/`` would silently take
    it out of scope.  Ascending past every ``__init__.py`` restores the
    same relative parts a directory invocation would produce.
    """
    while (directory / "__init__.py").exists() and directory.parent != directory:
        directory = directory.parent
    return directory


def collect_files(paths: Sequence["str | Path"]) -> list[tuple[Path, Path]]:
    """(file, lint-root) pairs for every ``.py`` under *paths*, sorted.

    A directory argument becomes the lint root of its own files; a single
    file is rooted at its enclosing package tree's parent (see
    :func:`_package_root`), so package-scoped rules apply identically
    whether a file is linted alone or as part of its tree.
    """
    out: list[tuple[Path, Path]] = []
    for raw in paths:
        path = Path(raw).resolve()
        if path.is_dir():
            out.extend((file, path) for file in sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append((path, _package_root(path.parent)))
        else:
            raise FileNotFoundError(f"no python source at {raw}")
    return out


def parse_module(path: Path, root: Path) -> "tuple[ModuleInfo, Finding | None]":
    """Parse one file; on a syntax error return an ``ARC000`` finding."""
    rel_path = path.relative_to(root).as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
        error = None
    except SyntaxError as exc:
        tree = None
        module = ModuleInfo(path, rel_path, source, None)
        error = Finding(
            rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            path=rel_path,
            line=exc.lineno or 1,
            message=f"file does not parse: {exc.msg}",
            snippet=module.line_text(exc.lineno or 1),
        )
        return module, error
    return ModuleInfo(path, rel_path, source, tree), error


def run_lint(
    paths: Sequence["str | Path"],
    baseline_path: "str | Path | None" = None,
    config: "LintConfig | None" = None,
    restrict_to: "Sequence[str | Path] | None" = None,
) -> LintReport:
    """Run every registered rule over *paths* and diff the baseline.

    With *restrict_to* (a collection of changed file paths), the whole
    tree is still parsed and analyzed -- the dataflow layer and
    cross-module rules need the complete picture to stay sound -- but
    per-module checks and reported findings are limited to the changed
    files plus every module that (transitively) imports one of them.
    The baseline's stale-entry check is likewise limited to that set: a
    partial run cannot know whether entries for unvisited files still
    fire.
    """
    # Importing the rules package registers the rule classes.
    import repro.lint.rules  # noqa: F401  (registration side effect)

    config = config or LintConfig()
    modules: list[ModuleInfo] = []
    parse_errors: list[tuple[Path, Finding]] = []
    for path, root in collect_files(paths):
        module, error = parse_module(path, root)
        if error is not None:
            parse_errors.append((path.resolve(), error))
            continue
        modules.append(module)

    ctx = LintContext(config, modules)

    selected: "set[int] | None" = None
    if restrict_to is not None:
        changed = {Path(p).resolve() for p in restrict_to}
        selected = _select_modules(ctx, changed)
        parse_errors = [
            (path, error) for path, error in parse_errors
            if path in changed
        ]

    raw_findings: list[Finding] = [error for _, error in parse_errors]
    checked = [
        module for module in modules
        if selected is None or id(module) in selected
    ]
    for rule in all_rules():
        rule.configure(config)
        # Rules whose finalize() cross-references facts from the whole
        # tree scan every module even in a restricted run; their
        # findings are filtered back to the selection below.
        scan = (modules if selected is not None and rule.needs_all_modules
                else checked)
        for module in scan:
            if rule.applies_to(module):
                raw_findings.extend(rule.check_module(module, ctx))
        raw_findings.extend(rule.finalize(ctx))

    checked_paths = {module.rel_path for module in checked} | {
        error.path for _, error in parse_errors
    }
    if selected is not None:
        raw_findings = [
            finding for finding in raw_findings
            if finding.path in checked_paths
        ]

    by_path = {module.rel_path: module for module in modules}
    report = LintReport(files_checked=len(checked))
    report.checked_paths = sorted(checked_paths)
    kept: list[Finding] = []
    for finding in raw_findings:
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            report.suppressed.append(finding)
        else:
            kept.append(finding)

    baseline = load_baseline(baseline_path)
    report.new, report.baselined, report.stale_baseline = (
        diff_against_baseline(
            kept, baseline,
            checked_paths=checked_paths if selected is not None else None,
        )
    )
    return report


def _select_modules(ctx: LintContext, changed: "set[Path]") -> set[int]:
    """ids of the modules a change set makes worth re-checking."""
    from repro.lint.dataflow import (
        analysis_for,
        module_imports,
        reverse_dependents,
    )

    table = analysis_for(ctx).table
    roots = {
        table.name_of(module) for module in ctx.modules
        if module.path.resolve() in changed
    }
    if not roots:
        return set()
    names = reverse_dependents(module_imports(table), roots)
    return {id(table.module_names[name]) for name in names}
