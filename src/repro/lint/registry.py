"""Rule base class and registry.

A rule is a class with a stable ``rule_id`` (``ARC001`` ...), a default
severity, and two hooks:

* :meth:`Rule.check_module` -- called once per parsed module, yields
  findings local to that module;
* :meth:`Rule.finalize` -- called once after every module has been
  visited, for cross-module invariants (export completeness, key-schema
  vs. dataclass cross-checks).

Rules register themselves with :func:`register`; :func:`all_rules`
instantiates the registry in rule-id order so runs are deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.lint.engine import LintContext, ModuleInfo

__all__ = ["Rule", "register", "all_rules", "rule_ids"]


class Rule:
    """Base class for one invariant checker."""

    #: Stable identifier used in reports, suppressions and baselines.
    rule_id: str = "ARC000"
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line statement of the protected invariant (shown in ``--help``
    #: style listings and the docs).
    invariant: str = ""
    #: Rule family, surfaced as a SARIF rule property so code-scanning
    #: dashboards can slice findings (``determinism``, ``unit-safety``,
    #: ``process-safety``, ...).
    category: str = "domain"
    #: Restrict the rule to modules inside these top-level packages
    #: (relative to the lint root); ``None`` means every module.
    packages: "tuple[str, ...] | None" = None
    #: Whether :meth:`finalize` cross-references facts recorded from the
    #: *whole* tree.  Such rules keep scanning every module in a
    #: ``--changed`` run (their per-module pass is what records the
    #: facts); rules that only report locally can skip unchanged files.
    needs_all_modules: bool = False

    def configure(self, config) -> None:
        """Adopt run-wide :class:`~repro.lint.engine.LintConfig` knobs.

        Called once per run before any check; rules that scope themselves
        to the engine packages read them from *config* here.
        """
        self.config = config

    def applies_to(self, module: "ModuleInfo") -> bool:
        """Whether *module* is in this rule's scope."""
        if self.packages is None:
            return True
        return any(part in self.packages for part in module.rel_parts[:-1])

    def check_module(
        self, module: "ModuleInfo", ctx: "LintContext"
    ) -> Iterable[Finding]:
        """Per-module findings; also the place to record cross-module
        facts on *ctx* for :meth:`finalize`."""
        return ()

    def finalize(self, ctx: "LintContext") -> Iterable[Finding]:
        """Findings that need the whole tree (called once, last)."""
        return ()

    def finding(
        self,
        module: "ModuleInfo",
        line: int,
        message: str,
        severity: "Severity | None" = None,
    ) -> Finding:
        """Build a finding anchored at *line* of *module*.

        The occurrence counter is tracked per (rule, path, snippet,
        message) on the module so repeated identical violations get
        distinct, stable ids.
        """
        snippet = module.line_text(line)
        key = (self.rule_id, module.rel_path, snippet, message)
        occurrence = module.occurrences.get(key, 0)
        module.occurrences[key] = occurrence + 1
        return Finding(
            rule=self.rule_id,
            severity=severity or self.severity,
            path=module.rel_path,
            line=line,
            message=message,
            snippet=snippet,
            occurrence=occurrence,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    rule_id = rule_cls.rule_id
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> Iterator[Rule]:
    """Fresh instances of every registered rule, in rule-id order."""
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]()


def rule_ids() -> list[str]:
    """Sorted ids of every registered rule."""
    return sorted(_REGISTRY)
