"""repro: reproduction of "ARC: Warp-level Adaptive Atomic Reduction in
GPUs to Accelerate Differentiable Rendering" (ASPLOS 2025).

The package has four layers:

* :mod:`repro.gpu` -- a cycle-approximate GPU simulator (SM sub-cores, LSU
  queues, interconnect, L2 ROP atomic units) with the paper's Table 1
  configurations;
* :mod:`repro.core` -- ARC itself (ARC-HW and both ARC-SW variants) plus
  every comparison point of the evaluation (atomicAdd baseline, CCCL
  warp reduction, LAB/LAB-ideal, PHI);
* :mod:`repro.render` / :mod:`repro.workloads` -- real differentiable
  renderers (3D Gaussian splatting, Pulsar spheres, NvDiffRec cubemaps)
  whose backward passes emit the warp-level atomic traces the simulator
  replays, organized into the paper's Table 2 workload registry;
* :mod:`repro.profiling` / :mod:`repro.experiments` -- the measurement
  machinery behind every figure and table of the evaluation.

Quickstart::

    from repro import RTX4090_SIM, simulate_kernel
    from repro.core import ArcSWButterfly, BaselineAtomic
    from repro.workloads import load_workload

    trace = load_workload("3D-LE").capture_trace()
    base = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    arc = simulate_kernel(trace, RTX4090_SIM, ArcSWButterfly(16))
    print(f"gradient-kernel speedup: {arc.speedup_over(base):.2f}x")
"""

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    AtomicStrategy,
    BaselineAtomic,
    CCCLReduce,
    LABIdeal,
)
from repro.gpu import (
    RTX3060_SIM,
    RTX4090_SIM,
    SIMULATED_GPUS,
    GPUConfig,
    SimResult,
    simulate_kernel,
)
from repro.trace import KernelTrace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GPUConfig",
    "RTX4090_SIM",
    "RTX3060_SIM",
    "SIMULATED_GPUS",
    "SimResult",
    "simulate_kernel",
    "KernelTrace",
    "AtomicStrategy",
    "BaselineAtomic",
    "ArcSWButterfly",
    "ArcSWSerialized",
    "ArcHW",
    "CCCLReduce",
    "LAB",
    "LABIdeal",
    "PHI",
]
