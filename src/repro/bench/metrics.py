"""Measurement primitives for the bench harness.

Wall-clock timing (``perf_counter``-based, milliseconds), peak-RSS
probing, repeat-sample summaries (median/IQR, the stats the paper's
sweeps report), and the *deterministic* projections of a simulation the
comparator holds to exact equality: a content digest of the full
:class:`~repro.gpu.stats.SimResult` and per-phase simulated-cycle totals
integrated from :class:`~repro.gpu.telemetry.Telemetry` spans.

Wall-clock reads are deliberate here: this package measures *host*
execution of the simulator, exactly like :mod:`repro.obslog`.  It must
never be imported by the engine packages (``repro/{core,gpu,trace}``),
where arclint's ARC002 bans wall-clock time.
"""

from __future__ import annotations

import hashlib
import json
import resource
import statistics
import sys
import time

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.stats import SimResult
    from repro.gpu.telemetry import Telemetry

__all__ = [
    "peak_rss_kb",
    "phase_cycle_totals",
    "sim_digest",
    "summarize_samples",
    "time_call_ms",
]


def time_call_ms(fn) -> "tuple[float, object]":
    """``(wall_milliseconds, fn())`` for one monotonic-clocked call."""
    start = time.perf_counter()
    value = fn()
    return (time.perf_counter() - start) * 1e3, value


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in KiB.

    ``ru_maxrss`` is a high-water mark: it never decreases, so this is a
    *run-level* aggregate (recorded once, at the end), not a per-cell
    metric.  Linux reports KiB; macOS reports bytes.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def summarize_samples(samples: "list[float]") -> dict:
    """Median/IQR/min/max/mean summary of repeat measurements.

    Median and IQR are the headline numbers (robust to one cold-start or
    GC outlier among few repeats); min/max expose the spread, mean the
    conventional average.  With fewer than two samples the IQR is 0.
    """
    if not samples:
        raise ValueError("no samples to summarize")
    values = sorted(float(value) for value in samples)
    if len(values) >= 2:
        q1, _, q3 = statistics.quantiles(values, n=4)
        iqr = q3 - q1
    else:
        iqr = 0.0
    return {
        "median": statistics.median(values),
        "iqr": iqr,
        "min": values[0],
        "max": values[-1],
        "mean": statistics.fmean(values),
        "n": len(values),
    }


def sim_digest(result: "SimResult") -> str:
    """Content hash of one cell's full simulation outcome.

    Round-trips through canonical JSON exactly like the engine-guard
    fixture, so "digest equal" means the committed-bytes notion of
    bit-identity, not approximate float comparison.  One short hash per
    cell keeps BENCH documents small while still catching any behaviour
    change anywhere in the result.
    """
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def phase_cycle_totals(telemetry: "Telemetry") -> "dict[str, float]":
    """Total simulated cycles per sub-core phase, from recorded spans.

    Sums span durations per phase name (compute / issue / local_unit /
    lsu_wait).  Spans are stamped in simulation time, so these totals are
    deterministic -- they regress only when engine *behaviour* changes,
    never from host noise, which makes them exact-comparison material.
    """
    from repro.gpu.telemetry import PHASES

    totals = {phase: 0.0 for phase in PHASES}
    for _subcore, _warp, _batch, phase, start, end in telemetry.spans:
        totals[phase] = totals.get(phase, 0.0) + (end - start)
    return totals
