"""The ``BENCH_<scenario>.json`` document schema.

One benchmark run produces one schema-versioned JSON document that is
both a *measurement record* (what ran, how fast, on which machine and
engine) and a *comparison substrate* (the committed baseline a later run
is diffed against).  The document separates two metric classes:

* **deterministic** fields -- simulated cycles, ROP-op counts, trace
  fingerprints, per-phase simulated-time totals, cache hit/miss counts,
  and a content digest of each cell's full :class:`SimResult`.  These are
  properties of the *simulation*, not of the host executing it, so the
  comparator holds them to exact equality: any drift means the engine's
  behaviour changed, which either is a bug or requires deliberately
  re-recording the baseline (the same policy as
  ``tests/test_engine_guard.py``).
* **timing** fields -- wall-clock milliseconds, cells/sec, peak RSS.
  These measure the host and are compared with per-metric tolerances
  (generous ones in CI, where machine variance dominates).

Every document carries provenance: a machine fingerprint, the git SHA it
was recorded at, and the simulation engine's source fingerprint
(:func:`repro.experiments.diskcache.engine_fingerprint`) so a perf delta
can always be tied to the engine revision that produced it.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time

__all__ = [
    "FORMAT_VERSION",
    "bench_filename",
    "git_revision",
    "machine_fingerprint",
    "make_envelope",
    "validate_report",
]

#: Bump when the document layout changes; the comparator refuses to diff
#: documents of different formats instead of misreading fields.
FORMAT_VERSION = 1

#: Keys every cell's ``deterministic`` block must carry (``phase_cycles``
#: is nullable: only telemetry-mode cells record spans).
_DETERMINISTIC_KEYS = (
    "sim_cycles", "rop_ops", "lane_ops", "trace_fingerprint", "sim_digest",
    "repeat_stable", "phase_cycles",
)

#: Keys of one ``wall_ms`` sample summary.
_STAT_KEYS = ("median", "iqr", "min", "max", "mean", "n")

#: Keys every ``aggregate`` block must carry (nullable ones are only
#: filled by the scenario modes that measure them).
_AGGREGATE_KEYS = (
    "wall_ms_total", "cells", "runs", "cells_per_sec", "peak_rss_kb",
    "cache", "telemetry_overhead", "parallel",
)


def bench_filename(scenario: str) -> str:
    """Canonical file name for one scenario's document."""
    return f"BENCH_{scenario}.json"


def machine_fingerprint() -> dict:
    """Identity of the host that produced a measurement.

    Timing numbers are only comparable between runs on similar machines;
    the comparator reports (but does not fail on) a fingerprint change so
    a reader can judge whether a wall-time delta is signal or a
    different-host artifact.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def git_revision(cwd: "str | None" = None) -> dict:
    """``{"sha": ..., "dirty": ...}`` of the working tree, best effort.

    A run outside a git checkout (an installed package, a bare CI
    artifact directory) records ``sha: None`` rather than failing: the
    provenance is advisory, the measurement still stands.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout
        return {"sha": sha, "dirty": bool(status.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def make_envelope(scenario: str, config: "dict | None" = None) -> dict:
    """Provenance-stamped skeleton of one BENCH document.

    The bench runner fills ``cells`` and ``aggregate``; the figure
    benchmarks' opt-in trajectory emission (``benchmarks/conftest.py``)
    reuses the same envelope so every perf artifact in the repository
    carries identical provenance fields.
    """
    from repro.experiments.diskcache import engine_fingerprint

    return {
        "format": FORMAT_VERSION,
        "scenario": scenario,
        "created_unix": time.time(),
        "machine": machine_fingerprint(),
        "git": git_revision(),
        "engine_fingerprint": engine_fingerprint(),
        "config": dict(config or {}),
        "cells": [],
        "aggregate": None,
    }


def _check_stat(problems: list, where: str, stat) -> None:
    if not isinstance(stat, dict):
        problems.append(f"{where}: expected a sample summary dict")
        return
    for key in _STAT_KEYS:
        if key not in stat:
            problems.append(f"{where}.{key}: missing")
        elif not isinstance(stat[key], (int, float)):
            problems.append(f"{where}.{key}: not a number")


def validate_report(doc) -> list[str]:
    """Every schema violation in *doc* (an empty list means valid).

    Returns problems instead of raising so callers can report all of
    them at once -- a comparator diagnosing a hand-edited baseline wants
    the full list, not the first field that happened to be checked.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("format") != FORMAT_VERSION:
        problems.append(
            f"format: expected {FORMAT_VERSION}, got {doc.get('format')!r}"
        )
    if not isinstance(doc.get("scenario"), str) or not doc.get("scenario"):
        problems.append("scenario: missing or not a string")
    for key in ("machine", "git", "config"):
        if not isinstance(doc.get(key), dict):
            problems.append(f"{key}: missing or not an object")
    if not isinstance(doc.get("engine_fingerprint"), str):
        problems.append("engine_fingerprint: missing or not a string")
    if not isinstance(doc.get("created_unix"), (int, float)):
        problems.append("created_unix: missing or not a number")

    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells: missing or empty")
        cells = []
    seen_ids = set()
    for index, cell in enumerate(cells):
        where = f"cells[{index}]"
        if not isinstance(cell, dict):
            problems.append(f"{where}: not an object")
            continue
        cell_id = cell.get("id")
        if not isinstance(cell_id, str) or not cell_id:
            problems.append(f"{where}.id: missing or not a string")
        elif cell_id in seen_ids:
            problems.append(f"{where}.id: duplicate cell id {cell_id!r}")
        else:
            seen_ids.add(cell_id)
        for key in ("trace", "gpu", "strategy"):
            if not isinstance(cell.get(key), str):
                problems.append(f"{where}.{key}: missing or not a string")
        _check_stat(problems, f"{where}.wall_ms", cell.get("wall_ms"))
        deterministic = cell.get("deterministic")
        if not isinstance(deterministic, dict):
            problems.append(f"{where}.deterministic: missing or not "
                            "an object")
        else:
            for key in _DETERMINISTIC_KEYS:
                if key not in deterministic:
                    problems.append(f"{where}.deterministic.{key}: missing")

    aggregate = doc.get("aggregate")
    if not isinstance(aggregate, dict):
        problems.append("aggregate: missing or not an object")
    else:
        for key in _AGGREGATE_KEYS:
            if key not in aggregate:
                problems.append(f"aggregate.{key}: missing")
    return problems
