"""Trajectory collation: many per-run BENCH documents into one table.

Every CI bench run (and every local ``repro bench``) writes one
``BENCH_<scenario>.json`` snapshot, and the CI job uploads it as an
artifact -- but a pile of per-run artifacts is not a trajectory.
``repro bench --history <dir>`` reads every ``*.json`` under a
directory (recursively, so a directory of unpacked artifact folders
works as-is), keeps the files that look like BENCH documents, and
collates them into rows sorted by ``(scenario, created_unix)``: one
line per run showing when it ran, on which commit and engine
fingerprint, and the headline aggregate numbers.  Walking down one
scenario's block *is* the perf trajectory across commits.

Documents that fail to parse or lack the envelope keys are skipped and
reported (a history directory accumulates junk -- comparator output,
partial downloads); skipping silently would make a hole in the
trajectory look like a fast run.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["HISTORY_COLUMNS", "collate_history", "load_reports",
           "machine_hash"]

#: Column order of one collated row (also the text-table header).
HISTORY_COLUMNS = (
    "scenario", "created_unix", "git_sha", "dirty", "engine_fingerprint",
    "machine", "cells", "wall_ms_total", "delta_wall_ms", "cells_per_sec",
    "peak_rss_kb", "source",
)

#: Envelope keys a file must carry to count as a BENCH document.
_REQUIRED_KEYS = ("scenario", "created_unix", "aggregate", "cells")


def load_reports(directory) -> "tuple[list[dict], list[str]]":
    """(documents, skipped) from every ``*.json`` under *directory*.

    Each returned document gains a ``_source`` key with its path
    relative to *directory*, so a surprising row can be traced back to
    the file it came from.  *skipped* lists files that were not BENCH
    documents, with the reason.
    """
    import json

    root = Path(directory)
    documents: list[dict] = []
    skipped: list[str] = []
    for path in sorted(root.rglob("*.json")):
        rel = path.relative_to(root).as_posix()
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            skipped.append(f"{rel}: unreadable ({exc})")
            continue
        if not isinstance(doc, dict):
            skipped.append(f"{rel}: not a JSON object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in doc]
        if missing:
            skipped.append(
                f"{rel}: not a BENCH document (missing {', '.join(missing)})"
            )
            continue
        if not isinstance(doc.get("aggregate"), dict):
            skipped.append(f"{rel}: aggregate is not an object")
            continue
        doc["_source"] = rel
        documents.append(doc)
    return documents, skipped


def machine_hash(machine: "dict | None") -> "str | None":
    """Short content hash of a document's ``machine`` fingerprint.

    Wall-time deltas are only signal between runs on the same host, so
    the trajectory keys its delta column on this hash rather than just
    the scenario.  Hashing the canonical-JSON dict keeps the column
    stable across key insertion order and schema growth alike."""
    import hashlib
    import json

    if not isinstance(machine, dict) or not machine:
        return None
    canonical = json.dumps(machine, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]


def collate_history(reports: "list[dict]") -> list[dict]:
    """One row per document, sorted by ``(scenario, created_unix)``.

    Row keys are :data:`HISTORY_COLUMNS`; unknown provenance fields
    (a document recorded outside git) collate as ``None`` rather than
    being dropped, so the trajectory keeps its time axis even for runs
    with thin provenance.  ``delta_wall_ms`` is this row's
    ``wall_ms_total`` minus the previous row's *for the same scenario on
    the same machine hash* -- cross-host pairs never produce a delta,
    because that difference measures hardware, not the commit.
    """
    rows: list[dict] = []
    for doc in reports:
        aggregate = doc.get("aggregate") or {}
        git = doc.get("git") or {}
        fingerprint = doc.get("engine_fingerprint")
        rows.append({
            "scenario": doc.get("scenario"),
            "created_unix": doc.get("created_unix"),
            "git_sha": git.get("sha"),
            "dirty": git.get("dirty"),
            "engine_fingerprint": (
                fingerprint[:12] if isinstance(fingerprint, str)
                else None
            ),
            "machine": machine_hash(doc.get("machine")),
            "cells": len(doc.get("cells") or []),
            "wall_ms_total": aggregate.get("wall_ms_total"),
            "delta_wall_ms": None,
            "cells_per_sec": aggregate.get("cells_per_sec"),
            "peak_rss_kb": aggregate.get("peak_rss_kb"),
            "source": doc.get("_source"),
        })
    rows.sort(key=lambda row: (
        row["scenario"] or "", row["created_unix"] or 0,
    ))
    last_wall: "dict[tuple, float]" = {}
    for row in rows:
        key = (row["scenario"], row["machine"])
        wall = row["wall_ms_total"]
        if row["machine"] is None or not isinstance(wall, (int, float)):
            continue
        previous = last_wall.get(key)
        if previous is not None:
            row["delta_wall_ms"] = round(wall - previous, 3)
        last_wall[key] = wall
    return rows
