"""Baseline comparison: diff a fresh BENCH document against a committed one.

Two metric classes, two policies (see :mod:`repro.bench.schema`):

* **deterministic** metrics (simulated cycles, op counts, fingerprints,
  result digests, per-phase simulated time, cache hit rates, on/off and
  serial/parallel bit-identity flags) are compared *exactly*.  Any
  difference is a ``mismatch`` -- the engine's behaviour changed, which
  fails the comparison until the baseline is deliberately re-recorded.
* **timing** metrics (per-cell wall-time medians, aggregate cells/sec,
  telemetry overhead, parallel speedup, peak RSS) are compared with a
  relative tolerance in the *regression* direction only: a run may be
  arbitrarily faster (reported as ``improved``), but slower beyond
  ``1 + tolerance`` is a ``regressed`` verdict.  CI passes generous
  tolerances because its machines differ from the one that recorded the
  baseline; the machine fingerprints of both documents are surfaced in
  the report so a human can judge borderline deltas.

An engine-fingerprint difference alone is *not* a failure -- it is the
expected state of every PR that touches the engine -- but it is called
out in the report, because it is the usual explanation for deterministic
mismatches (re-record the baseline to accept the new behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.schema import FORMAT_VERSION, validate_report

__all__ = [
    "CompareEntry",
    "Comparison",
    "Tolerances",
    "compare_reports",
]

#: Verdicts, from best to worst.
_VERDICT_ORDER = ("improved", "ok", "regressed", "mismatch")


@dataclass(frozen=True)
class Tolerances:
    """Per-class relative tolerances for timing comparisons.

    ``timing_frac=0.5`` means a cell may be up to 50% slower than the
    baseline before it counts as a regression; improvements beyond the
    same fraction are flagged ``improved``.  The default is sized for
    same-machine runs with few repeats (scheduler noise on a busy host
    easily reaches tens of percent); CI uses larger values still.  RSS
    gets its own knob: allocator and interpreter-version noise dwarfs
    genuine leaks at the scale these scenarios allocate.
    """

    timing_frac: float = 0.5
    rss_frac: float = 1.0


@dataclass(frozen=True)
class CompareEntry:
    """One compared metric."""

    metric: str
    kind: str  # "deterministic" | "timing" | "rss" | "structure"
    baseline: object
    fresh: object
    verdict: str  # "ok" | "improved" | "regressed" | "mismatch"

    @property
    def ratio(self) -> "float | None":
        """fresh / baseline for numeric pairs (None otherwise)."""
        if (isinstance(self.baseline, (int, float))
                and isinstance(self.fresh, (int, float))
                and not isinstance(self.baseline, bool)
                and self.baseline):
            return float(self.fresh) / float(self.baseline)
        return None


@dataclass
class Comparison:
    """Outcome of one baseline diff."""

    scenario: str
    entries: "list[CompareEntry]" = field(default_factory=list)
    notes: "list[str]" = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """Worst per-metric verdict, or ``ok`` for an empty comparison."""
        worst = "ok"
        for entry in self.entries:
            if (_VERDICT_ORDER.index(entry.verdict)
                    > _VERDICT_ORDER.index(worst)):
                worst = entry.verdict
        return worst

    @property
    def passed(self) -> bool:
        return self.verdict in ("ok", "improved")

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def counts(self) -> "dict[str, int]":
        counts = {verdict: 0 for verdict in _VERDICT_ORDER}
        for entry in self.entries:
            counts[entry.verdict] += 1
        return counts

    def failures(self) -> "list[CompareEntry]":
        return [entry for entry in self.entries
                if entry.verdict in ("regressed", "mismatch")]

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "verdict": self.verdict,
            "passed": self.passed,
            "counts": self.counts(),
            "notes": list(self.notes),
            "entries": [
                {
                    "metric": entry.metric,
                    "kind": entry.kind,
                    "baseline": entry.baseline,
                    "fresh": entry.fresh,
                    "ratio": entry.ratio,
                    "verdict": entry.verdict,
                }
                for entry in self.entries
            ],
        }

    def render_text(self) -> str:
        """Human-readable report: notes, failures, then the verdict."""
        lines = [f"bench compare [{self.scenario}]"]
        lines.extend(f"  note: {note}" for note in self.notes)
        shown = self.failures() or [
            entry for entry in self.entries if entry.verdict == "improved"
        ]
        for entry in shown:
            ratio = entry.ratio
            ratio_text = f" ({ratio:.2f}x)" if ratio is not None else ""
            lines.append(
                f"  {entry.verdict:<9} {entry.metric}: "
                f"{entry.baseline!r} -> {entry.fresh!r}{ratio_text}"
            )
        counts = self.counts()
        lines.append(
            f"  {len(self.entries)} metrics compared: "
            + ", ".join(f"{counts[v]} {v}" for v in _VERDICT_ORDER)
        )
        lines.append(f"verdict: {'PASS' if self.passed else 'REGRESS'} "
                     f"({self.verdict})")
        return "\n".join(lines)


def _timing_verdict(baseline: float, fresh: float, frac: float) -> str:
    """Regression-direction tolerance band around the baseline."""
    if baseline <= 0:
        return "ok"
    ratio = fresh / baseline
    if ratio > 1.0 + frac:
        return "regressed"
    if ratio < 1.0 / (1.0 + frac):
        return "improved"
    return "ok"


def _exact(comparison: Comparison, metric: str, baseline, fresh) -> None:
    comparison.entries.append(CompareEntry(
        metric=metric, kind="deterministic", baseline=baseline, fresh=fresh,
        verdict="ok" if baseline == fresh else "mismatch",
    ))


def _timing(comparison: Comparison, metric: str, baseline, fresh,
            frac: float, higher_is_better: bool = False,
            kind: str = "timing") -> None:
    if baseline is None or fresh is None:
        comparison.entries.append(CompareEntry(
            metric=metric, kind=kind, baseline=baseline, fresh=fresh,
            verdict="ok" if baseline == fresh else "mismatch",
        ))
        return
    if higher_is_better:
        # Express "fresh got smaller" as a slowdown by inverting.
        verdict = _timing_verdict(fresh, baseline, frac)
    else:
        verdict = _timing_verdict(baseline, fresh, frac)
    comparison.entries.append(CompareEntry(
        metric=metric, kind=kind, baseline=baseline, fresh=fresh,
        verdict=verdict,
    ))


def compare_reports(baseline: dict, fresh: dict,
                    tolerances: "Tolerances | None" = None) -> Comparison:
    """Diff *fresh* against *baseline*; see the module policy.

    Both documents must be schema-valid, the same format version and the
    same scenario -- violations raise :class:`ValueError` (a usage error,
    distinct from a regression verdict).
    """
    tolerances = tolerances or Tolerances()
    for label, doc in (("baseline", baseline), ("fresh", fresh)):
        problems = validate_report(doc)
        if problems:
            raise ValueError(
                f"{label} document is not schema-valid "
                f"(format {FORMAT_VERSION}): " + "; ".join(problems[:5])
            )
    if baseline["scenario"] != fresh["scenario"]:
        raise ValueError(
            f"scenario mismatch: baseline {baseline['scenario']!r} "
            f"vs fresh {fresh['scenario']!r}"
        )

    comparison = Comparison(scenario=fresh["scenario"])
    if baseline["engine_fingerprint"] != fresh["engine_fingerprint"]:
        comparison.notes.append(
            "engine source changed since the baseline was recorded; "
            "deterministic mismatches below (if any) reflect new engine "
            "behaviour -- re-record the baseline to accept it"
        )
    if baseline["machine"] != fresh["machine"]:
        comparison.notes.append(
            f"different machines: baseline {baseline['machine']}, "
            f"fresh {fresh['machine']}; timing verdicts use tolerance "
            f"{tolerances.timing_frac:+.0%}"
        )

    base_cells = {cell["id"]: cell for cell in baseline["cells"]}
    fresh_cells = {cell["id"]: cell for cell in fresh["cells"]}
    for cell_id in sorted(set(base_cells) | set(fresh_cells)):
        if cell_id not in fresh_cells or cell_id not in base_cells:
            comparison.entries.append(CompareEntry(
                metric=f"cell[{cell_id}]", kind="structure",
                baseline=cell_id in base_cells,
                fresh=cell_id in fresh_cells, verdict="mismatch",
            ))
            continue
        base, new = base_cells[cell_id], fresh_cells[cell_id]
        for key, base_value in base["deterministic"].items():
            _exact(comparison, f"cell[{cell_id}].{key}",
                   base_value, new["deterministic"].get(key))
        _timing(comparison, f"cell[{cell_id}].wall_ms.median",
                base["wall_ms"]["median"], new["wall_ms"]["median"],
                tolerances.timing_frac)

    base_agg, fresh_agg = baseline["aggregate"], fresh["aggregate"]
    _timing(comparison, "aggregate.cells_per_sec",
            base_agg["cells_per_sec"], fresh_agg["cells_per_sec"],
            tolerances.timing_frac, higher_is_better=True)
    _timing(comparison, "aggregate.peak_rss_kb",
            base_agg["peak_rss_kb"], fresh_agg["peak_rss_kb"],
            tolerances.rss_frac, kind="rss")

    base_cache, fresh_cache = base_agg["cache"], fresh_agg["cache"]
    if base_cache is not None and fresh_cache is not None:
        for key in ("cold_hit_rate", "warm_hit_rate"):
            _exact(comparison, f"aggregate.cache.{key}",
                   base_cache[key], fresh_cache[key])
        _timing(comparison, "aggregate.cache.warm_speedup",
                base_cache["warm_speedup"], fresh_cache["warm_speedup"],
                tolerances.timing_frac, higher_is_better=True)
    elif base_cache is not None or fresh_cache is not None:
        _exact(comparison, "aggregate.cache", base_cache, fresh_cache)

    base_tel, fresh_tel = (base_agg["telemetry_overhead"],
                           fresh_agg["telemetry_overhead"])
    if base_tel is not None and fresh_tel is not None:
        _exact(comparison, "aggregate.telemetry_overhead.bit_identical",
               base_tel["bit_identical"], fresh_tel["bit_identical"])
        _timing(comparison, "aggregate.telemetry_overhead.overhead_ratio",
                base_tel["overhead_ratio"], fresh_tel["overhead_ratio"],
                tolerances.timing_frac)
    elif base_tel is not None or fresh_tel is not None:
        _exact(comparison, "aggregate.telemetry_overhead",
               base_tel, fresh_tel)

    base_par, fresh_par = base_agg["parallel"], fresh_agg["parallel"]
    if base_par is not None and fresh_par is not None:
        for key in ("jobs", "bit_identical"):
            _exact(comparison, f"aggregate.parallel.{key}",
                   base_par[key], fresh_par[key])
        _timing(comparison, "aggregate.parallel.speedup",
                base_par["speedup"], fresh_par["speedup"],
                tolerances.timing_frac, higher_is_better=True)
    elif base_par is not None or fresh_par is not None:
        _exact(comparison, "aggregate.parallel", base_par, fresh_par)

    # ``.get``: the service block postdates FORMAT_VERSION 1 baselines,
    # which stay valid without it (absent compares like null).
    base_svc = base_agg.get("service")
    fresh_svc = fresh_agg.get("service")
    if base_svc is not None and fresh_svc is not None:
        for key in ("requests", "unique_cells", "coalesced", "shed",
                    "degraded", "executions", "bit_identical"):
            _exact(comparison, f"aggregate.service.{key}",
                   base_svc[key], fresh_svc[key])
        _timing(comparison, "aggregate.service.requests_per_sec",
                base_svc["requests_per_sec"], fresh_svc["requests_per_sec"],
                tolerances.timing_frac, higher_is_better=True)
        for key in ("latency_ms_p50", "latency_ms_p95"):
            _timing(comparison, f"aggregate.service.{key}",
                    base_svc[key], fresh_svc[key], tolerances.timing_frac)
        # Span-breakdown keys postdate the first service baselines;
        # compare only when both sides report them.
        for key in ("queue_wait_ms_p50", "queue_wait_ms_p95",
                    "execute_ms_p50", "execute_ms_p95"):
            if key in base_svc and key in fresh_svc:
                _timing(comparison, f"aggregate.service.{key}",
                        base_svc[key], fresh_svc[key],
                        tolerances.timing_frac)
    elif base_svc is not None or fresh_svc is not None:
        _exact(comparison, "aggregate.service", base_svc, fresh_svc)

    return comparison
