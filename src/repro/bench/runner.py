"""Scenario execution: measure one registry entry, produce one document.

:func:`run_scenario` drives a :class:`~repro.bench.registry.Scenario`
through the existing simulation stack -- ``simulate_kernel`` directly for
``engine``/``telemetry`` cells, :func:`~repro.experiments.runner
.simulate_cell` against a private disk cache for ``cache`` cells, and
:func:`~repro.experiments.parallel.run_matrix_parallel` for ``parallel``
cells -- and records per-cell wall-time samples next to the cell's
deterministic projection (simulated cycles, result digest, trace
fingerprint, per-phase simulated time).

Measurement discipline:

* trace construction/capture happens once per trace, *outside* every
  timed region -- the harness measures the engine, not workload setup;
* every repeat uses a fresh strategy instance (mirroring production use)
  and its result digest is checked against the first repeat's, so a
  nondeterministic engine shows up as ``repeat_stable: false`` in the
  document rather than as silent noise;
* cache and parallel modes run against private, initially empty state
  (a temp-dir disk cache; cleared memoization), never the developer's
  real ``~/.cache/repro-arc``.

Progress is streamed to the obslog (``bench.start`` / ``bench.cell`` /
``bench.finish`` events) so a ``--log`` run records its benchmark
lifecycle alongside cache and cell events.
"""

from __future__ import annotations

import tempfile

from repro import obslog
from repro.bench.metrics import (
    peak_rss_kb,
    phase_cycle_totals,
    sim_digest,
    summarize_samples,
    time_call_ms,
)
from repro.bench.registry import Scenario, get_scenario
from repro.bench.schema import make_envelope

__all__ = ["run_scenario"]


def _cell_id(trace: str, gpu: str, strategy: str,
             variant: "str | None" = None) -> str:
    parts = [trace, gpu, strategy]
    if variant is not None:
        parts.append(variant)
    return "|".join(parts)


def _plan(scenario: Scenario) -> "tuple[list, list]":
    """Build traces once and expand the applicable cell matrix.

    Returns ``(built_traces, cells)`` where cells are
    ``(trace_name, trace, gpu_name, strategy)`` tuples.  SW-B strategies
    skip divergence-ineligible traces, exactly like the figure runner.
    """
    from repro.gpu import SIMULATED_GPUS

    built = [(name, factory()) for name, factory in scenario.traces]
    cells = []
    for gpu_name in scenario.gpus:
        if gpu_name not in SIMULATED_GPUS:
            raise KeyError(f"unknown GPU {gpu_name!r} in scenario "
                           f"{scenario.name!r}")
        for trace_name, trace in built:
            for strategy in scenario.strategies:
                if "SW-B" in strategy and not trace.bfly_eligible:
                    continue
                cells.append((trace_name, trace, gpu_name, strategy))
    return built, cells


def _measure_simulations(trace, gpu_name: str, strategy: str, repeats: int,
                         with_telemetry: bool) -> "tuple[dict, object]":
    """Time *repeats* fresh simulations of one cell; build its record."""
    from repro.experiments.runner import make_strategy
    from repro.gpu import SIMULATED_GPUS, Telemetry, simulate_kernel

    config = SIMULATED_GPUS[gpu_name]
    samples, digests = [], []
    result = None
    telemetry = None
    for _ in range(repeats):
        instance = make_strategy(strategy)
        telemetry = Telemetry() if with_telemetry else None
        wall_ms, result = time_call_ms(
            lambda: simulate_kernel(trace, config, instance,
                                    telemetry=telemetry)
        )
        samples.append(wall_ms)
        digests.append(sim_digest(result))
    record = {
        "wall_ms": summarize_samples(samples),
        "deterministic": {
            "sim_cycles": result.total_cycles,
            "rop_ops": result.rop_ops,
            "lane_ops": result.lane_ops,
            "trace_fingerprint": trace.fingerprint,
            "sim_digest": digests[0],
            "repeat_stable": len(set(digests)) == 1,
            "phase_cycles": (
                phase_cycle_totals(telemetry) if with_telemetry else None
            ),
        },
        "throughput": {
            "batches_per_sec": (
                trace.n_batches / (summarize_samples(samples)["median"] / 1e3)
            ),
        },
    }
    return record, result


def _run_engine(scenario: Scenario, cells, repeats: int) -> "tuple[list, dict]":
    records = []
    for trace_name, trace, gpu_name, strategy in cells:
        record, _ = _measure_simulations(trace, gpu_name, strategy,
                                         repeats, with_telemetry=False)
        record = {"id": _cell_id(trace_name, gpu_name, strategy),
                  "trace": trace_name, "gpu": gpu_name,
                  "strategy": strategy, "variant": None, **record}
        obslog.emit("bench.cell", id=record["id"],
                    wall_ms=record["wall_ms"]["median"])
        records.append(record)
    return records, {}


def _run_telemetry(scenario: Scenario, cells,
                   repeats: int) -> "tuple[list, dict]":
    records = []
    ratios = []
    bit_identical = True
    for trace_name, trace, gpu_name, strategy in cells:
        pair = {}
        for variant, with_telemetry in (("off", False), ("on", True)):
            record, _ = _measure_simulations(trace, gpu_name, strategy,
                                             repeats, with_telemetry)
            record = {
                "id": _cell_id(trace_name, gpu_name, strategy, variant),
                "trace": trace_name, "gpu": gpu_name, "strategy": strategy,
                "variant": variant, **record,
            }
            obslog.emit("bench.cell", id=record["id"],
                        wall_ms=record["wall_ms"]["median"])
            records.append(record)
            pair[variant] = record
        ratios.append(pair["on"]["wall_ms"]["median"]
                      / max(pair["off"]["wall_ms"]["median"], 1e-9))
        if (pair["on"]["deterministic"]["sim_digest"]
                != pair["off"]["deterministic"]["sim_digest"]):
            bit_identical = False
    overhead = {
        "overhead_ratio": sum(ratios) / len(ratios),
        "bit_identical": bit_identical,
    }
    return records, {"telemetry_overhead": overhead}


def _run_cache(scenario: Scenario, cells, repeats: int) -> "tuple[list, dict]":
    """A cold pass (simulate + store) then warm passes (pure disk hits)."""
    from repro.experiments import diskcache
    from repro.experiments.runner import make_strategy, simulate_cell
    from repro.gpu import SIMULATED_GPUS

    records = []
    pass_wall = {"cold": 0.0, "warm": 0.0}
    pass_stats = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        with diskcache.isolated(tmp):
            # isolated() repoints the cache but leaves an environment
            # REPRO_NO_DISK_CACHE=1 in force; this scenario *measures*
            # the disk layer, so force-enable its private directory
            # (isolated()'s exit restores the caller's state either way).
            cache = diskcache.configure(root=tmp, enabled=True)
            for variant in ("cold", "warm"):
                start_hits = cache.stats.hits
                start_lookups = cache.stats.lookups
                for trace_name, trace, gpu_name, strategy in cells:
                    config = SIMULATED_GPUS[gpu_name]
                    samples, digests = [], []
                    result = None
                    # The cold pass runs once by definition (a repeat
                    # would already be warm); warm lookups repeat.
                    for _ in range(1 if variant == "cold" else repeats):
                        instance = make_strategy(strategy)
                        wall_ms, result = time_call_ms(
                            lambda: simulate_cell(trace, config, instance)
                        )
                        samples.append(wall_ms)
                        digests.append(sim_digest(result))
                    record = {
                        "id": _cell_id(trace_name, gpu_name, strategy,
                                       variant),
                        "trace": trace_name, "gpu": gpu_name,
                        "strategy": strategy, "variant": variant,
                        "wall_ms": summarize_samples(samples),
                        "deterministic": {
                            "sim_cycles": result.total_cycles,
                            "rop_ops": result.rop_ops,
                            "lane_ops": result.lane_ops,
                            "trace_fingerprint": trace.fingerprint,
                            "sim_digest": digests[0],
                            "repeat_stable": len(set(digests)) == 1,
                            "phase_cycles": None,
                        },
                        "throughput": {
                            "batches_per_sec": trace.n_batches / (
                                summarize_samples(samples)["median"] / 1e3
                            ),
                        },
                    }
                    obslog.emit("bench.cell", id=record["id"],
                                wall_ms=record["wall_ms"]["median"])
                    records.append(record)
                    pass_wall[variant] += sum(samples)
                lookups = cache.stats.lookups - start_lookups
                hits = cache.stats.hits - start_hits
                pass_stats[variant] = hits / lookups if lookups else 0.0
    cache_block = {
        "cold_hit_rate": pass_stats["cold"],
        "warm_hit_rate": pass_stats["warm"],
        "warm_speedup": pass_wall["cold"] / max(pass_wall["warm"], 1e-9),
    }
    return records, {"cache": cache_block}


def _run_parallel(scenario: Scenario, cells,
                  repeats: int) -> "tuple[list, dict]":
    """The matrix serially, then fanned over a spawn pool."""
    from repro.experiments import diskcache
    from repro.experiments.runner import clear_caches, seed_trace

    records = []
    serial_wall = 0.0
    serial_digests = {}
    for trace_name, trace, gpu_name, strategy in cells:
        record, _ = _measure_simulations(trace, gpu_name, strategy,
                                         repeats, with_telemetry=False)
        record = {"id": _cell_id(trace_name, gpu_name, strategy, "serial"),
                  "trace": trace_name, "gpu": gpu_name,
                  "strategy": strategy, "variant": "serial", **record}
        obslog.emit("bench.cell", id=record["id"],
                    wall_ms=record["wall_ms"]["median"])
        records.append(record)
        serial_wall += record["wall_ms"]["median"]
        serial_digests[(trace_name, gpu_name, strategy)] = (
            record["deterministic"]["sim_digest"]
        )

    from repro.experiments.parallel import run_matrix_parallel

    workloads = sorted({name for name, _, _, _ in cells})
    trace_by_name = {name: trace for name, trace, _, _ in cells}
    bit_identical = True
    with tempfile.TemporaryDirectory(prefix="repro-bench-par-") as tmp:
        with diskcache.isolated(tmp):
            # Force-enable the private cache dir (the spawn pool journals
            # its resume manifest under it) regardless of the caller's
            # REPRO_NO_DISK_CACHE; isolated() restores state on exit.
            diskcache.configure(root=tmp, enabled=True)
            # Private memoization: seed exactly the bench traces, run,
            # then drop everything so no state leaks to the caller.
            clear_caches()
            for name in workloads:
                seed_trace(name, trace_by_name[name])
            try:
                parallel_wall, matrix = time_call_ms(
                    lambda: run_matrix_parallel(
                        workloads, list(scenario.strategies),
                        list(scenario.gpus), jobs=scenario.jobs,
                        resume=False,
                    )
                )
            finally:
                clear_caches()
    for cell in matrix:
        expected = serial_digests.get(
            (cell.workload, cell.gpu, cell.strategy)
        )
        if expected is not None and sim_digest(cell.result) != expected:
            bit_identical = False
    parallel_block = {
        "jobs": scenario.jobs,
        "serial_wall_ms": serial_wall,
        "parallel_wall_ms": parallel_wall,
        "speedup": serial_wall / max(parallel_wall, 1e-9),
        "bit_identical": bit_identical,
    }
    return records, {"parallel": parallel_block}


def _percentile(samples: "list[float]", frac: float) -> float:
    """Nearest-rank percentile of *samples* (0.5 -> p50, 0.95 -> p95)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(frac * len(ordered))))
    return ordered[rank]


def _run_service(scenario: Scenario, cells,
                 repeats: int) -> "tuple[list, dict]":
    """A duplicate-heavy burst through an in-process service broker.

    ``repeats`` is the request count per unique cell.  The broker starts
    *paused*, every request is admitted before dispatch resumes, so the
    coalescing arithmetic is exact: one admission per unique cell, every
    duplicate coalesced onto it.  A planned ``queue-full`` fault on the
    first cell's first arrival makes load-shedding part of the measured
    (and baseline-compared) behaviour.  A serial reference pass proves
    every service-delivered result bit-identical.
    """
    import asyncio

    from repro.experiments import diskcache, faults
    from repro.experiments.runner import (
        clear_caches,
        make_strategy,
        seed_trace,
    )
    from repro.gpu import SIMULATED_GPUS, simulate_kernel
    from repro.service import Broker, SimRequest

    # Serial reference, outside the service path and the timed region.
    reference = {}
    for trace_name, trace, gpu_name, strategy in cells:
        result = simulate_kernel(trace, SIMULATED_GPUS[gpu_name],
                                 make_strategy(strategy))
        reference[_cell_id(trace_name, gpu_name, strategy)] = (trace, result)

    shed_cell = _cell_id(cells[0][0], cells[0][2], cells[0][3])
    plan = faults.FaultPlan((
        faults.FaultSpec(cell=shed_cell, kind="queue-full", times=1),
    ))

    async def drive(broker: Broker):
        await broker.start()
        try:
            tasks = []
            for _ in range(repeats):
                for trace_name, _, gpu_name, strategy in cells:
                    request = SimRequest(workload=trace_name, gpu=gpu_name,
                                         strategy=strategy)
                    tasks.append(asyncio.ensure_future(
                        broker.submit(request)
                    ))
            # One scheduler pass runs every submission's synchronous
            # admission step (in creation order) before any dispatch.
            await asyncio.sleep(0)
            broker.resume()
            return await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            await broker.stop()

    trace_by_name = {name: trace for name, trace, _, _ in cells}
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        with diskcache.isolated(tmp):
            diskcache.configure(root=tmp, enabled=True)
            clear_caches()
            for name, trace in trace_by_name.items():
                seed_trace(name, trace)
            faults.configure(plan)
            broker = Broker(jobs=scenario.jobs, paused=True,
                            session="bench-service")
            try:
                wall_ms, outcomes = time_call_ms(
                    lambda: asyncio.run(drive(broker))
                )
            finally:
                faults.configure(None)
                clear_caches()

    latencies_by_cell: "dict[str, list[float]]" = {}
    digests_by_cell: "dict[str, list[str]]" = {}
    bit_identical = True
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            continue  # the planned shed; counted via broker.stats below
        latencies_by_cell.setdefault(outcome.cell, []).append(
            outcome.latency_ms
        )
        digests_by_cell.setdefault(outcome.cell, []).append(
            sim_digest(outcome.result)
        )

    records = []
    all_latencies = []
    for trace_name, trace, gpu_name, strategy in cells:
        cell_id = _cell_id(trace_name, gpu_name, strategy)
        _, serial_result = reference[cell_id]
        serial_digest = sim_digest(serial_result)
        digests = digests_by_cell.get(cell_id, [])
        if any(digest != serial_digest for digest in digests):
            bit_identical = False
        latencies = latencies_by_cell.get(cell_id) or [0.0]
        all_latencies.extend(latencies_by_cell.get(cell_id, []))
        record = {
            "id": cell_id, "trace": trace_name, "gpu": gpu_name,
            "strategy": strategy, "variant": None,
            "wall_ms": summarize_samples(latencies),
            "deterministic": {
                "sim_cycles": serial_result.total_cycles,
                "rop_ops": serial_result.rop_ops,
                "lane_ops": serial_result.lane_ops,
                "trace_fingerprint": trace.fingerprint,
                "sim_digest": serial_digest,
                "repeat_stable": len(set(digests)) <= 1,
                "phase_cycles": None,
            },
            "throughput": {
                "batches_per_sec": trace.n_batches / (
                    max(summarize_samples(latencies)["median"], 1e-9) / 1e3
                ),
            },
        }
        obslog.emit("bench.cell", id=record["id"],
                    wall_ms=record["wall_ms"]["median"])
        records.append(record)

    stats = broker.stats
    service_block = {
        # Deterministic under the paused-admission protocol above.
        "requests": stats.requests,
        "unique_cells": len(cells),
        "coalesced": stats.coalesced,
        "shed": stats.shed,
        "degraded": stats.degraded,
        "executions": stats.executions,
        "bit_identical": bit_identical,
        # Timing (host-dependent, tolerance-compared).
        "requests_per_sec": stats.requests / max(wall_ms / 1e3, 1e-9),
        "latency_ms_p50": _percentile(all_latencies, 0.5),
        "latency_ms_p95": _percentile(all_latencies, 0.95),
    }
    # Span-level breakdown: where the request latency went.  Sampled by
    # the broker from its svc.queue_wait / svc.execute spans, so the
    # bench report and a stitched `repro trace` agree by construction.
    queue_waits = broker.span_samples.get("svc.queue_wait", [])
    executes = broker.span_samples.get("svc.execute", [])
    service_block["queue_wait_ms_p50"] = _percentile(queue_waits, 0.5)
    service_block["queue_wait_ms_p95"] = _percentile(queue_waits, 0.95)
    service_block["execute_ms_p50"] = _percentile(executes, 0.5)
    service_block["execute_ms_p95"] = _percentile(executes, 0.95)
    return records, {"service": service_block}


_MODE_RUNNERS = {
    "engine": _run_engine,
    "telemetry": _run_telemetry,
    "cache": _run_cache,
    "parallel": _run_parallel,
    "service": _run_service,
}


def run_scenario(name: str, repeats: "int | None" = None) -> dict:
    """Execute scenario *name* and return its BENCH document."""
    scenario = get_scenario(name)
    repeats = scenario.repeats if repeats is None else repeats
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    _, cells = _plan(scenario)
    config = {
        "mode": scenario.mode,
        "repeats": repeats,
        "gpus": list(scenario.gpus),
        "strategies": list(scenario.strategies),
        "traces": [trace_name for trace_name, _ in scenario.traces],
        "jobs": (scenario.jobs
                 if scenario.mode in ("parallel", "service") else None),
    }
    obslog.emit("bench.start", scenario=name, mode=scenario.mode,
                repeats=repeats, cells=len(cells))
    doc = make_envelope(name, config)
    records, extra = _MODE_RUNNERS[scenario.mode](scenario, cells, repeats)
    wall_total = sum(
        record["wall_ms"]["mean"] * record["wall_ms"]["n"]
        for record in records
    )
    runs = sum(record["wall_ms"]["n"] for record in records)
    doc["cells"] = records
    doc["aggregate"] = {
        "wall_ms_total": wall_total,
        "cells": len(records),
        "runs": runs,
        "cells_per_sec": runs / max(wall_total / 1e3, 1e-9),
        "peak_rss_kb": peak_rss_kb(),
        "cache": extra.get("cache"),
        "telemetry_overhead": extra.get("telemetry_overhead"),
        "parallel": extra.get("parallel"),
        "service": extra.get("service"),
    }
    obslog.emit("bench.finish", scenario=name, cells=len(records),
                wall_ms_total=wall_total)
    return doc
