"""Continuous benchmarking: named scenarios, BENCH documents, baselines.

The repository's perf trajectory lives in committed
``benchmarks/baselines/BENCH_<scenario>.json`` files; this package is
the machinery that produces and polices them:

* :mod:`repro.bench.registry`  -- the named scenario matrix
  (``engine_smoke``, ``table2_sweep_small``, ``cache_warm_vs_cold``,
  ``parallel_scaling``, ``telemetry_on_off``);
* :mod:`repro.bench.runner`    -- executes one scenario and produces a
  schema-versioned BENCH document;
* :mod:`repro.bench.metrics`   -- timing, RSS and sample-summary
  primitives plus the deterministic projections (result digests,
  per-phase simulated time);
* :mod:`repro.bench.schema`    -- the document format, provenance
  stamping (machine / git SHA / engine fingerprint) and validation;
* :mod:`repro.bench.compare`   -- the baseline comparator and its
  tolerance policy (exact on deterministic fields, banded on timing);
* :mod:`repro.bench.history`   -- collates a directory of per-run BENCH
  documents into one trajectory table (``repro bench --history``).

CLI entry point: ``repro bench`` (see :mod:`repro.cli`).
"""

from repro.bench.compare import (
    CompareEntry,
    Comparison,
    Tolerances,
    compare_reports,
)
from repro.bench.registry import (
    SCENARIOS,
    Scenario,
    cheap_scenario_names,
    get_scenario,
    scenario_names,
)
from repro.bench.history import (
    HISTORY_COLUMNS,
    collate_history,
    load_reports,
    machine_hash,
)
from repro.bench.runner import run_scenario
from repro.bench.schema import (
    FORMAT_VERSION,
    bench_filename,
    make_envelope,
    validate_report,
)

__all__ = [
    "FORMAT_VERSION",
    "HISTORY_COLUMNS",
    "SCENARIOS",
    "CompareEntry",
    "Comparison",
    "Scenario",
    "Tolerances",
    "bench_filename",
    "cheap_scenario_names",
    "collate_history",
    "compare_reports",
    "get_scenario",
    "load_reports",
    "machine_hash",
    "make_envelope",
    "run_scenario",
    "scenario_names",
    "validate_report",
]
