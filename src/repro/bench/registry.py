"""Named benchmark scenarios: what ``repro bench <name>`` measures.

A scenario is a declarative (trace x GPU x strategy) matrix plus an
execution *mode* that says what the measurement exercises:

* ``engine``     -- raw :func:`~repro.gpu.engine.simulate_kernel` calls,
  no cache, no telemetry: the DES hot loop itself (ROADMAP item 1's
  target metric).
* ``telemetry``  -- every cell twice, collector off vs. on: the
  zero-overhead-when-off promise as a tracked ratio, plus per-phase
  simulated-time totals as deterministic regression material.
* ``cache``      -- every cell twice against a private empty disk cache:
  a cold pass (misses + writes) then a warm pass (pure hits), tracking
  hit rates and the warm-start speedup.
* ``parallel``   -- the matrix serially, then through
  :func:`~repro.experiments.parallel.run_matrix_parallel`: spawn-pool
  scaling and serial/parallel bit-identity.
* ``service``    -- a duplicate-heavy request burst through an
  in-process :class:`~repro.service.Broker`: coalescing fan-out,
  deterministic queue-full shedding, request latency percentiles, and
  service/serial bit-identity.

Traces are built by seeded factories (synthetic generators or small
workload captures), so every scenario is fully deterministic in its
non-timing fields; the matrices are sized to keep the ``cheap``-tagged
scenarios in whole-seconds territory -- they run on every PR in CI.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.trace.events import KernelTrace

__all__ = [
    "SCENARIOS",
    "Scenario",
    "cheap_scenario_names",
    "get_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class Scenario:
    """One named benchmark: a cell matrix plus its execution mode."""

    name: str
    description: str
    #: ``engine`` | ``telemetry`` | ``cache`` | ``parallel`` (see module
    #: docstring).
    mode: str
    #: Cheap scenarios run on every PR in CI; the rest are on demand.
    cheap: bool
    #: Default measurement repeats per cell (CLI ``--repeats`` overrides).
    repeats: int
    #: ``(trace_name, factory)`` pairs; factories are seeded and pure.
    traces: "tuple[tuple[str, Callable[[], KernelTrace]], ...]"
    gpus: "tuple[str, ...]"
    strategies: "tuple[str, ...]"
    #: Worker processes for ``parallel`` mode (ignored elsewhere).
    jobs: int = field(default=2)

    def cell_count(self) -> int:
        """Upper bound on matrix cells (SW-B skips divergent traces)."""
        return len(self.traces) * len(self.gpus) * len(self.strategies)


def _engine_smoke_coalesced() -> "KernelTrace":
    from repro.trace import coalesced_trace

    return coalesced_trace(n_batches=600, n_slots=256, num_params=8,
                           seed=3, name="bench-coalesced")


def _engine_smoke_mixed() -> "KernelTrace":
    from repro.trace import mixed_locality_trace

    return mixed_locality_trace(n_batches=400, n_slots=512, num_params=3,
                                seed=4, name="bench-mixed")


def _engine_smoke_scattered() -> "KernelTrace":
    from repro.trace import scattered_trace

    return scattered_trace(n_batches=300, n_slots=2048, num_params=1,
                           seed=5, name="bench-scattered")


def _small_gaussian_trace() -> "KernelTrace":
    from repro.workloads import GaussianWorkload

    workload = GaussianWorkload(
        key="bench-3D", dataset="bench", description="small 3DGS fit",
        n_gaussians=80, base_scale=0.15, extent=1.0, width=64, height=64,
        seed=1,
    )
    return workload.capture_trace()


def _small_sphere_trace() -> "KernelTrace":
    from repro.workloads import SphereWorkload

    workload = SphereWorkload(
        key="bench-PS", dataset="bench", description="small Pulsar fit",
        n_spheres=60, base_radius=0.16, width=64, height=64, seed=2,
    )
    return workload.capture_trace()


def _histogram_trace() -> "KernelTrace":
    from repro.workloads import HistogramWorkload

    workload = HistogramWorkload(
        n_elements=16384, n_bins=64, smoothness=4, seed=7,
    )
    return workload.capture_trace()


def _service_coalesced() -> "KernelTrace":
    from repro.trace import coalesced_trace

    return coalesced_trace(n_batches=300, n_slots=256, num_params=4,
                           seed=8, name="bench-svc-coalesced")


def _service_scattered() -> "KernelTrace":
    from repro.trace import scattered_trace

    return scattered_trace(n_batches=200, n_slots=1024, num_params=1,
                           seed=9, name="bench-svc-scattered")


def _parallel_coalesced() -> "KernelTrace":
    from repro.trace import coalesced_trace

    return coalesced_trace(n_batches=800, n_slots=256, num_params=8,
                           seed=5, name="bench-par-coalesced")


def _parallel_mixed() -> "KernelTrace":
    from repro.trace import mixed_locality_trace

    return mixed_locality_trace(n_batches=800, n_slots=512, num_params=3,
                                seed=6, name="bench-par-mixed")


SCENARIOS: "dict[str, Scenario]" = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="engine_smoke",
            description="raw DES engine throughput on the three locality "
                        "regimes (coalesced / mixed / scattered)",
            mode="engine",
            cheap=True,
            repeats=3,
            traces=(
                ("coalesced", _engine_smoke_coalesced),
                ("mixed", _engine_smoke_mixed),
                ("scattered", _engine_smoke_scattered),
            ),
            gpus=("3060-Sim",),
            strategies=("baseline", "ARC-HW", "ARC-SW-S-8", "CCCL"),
        ),
        Scenario(
            name="table2_sweep_small",
            description="small Table-2-style workload captures (3DGS "
                        "splat, Pulsar spheres, histogram) through the "
                        "full report-strategy set",
            mode="engine",
            cheap=True,
            repeats=2,
            traces=(
                ("gaussian-small", _small_gaussian_trace),
                ("sphere-small", _small_sphere_trace),
                ("histogram", _histogram_trace),
            ),
            gpus=("3060-Sim",),
            strategies=("baseline", "ARC-HW", "ARC-SW-B-8", "ARC-SW-S-8",
                        "CCCL", "LAB", "PHI"),
        ),
        Scenario(
            name="cache_warm_vs_cold",
            description="disk-cache round trip: a cold pass (simulate + "
                        "store) then a warm pass (pure hits) over one "
                        "strategy set",
            mode="cache",
            cheap=True,
            repeats=1,
            traces=(("coalesced", _engine_smoke_coalesced),),
            gpus=("3060-Sim",),
            strategies=("baseline", "ARC-HW", "CCCL"),
        ),
        Scenario(
            name="parallel_scaling",
            description="serial vs. spawn-pool execution of one matrix: "
                        "scaling factor and serial/parallel bit-identity",
            mode="parallel",
            cheap=False,
            repeats=1,
            traces=(
                ("par-coalesced", _parallel_coalesced),
                ("par-mixed", _parallel_mixed),
            ),
            gpus=("3060-Sim",),
            strategies=("baseline", "ARC-HW", "ARC-SW-S-8", "CCCL"),
            jobs=2,
        ),
        Scenario(
            name="service_load",
            description="the simulation service under a duplicate-heavy "
                        "burst: coalescing fan-out, deterministic "
                        "queue-full shedding, request latency",
            mode="service",
            # ``repeats`` is the request count per unique cell, so the
            # burst is 4x duplicates -- enough to exercise fan-out while
            # staying whole-seconds cheap for per-PR CI.
            cheap=True,
            repeats=4,
            traces=(
                ("svc-coalesced", _service_coalesced),
                ("svc-scattered", _service_scattered),
            ),
            gpus=("3060-Sim",),
            strategies=("baseline", "ARC-HW"),
            jobs=2,
        ),
        Scenario(
            name="telemetry_on_off",
            description="telemetry collector off vs. on for the same "
                        "cells: overhead ratio plus per-phase "
                        "simulated-time totals",
            mode="telemetry",
            cheap=True,
            repeats=3,
            traces=(
                ("coalesced", _engine_smoke_coalesced),
                ("mixed", _engine_smoke_mixed),
            ),
            gpus=("3060-Sim",),
            strategies=("baseline", "LAB"),
        ),
    )
}


def scenario_names() -> "list[str]":
    """Every registered scenario name, sorted."""
    return sorted(SCENARIOS)


def cheap_scenario_names() -> "list[str]":
    """Scenarios cheap enough to run on every PR in CI, sorted."""
    return sorted(name for name, s in SCENARIOS.items() if s.cheap)


def get_scenario(name: str) -> Scenario:
    """Registry lookup with a helpful error for unknown names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench scenario {name!r}; "
            f"choose from {scenario_names()}"
        ) from None
