"""Workloads: the paper's Table 2 registry plus the §5.6 counter-example."""

from repro.workloads.base import IterationOutcome, TrainingReport, Workload
from repro.workloads.datasets import (
    APPLICATIONS,
    WORKLOAD_KEYS,
    CubemapWorkload,
    GaussianWorkload,
    SphereWorkload,
    all_workloads,
    load_workload,
)
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.pagerank import PagerankWorkload, pagerank_trace

__all__ = [
    "Workload",
    "IterationOutcome",
    "TrainingReport",
    "GaussianWorkload",
    "SphereWorkload",
    "CubemapWorkload",
    "WORKLOAD_KEYS",
    "APPLICATIONS",
    "load_workload",
    "all_workloads",
    "HistogramWorkload",
    "PagerankWorkload",
    "pagerank_trace",
]
