"""Procedural ground-truth scenes standing in for the paper's datasets.

The paper trains on NeRF-Synthetic (Lego, Ship), DB-COLMAP (Playroom,
DrJohnson), Tanks&Temples (Truck, Train) and Keenan-Crane meshes.  Offline
we synthesize structured scenes whose *scale knobs* -- primitive count,
image resolution, screen coverage -- mirror the relative complexity of
those datasets: PR/DR are large photorealistic scenes needing many
primitives (where the paper sees the biggest atomic bottleneck), LE/SH are
medium object-centric scenes.

Scenes are clustered blobs rather than uniform noise so that rendered
targets have spatial structure: training gradients then concentrate on
visible, popular primitives exactly as in real scene fitting.
"""

from __future__ import annotations

import numpy as np

from repro.render.gaussians import GaussianScene
from repro.render.spheres import SphereScene

__all__ = [
    "clustered_gaussian_scene",
    "clustered_sphere_scene",
    "perturbed_gaussian_scene",
    "perturbed_sphere_scene",
]


def _cluster_positions(
    rng: np.random.Generator, n_points: int, n_clusters: int, extent: float
) -> tuple[np.ndarray, np.ndarray]:
    """Positions grouped around cluster centers, plus cluster labels."""
    centers = rng.uniform(-extent * 0.7, extent * 0.7, size=(n_clusters, 3))
    labels = rng.integers(0, n_clusters, size=n_points)
    spread = extent / max(2.5, n_clusters ** (1 / 3))
    offsets = rng.normal(scale=spread * 0.5, size=(n_points, 3))
    return centers[labels] + offsets, labels


def clustered_gaussian_scene(
    n_gaussians: int,
    seed: int = 0,
    extent: float = 1.0,
    n_clusters: int = 12,
    base_scale: float = 0.05,
) -> GaussianScene:
    """Ground-truth Gaussian scene: colored clusters of anisotropic blobs."""
    rng = np.random.default_rng(seed)
    positions, labels = _cluster_positions(rng, n_gaussians, n_clusters, extent)
    cluster_colors = rng.uniform(0.1, 0.95, size=(n_clusters, 3))
    colors = np.clip(
        cluster_colors[labels] + rng.normal(scale=0.05, size=(n_gaussians, 3)),
        0.0, 1.0,
    )
    quats = rng.standard_normal((n_gaussians, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    return GaussianScene(
        positions=positions,
        log_scales=np.log(base_scale)
        + rng.uniform(-0.6, 0.6, size=(n_gaussians, 3)),
        quaternions=quats,
        colors=colors,
        opacity_logits=rng.uniform(-1.5, 0.5, size=n_gaussians),
    )


def clustered_sphere_scene(
    n_spheres: int,
    seed: int = 0,
    extent: float = 1.0,
    n_clusters: int = 10,
    base_radius: float = 0.06,
) -> SphereScene:
    """Ground-truth sphere scene for the Pulsar workloads."""
    rng = np.random.default_rng(seed)
    positions, labels = _cluster_positions(rng, n_spheres, n_clusters, extent)
    cluster_colors = rng.uniform(0.1, 0.95, size=(n_clusters, 3))
    colors = np.clip(
        cluster_colors[labels] + rng.normal(scale=0.05, size=(n_spheres, 3)),
        0.0, 1.0,
    )
    return SphereScene(
        centers=positions,
        log_radii=np.log(base_radius)
        + rng.uniform(-0.4, 0.4, size=n_spheres),
        colors=colors,
        opacity_logits=rng.uniform(-1.0, 1.0, size=n_spheres),
    )


def perturbed_gaussian_scene(
    reference: GaussianScene, seed: int = 0, noise: float = 0.05
) -> GaussianScene:
    """Training initialization: the reference geometry, perturbed.

    Mimics 3DGS initialization from a noisy SfM point cloud: positions are
    jittered and appearance is reset, so early training iterations produce
    dense, realistic gradient traffic.
    """
    rng = np.random.default_rng(seed)
    n = len(reference)
    quats = reference.quaternions + rng.normal(scale=noise, size=(n, 4))
    quats /= np.linalg.norm(quats, axis=1, keepdims=True)
    return GaussianScene(
        positions=reference.positions
        + rng.normal(scale=noise, size=(n, 3)),
        log_scales=reference.log_scales
        + rng.normal(scale=noise, size=(n, 3)),
        quaternions=quats,
        colors=np.full((n, 3), 0.5),
        opacity_logits=np.full(n, -2.0),
    )


def perturbed_sphere_scene(
    reference: SphereScene, seed: int = 0, noise: float = 0.05
) -> SphereScene:
    """Training initialization for sphere scenes (see the Gaussian twin)."""
    rng = np.random.default_rng(seed)
    n = len(reference)
    return SphereScene(
        centers=reference.centers + rng.normal(scale=noise, size=(n, 3)),
        log_radii=reference.log_radii + rng.normal(scale=noise, size=n),
        colors=np.full((n, 3), 0.5),
        opacity_logits=np.full(n, -1.5),
    )
