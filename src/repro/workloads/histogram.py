"""Histogram workload: the classic atomic-heavy GPGPU kernel (§5.6 class).

Histogramming is the textbook atomics benchmark the buffering works (LAB,
PHI) target: every thread reads one input element and atomically
increments one bin.  Its intra-warp locality sits *between* rendering and
graph analytics -- neighbouring elements often fall in the same bin when
the input is smooth, and scatter when it is noisy -- so it exercises ARC's
adaptive threshold in a regime neither 3DGS nor pagerank covers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.capture import trace_from_scatter
from repro.trace.events import KernelTrace

__all__ = ["HistogramWorkload"]


@dataclass
class HistogramWorkload:
    """Bin a synthetic signal: one GPU thread per input element.

    Parameters
    ----------
    n_elements:
        Input length (threads launched).
    n_bins:
        Histogram size (the atomic destination buffer).
    smoothness:
        0 gives white noise (low intra-warp locality); larger values give
        a slowly-varying signal whose neighbouring elements share bins
        (high locality).  Implemented as a moving-average window length.
    """

    n_elements: int = 100_000
    n_bins: int = 256
    smoothness: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_elements <= 0 or self.n_bins <= 0:
            raise ValueError("n_elements and n_bins must be positive")
        if self.smoothness < 1:
            raise ValueError("smoothness must be >= 1")
        rng = np.random.default_rng(self.seed)
        signal = rng.random(self.n_elements + self.smoothness - 1)
        if self.smoothness > 1:
            kernel = np.ones(self.smoothness) / self.smoothness
            signal = np.convolve(signal, kernel, mode="valid")
        low, high = signal.min(), signal.max()
        normalized = (signal - low) / max(high - low, 1e-12)
        self.bins = np.minimum(
            (normalized * self.n_bins).astype(np.int64), self.n_bins - 1
        )

    def reference_histogram(self) -> np.ndarray:
        """The histogram the atomics compute (ground truth)."""
        return np.bincount(self.bins, minlength=self.n_bins)

    def capture_trace(self, with_values: bool = False) -> KernelTrace:
        """Atomic trace of the histogram kernel (increment per element)."""
        values = None
        if with_values:
            values = np.ones((self.n_elements, 1))
        return trace_from_scatter(
            self.bins,
            n_slots=self.n_bins,
            num_params=1,
            values=values,
            compute_cycles=8.0,  # a load and a bin computation
            bfly_eligible=False,  # bins differ within most warps
            name=f"histogram-s{self.smoothness}",
        )
