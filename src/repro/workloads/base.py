"""Workload abstraction: a trainable scene plus its atomic-trace capture.

A :class:`Workload` bundles everything one row of the paper's Table 2
needs: a ground-truth scene, procedurally generated target images, a
trainable model, a training loop, and capture of the gradient-computation
kernel's warp atomic trace for the simulator.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.render.camera import Camera, orbit_cameras
from repro.render.loss import psnr
from repro.render.optim import Adam
from repro.trace.events import KernelTrace

__all__ = ["IterationOutcome", "TrainingReport", "Workload"]


@dataclass
class IterationOutcome:
    """Result of one training iteration on one view."""

    loss: float
    gradients: dict[str, np.ndarray]
    trace: KernelTrace | None
    forward_pairs: int
    n_pixels: int


@dataclass
class TrainingReport:
    """Loss/quality trajectory of a training run."""

    workload: str
    losses: list[float] = field(default_factory=list)
    psnr_start: float = 0.0
    psnr_end: float = 0.0
    wall_seconds: float = 0.0

    @property
    def iterations(self) -> int:
        return len(self.losses)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no iterations recorded")
        return self.losses[-1]


class Workload(ABC):
    """One evaluated workload (application x dataset) from Table 2."""

    #: Set by subclasses: can the SW-B kernel transformation be applied?
    bfly_eligible: bool = True
    #: Kernel launches concatenated into one capture (throughput view).
    trace_views: int = 1
    #: Override for the loss kernel's per-channel cycles (None -> use the
    #: GPU cost model's default, which includes 3DGS's D-SSIM term).
    loss_channel_cycles: "float | None" = None

    def __init__(
        self,
        key: str,
        app: str,
        dataset: str,
        description: str,
        n_views: int = 12,
        width: int = 96,
        height: int = 96,
        camera_radius: float = 3.2,
        seed: int = 0,
        trace_views: int | None = None,
    ):
        self.key = key
        self.app = app
        self.dataset = dataset
        self.description = description
        self.n_views = n_views
        self.width = width
        self.height = height
        self.camera_radius = camera_radius
        self.seed = seed
        if trace_views is not None:
            if trace_views <= 0:
                raise ValueError("trace_views must be positive")
            self.trace_views = trace_views
        self._built = False
        self.cameras: list[Camera] = []
        self.targets: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def ensure_built(self) -> None:
        """Build scene, cameras and targets once, lazily."""
        if self._built:
            return
        self.cameras = orbit_cameras(
            self.n_views,
            radius=self.camera_radius,
            width=self.width,
            height=self.height,
        )
        self._build()
        self._built = True

    @abstractmethod
    def _build(self) -> None:
        """Create the ground-truth scene, targets, and trainable model."""

    @abstractmethod
    def parameters(self) -> dict[str, np.ndarray]:
        """The trainable parameter arrays (updated in place)."""

    @abstractmethod
    def iteration(
        self,
        view_index: int,
        capture_trace: bool = False,
        with_values: bool = False,
    ) -> IterationOutcome:
        """Forward + loss + backward on one view."""

    @abstractmethod
    def render_view(self, view_index: int) -> np.ndarray:
        """Render the current model from one training view."""

    def default_optimizer(self) -> Adam:
        """Optimizer used by :meth:`train` when none is supplied."""
        return Adam(lr=0.01)

    # ------------------------------------------------------------------ #
    # Training and capture
    # ------------------------------------------------------------------ #

    def train(
        self,
        iterations: int,
        optimizer=None,
        eval_view: int = 0,
    ) -> TrainingReport:
        """Optimize the model for *iterations* single-view steps."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.ensure_built()
        optimizer = optimizer or self.default_optimizer()
        report = TrainingReport(workload=self.key)
        report.psnr_start = self.quality(eval_view)
        started = time.perf_counter()
        for step in range(iterations):
            view = step % self.n_views
            outcome = self.iteration(view)
            optimizer.step(self.parameters(), outcome.gradients)
            report.losses.append(outcome.loss)
        report.wall_seconds = time.perf_counter() - started
        report.psnr_end = self.quality(eval_view)
        return report

    def quality(self, view_index: int = 0) -> float:
        """PSNR of the current model on one training view."""
        self.ensure_built()
        rendered = self.render_view(view_index)
        return psnr(rendered, self.targets[view_index])

    def capture_trace(
        self,
        with_values: bool = False,
        start_view: int = 0,
        warmup_steps: int = 0,
    ) -> KernelTrace:
        """Atomic trace of the gradient kernel over ``trace_views`` views.

        Consecutive kernel launches are concatenated (same hardware warps
        run back-to-back launches on the same sub-cores), which is the
        throughput picture the paper's per-kernel measurements average
        over.  Optional warmup optimizer steps move the model off its
        exact initialization first.
        """
        self.ensure_built()
        if warmup_steps:
            optimizer = self.default_optimizer()
            for step in range(warmup_steps):
                outcome = self.iteration(step % self.n_views)
                optimizer.step(self.parameters(), outcome.gradients)

        traces = []
        for offset in range(self.trace_views):
            view = (start_view + offset) % self.n_views
            outcome = self.iteration(
                view, capture_trace=True, with_values=with_values
            )
            if outcome.trace is None:
                raise RuntimeError(
                    f"workload {self.key} produced no trace for view {view}"
                )
            traces.append(outcome.trace)
        return _concat_traces(traces, name=self.key)

    def forward_stats(self, view_index: int = 0) -> tuple[int, int]:
        """(compositing pairs, pixel count) of one forward pass."""
        self.ensure_built()
        outcome = self.iteration(view_index)
        return outcome.forward_pairs, outcome.n_pixels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.key}: {self.description}>"


def _concat_traces(traces: list[KernelTrace], name: str) -> KernelTrace:
    """Concatenate back-to-back kernel launches into one trace.

    Warp ids are offset per launch: the hardware block scheduler does not
    pin a tile to the same SM across launches, so consecutive launches
    spread their blocks independently.
    """
    if not traces:
        raise ValueError("no traces to concatenate")
    first = traces[0]
    if len(traces) == 1:
        return KernelTrace(
            lane_slots=first.lane_slots,
            num_params=first.num_params,
            n_slots=first.n_slots,
            warp_id=first.warp_id,
            compute_cycles=first.compute_cycles,
            values=first.values,
            bfly_eligible=first.bfly_eligible,
            name=name,
        )
    if any(t.num_params != first.num_params for t in traces):
        raise ValueError("traces disagree on num_params")
    has_values = all(t.values is not None for t in traces)
    warp_chunks = []
    offset = 0
    for t in traces:
        warp_chunks.append(t.warp_id + offset)
        offset += int(t.warp_id.max(initial=-1)) + 1
    return KernelTrace(
        lane_slots=np.concatenate([t.lane_slots for t in traces]),
        num_params=first.num_params,
        n_slots=max(t.n_slots for t in traces),
        warp_id=np.concatenate(warp_chunks),
        compute_cycles=np.concatenate(
            [t.compute_cycles_per_batch for t in traces]
        ),
        values=(
            np.concatenate([t.values for t in traces]) if has_values else None
        ),
        bfly_eligible=all(t.bfly_eligible for t in traces),
        name=name,
    )
