"""Pagerank atomic workload: the paper's §5.6 counter-example.

Graph analytics kernels (Pannotia's pagerank in the paper) also generate
enormous atomic traffic, but with *low* intra-warp locality: a warp's 32
edges point at 32 (mostly) different destination vertices, so fewer than
0.1% of warps have all lanes updating one address, and ARC's warp-level
reduction finds nothing to merge.  This module builds a push-style pagerank
iteration over a synthetic power-law graph and captures its atomic trace,
so the no-benefit/no-harm claim can be checked in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.gpu.warp import WARP_SIZE
from repro.trace.events import INACTIVE, KernelTrace

__all__ = ["PagerankWorkload", "pagerank_trace"]


@dataclass
class PagerankWorkload:
    """Push-style pagerank over a Barabasi-Albert graph.

    One GPU thread per directed edge: thread ``e = (u, v)`` executes
    ``atomicAdd(&rank_next[v], rank[u] / out_degree[u])``.  Warps cover 32
    consecutive edges in source-sorted order -- the standard CSR layout --
    so lanes of one warp share the *source* but scatter across
    destinations.
    """

    n_nodes: int = 4000
    attachments: int = 4
    seed: int = 0
    damping: float = 0.85

    def __post_init__(self) -> None:
        if self.n_nodes <= self.attachments:
            raise ValueError("n_nodes must exceed the attachment count")
        graph = nx.barabasi_albert_graph(
            self.n_nodes, self.attachments, seed=self.seed
        )
        # Treat each undirected edge as two directed edges (push both ways).
        edges = np.array(graph.edges(), dtype=np.int64)
        directed = np.concatenate([edges, edges[:, ::-1]])
        order = np.lexsort((directed[:, 1], directed[:, 0]))
        self.sources = directed[order, 0]
        self.destinations = directed[order, 1]
        self.out_degree = np.bincount(self.sources, minlength=self.n_nodes)

    @property
    def n_edges(self) -> int:
        return len(self.sources)

    def iterate(self, ranks: np.ndarray) -> np.ndarray:
        """One synchronous pagerank iteration (the semantics the GPU
        kernel's atomics implement)."""
        if ranks.shape != (self.n_nodes,):
            raise ValueError("ranks must be one value per node")
        contribution = ranks[self.sources] / np.maximum(
            self.out_degree[self.sources], 1
        )
        pushed = np.zeros(self.n_nodes)
        np.add.at(pushed, self.destinations, contribution)
        return (1 - self.damping) / self.n_nodes + self.damping * pushed

    def solve(self, iterations: int = 30) -> np.ndarray:
        """Run pagerank to (approximate) convergence."""
        ranks = np.full(self.n_nodes, 1.0 / self.n_nodes)
        for _ in range(iterations):
            ranks = self.iterate(ranks)
        return ranks

    def capture_trace(self, with_values: bool = False) -> KernelTrace:
        """Atomic trace of one pagerank iteration (thread per edge)."""
        n_edges = self.n_edges
        n_batches = (n_edges + WARP_SIZE - 1) // WARP_SIZE
        padded = np.full(n_batches * WARP_SIZE, INACTIVE, dtype=np.int64)
        padded[:n_edges] = self.destinations
        lane_slots = padded.reshape(n_batches, WARP_SIZE)

        values = None
        if with_values:
            ranks = np.full(self.n_nodes, 1.0 / self.n_nodes)
            contribution = ranks[self.sources] / np.maximum(
                self.out_degree[self.sources], 1
            )
            padded_vals = np.zeros(n_batches * WARP_SIZE)
            padded_vals[:n_edges] = contribution
            values = padded_vals.reshape(n_batches, WARP_SIZE, 1)

        return KernelTrace(
            lane_slots=lane_slots,
            num_params=1,
            n_slots=self.n_nodes,
            compute_cycles=12.0,  # a divide and a load; atomics dominate
            values=values,
            bfly_eligible=False,
            name="pagerank",
        )


def pagerank_trace(
    n_nodes: int = 4000, attachments: int = 4, seed: int = 0
) -> KernelTrace:
    """Convenience: the atomic trace of one pagerank iteration."""
    return PagerankWorkload(
        n_nodes=n_nodes, attachments=attachments, seed=seed
    ).capture_trace()
