"""The paper's Table 2 workload registry (3DGS, NvDiffRec, Pulsar).

Twelve workloads across three raster-based differentiable rendering
applications.  Dataset *scale* knobs (primitive count, resolution, scene
extent) mirror the relative complexity of the paper's datasets: the
DB-COLMAP scenes (PR, DR) are large photorealistic environments with many
primitives -- where the paper measures the worst atomic bottleneck and the
biggest ARC speedups -- while the NeRF-Synthetic objects (LE, SH) are
medium-sized, and the NvDiffRec/Pulsar workloads stress different atomic
traffic shapes (scattered texels; divergent sphere kernels).
"""

from __future__ import annotations


from repro.render.optim import Adam
from repro.render.splatting import GaussianRenderer
from repro.render.spheres import SphereRenderer
from repro.render.texture import Cubemap, CubemapRenderer, procedural_cubemap
from repro.workloads.base import IterationOutcome, Workload
from repro.workloads.scenes import (
    clustered_gaussian_scene,
    clustered_sphere_scene,
    perturbed_gaussian_scene,
    perturbed_sphere_scene,
)

__all__ = [
    "GaussianWorkload",
    "SphereWorkload",
    "CubemapWorkload",
    "WORKLOAD_KEYS",
    "APPLICATIONS",
    "load_workload",
    "all_workloads",
]


class GaussianWorkload(Workload):
    """3D Gaussian Splatting scene fitting (the paper's "3D" rows)."""

    bfly_eligible = True

    def __init__(self, key, dataset, description, n_gaussians,
                 width=96, height=96, extent=1.0, n_clusters=12,
                 base_scale=0.05, seed=0, compute_cycles=280.0, **kwargs):
        super().__init__(
            key=key, app="3DGS", dataset=dataset, description=description,
            width=width, height=height, seed=seed, **kwargs,
        )
        self.n_gaussians = n_gaussians
        self.extent = extent
        self.n_clusters = n_clusters
        self.base_scale = base_scale
        self.compute_cycles = compute_cycles

    def _build(self) -> None:
        reference = clustered_gaussian_scene(
            self.n_gaussians, seed=self.seed, extent=self.extent,
            n_clusters=self.n_clusters, base_scale=self.base_scale,
        )
        reference_renderer = GaussianRenderer(reference)
        self.targets = [reference_renderer.render(c) for c in self.cameras]
        self.scene = perturbed_gaussian_scene(reference, seed=self.seed + 1)
        self.renderer = GaussianRenderer(
            self.scene, compute_cycles=self.compute_cycles
        )

    def parameters(self):
        """The trainable scene arrays (updated in place)."""
        return self.scene.parameters()

    def default_optimizer(self) -> Adam:
        """Adam with the per-parameter learning rates 3DGS-style training uses."""
        return Adam(
            lr=0.01,
            lr_overrides={
                "positions": 0.002,
                "log_scales": 0.004,
                "quaternions": 0.002,
                "colors": 0.02,
                "opacity_logits": 0.02,
            },
        )

    def iteration(self, view_index, capture_trace=False, with_values=False):
        """Forward + loss + backward on one training view."""
        self.ensure_built()
        camera = self.cameras[view_index]
        context = self.renderer.forward(camera)
        result = self.renderer.backward(
            camera, context, self.targets[view_index],
            capture_trace=capture_trace, with_values=with_values,
            trace_name=self.key,
        )
        return IterationOutcome(
            loss=result.loss,
            gradients=result.gradients,
            trace=result.trace,
            forward_pairs=context.forward_pairs,
            n_pixels=camera.width * camera.height,
        )

    def render_view(self, view_index):
        """Render the current model from one training view."""
        self.ensure_built()
        return self.renderer.render(self.cameras[view_index])


class SphereWorkload(Workload):
    """Pulsar sphere-based rendering (the paper's "PS" rows).

    Pulsar's gradient kernel could not eliminate thread divergence, so the
    SW-B (butterfly) variant is inapplicable (§7.2).
    """

    bfly_eligible = False

    def __init__(self, key, dataset, description, n_spheres,
                 width=96, height=96, extent=1.0, n_clusters=10,
                 base_radius=0.06, seed=0, compute_cycles=200.0, **kwargs):
        super().__init__(
            key=key, app="Pulsar", dataset=dataset, description=description,
            width=width, height=height, seed=seed, **kwargs,
        )
        self.n_spheres = n_spheres
        self.extent = extent
        self.n_clusters = n_clusters
        self.base_radius = base_radius
        self.compute_cycles = compute_cycles

    def _build(self) -> None:
        reference = clustered_sphere_scene(
            self.n_spheres, seed=self.seed, extent=self.extent,
            n_clusters=self.n_clusters, base_radius=self.base_radius,
        )
        reference_renderer = SphereRenderer(reference)
        self.targets = [reference_renderer.render(c) for c in self.cameras]
        self.scene = perturbed_sphere_scene(reference, seed=self.seed + 1)
        self.renderer = SphereRenderer(
            self.scene, compute_cycles=self.compute_cycles
        )

    def parameters(self):
        """The trainable scene arrays (updated in place)."""
        return self.scene.parameters()

    def default_optimizer(self) -> Adam:
        """Adam with the per-parameter learning rates 3DGS-style training uses."""
        return Adam(
            lr=0.01,
            lr_overrides={
                "centers": 0.002,
                "log_radii": 0.004,
                "colors": 0.02,
                "opacity_logits": 0.02,
            },
        )

    def iteration(self, view_index, capture_trace=False, with_values=False):
        """Forward + loss + backward on one training view."""
        self.ensure_built()
        camera = self.cameras[view_index]
        context = self.renderer.forward(camera)
        result = self.renderer.backward(
            camera, context, self.targets[view_index],
            capture_trace=capture_trace, with_values=with_values,
            trace_name=self.key,
        )
        return IterationOutcome(
            loss=result.loss,
            gradients=result.gradients,
            trace=result.trace,
            forward_pairs=context.forward_pairs,
            n_pixels=camera.width * camera.height,
        )

    def render_view(self, view_index):
        """Render the current model from one training view."""
        self.ensure_built()
        return self.renderer.render(self.cameras[view_index])


class CubemapWorkload(Workload):
    """NvDiffRec specular-cubemap learning (the paper's "NV" rows)."""

    bfly_eligible = True
    trace_views = 4  # NV kernels are small; capture a few launches
    #: NvDiffRec's loss is a plain image difference (no D-SSIM windows).
    loss_channel_cycles = 30.0
    #: Forward work per pixel in compositing-pair equivalents: ray-sphere
    #: intersection, reflection, cube-face selection, 4-tap bilinear.
    FORWARD_TAPS = 12

    def __init__(self, key, dataset, description, cubemap_resolution,
                 width=128, height=128, n_blobs=24, sphere_radius=1.0,
                 seed=0, compute_cycles=180.0, **kwargs):
        super().__init__(
            key=key, app="NvDiffRec", dataset=dataset,
            description=description, width=width, height=height,
            camera_radius=2.6, seed=seed, **kwargs,
        )
        self.cubemap_resolution = cubemap_resolution
        self.n_blobs = n_blobs
        self.sphere_radius = sphere_radius
        self.compute_cycles = compute_cycles

    def _build(self) -> None:
        reference = procedural_cubemap(
            self.cubemap_resolution, seed=self.seed, n_blobs=self.n_blobs
        )
        reference_renderer = CubemapRenderer(
            reference, sphere_radius=self.sphere_radius
        )
        self.targets = [reference_renderer.render(c) for c in self.cameras]
        self.cubemap = Cubemap.constant(self.cubemap_resolution, 0.4)
        self.renderer = CubemapRenderer(
            self.cubemap, sphere_radius=self.sphere_radius,
            compute_cycles=self.compute_cycles,
        )

    def parameters(self):
        """The trainable cubemap texels (updated in place)."""
        return self.cubemap.parameters()

    def default_optimizer(self) -> Adam:
        """Adam with the per-parameter learning rates 3DGS-style training uses."""
        return Adam(lr=0.05)

    def iteration(self, view_index, capture_trace=False, with_values=False):
        """Forward + loss + backward on one training view."""
        self.ensure_built()
        camera = self.cameras[view_index]
        image = self.renderer.forward(camera)
        loss, gradients, trace = self.renderer.backward(
            camera, image, self.targets[view_index],
            capture_trace=capture_trace, with_values=with_values,
            trace_name=self.key,
        )
        n_pixels = camera.width * camera.height
        return IterationOutcome(
            loss=loss,
            gradients=gradients,
            trace=trace,
            forward_pairs=n_pixels * self.FORWARD_TAPS,
            n_pixels=n_pixels,
        )

    def render_view(self, view_index):
        """Render the current model from one training view."""
        self.ensure_built()
        return self.renderer.render(self.cameras[view_index])


def _registry() -> dict:
    """Factories for all 12 Table 2 workloads (fresh instance per call)."""
    return {
        # 3DGS -- NeRF-Synthetic (medium object scenes)
        "3D-LE": lambda: GaussianWorkload(
            "3D-LE", "NerfSynthetic-Lego", "3DGS on a Lego-scale object",
            n_gaussians=1150, base_scale=0.13, extent=1.8, n_clusters=30,
            width=192, height=160, trace_views=2, seed=10,
        ),
        "3D-SH": lambda: GaussianWorkload(
            "3D-SH", "NerfSynthetic-Ship", "3DGS on a Ship-scale object",
            n_gaussians=1350, base_scale=0.125, extent=1.85, n_clusters=24,
            width=192, height=160, trace_views=2, seed=11,
        ),
        # 3DGS -- DB COLMAP (large photorealistic scenes, worst bottleneck)
        "3D-PR": lambda: GaussianWorkload(
            "3D-PR", "DBCOLMAP-Playroom", "3DGS on a Playroom-scale scene",
            n_gaussians=1400, base_scale=0.165, extent=1.9, n_clusters=40,
            width=192, height=176, trace_views=2, seed=12,
        ),
        "3D-DR": lambda: GaussianWorkload(
            "3D-DR", "DBCOLMAP-DrJohnson", "3DGS on a DrJohnson-scale scene",
            n_gaussians=1550, base_scale=0.17, extent=2.0, n_clusters=44,
            width=192, height=176, trace_views=2, seed=13,
        ),
        # 3DGS -- Tanks & Temples (medium-large outdoor scenes)
        "3D-TK": lambda: GaussianWorkload(
            "3D-TK", "TanksTemples-Truck", "3DGS on a Truck-scale scene",
            n_gaussians=1250, base_scale=0.15, extent=1.85, n_clusters=32,
            width=192, height=160, trace_views=2, seed=14,
        ),
        "3D-TA": lambda: GaussianWorkload(
            "3D-TA", "TanksTemples-Train", "3DGS on a Train-scale scene",
            n_gaussians=1300, base_scale=0.145, extent=1.9, n_clusters=34,
            width=192, height=160, trace_views=2, seed=15,
        ),
        # NvDiffRec -- Keenan Crane meshes + NeRF-Synthetic
        "NV-BB": lambda: CubemapWorkload(
            "NV-BB", "KeenanCrane-Bob", "NvDiffRec cubemap, Bob mesh",
            cubemap_resolution=10, width=192, height=192,
            trace_views=8, seed=20,
        ),
        "NV-SP": lambda: CubemapWorkload(
            "NV-SP", "KeenanCrane-Spot", "NvDiffRec cubemap, Spot mesh",
            cubemap_resolution=10, width=176, height=176, n_blobs=32,
            trace_views=8, seed=21,
        ),
        "NV-LE": lambda: CubemapWorkload(
            "NV-LE", "NerfSynthetic-Lego", "NvDiffRec cubemap, Lego scene",
            cubemap_resolution=10, width=192, height=192,
            sphere_radius=1.2, compute_cycles=200.0,
            trace_views=8, seed=22,
        ),
        "NV-SH": lambda: CubemapWorkload(
            "NV-SH", "NerfSynthetic-Ship", "NvDiffRec cubemap, Ship scene",
            cubemap_resolution=10, width=176, height=176, n_blobs=32,
            sphere_radius=1.2, compute_cycles=200.0,
            trace_views=8, seed=23,
        ),
        # Pulsar -- synthetic sphere datasets
        "PS-SS": lambda: SphereWorkload(
            "PS-SS", "SyntheticSpheres-Small", "Pulsar, small sphere cloud",
            n_spheres=700, base_radius=0.13, extent=1.5, n_clusters=16,
            width=192, height=160, trace_views=2, seed=30,
        ),
        "PS-SL": lambda: SphereWorkload(
            "PS-SL", "SyntheticSpheres-Large", "Pulsar, large sphere cloud",
            n_spheres=1400, base_radius=0.11, extent=1.8, n_clusters=28,
            width=224, height=176, trace_views=2, seed=31,
        ),
    }


#: All workload keys in Table 2 order.
WORKLOAD_KEYS: tuple[str, ...] = tuple(_registry())

#: Application prefix of each workload key.
APPLICATIONS = {"3D": "3DGS", "NV": "NvDiffRec", "PS": "Pulsar"}


def load_workload(key: str) -> Workload:
    """Instantiate (but do not build) the workload named *key*."""
    registry = _registry()
    if key not in registry:
        raise KeyError(
            f"unknown workload {key!r}; choose from {sorted(registry)}"
        )
    return registry[key]()


def all_workloads() -> list[Workload]:
    """Fresh instances of all 12 workloads, in Table 2 order."""
    return [load_workload(key) for key in WORKLOAD_KEYS]
