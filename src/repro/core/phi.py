"""PHI: commutative scatter-update aggregation in the L1 cache (§7.1).

PHI (Mukkara et al., MICRO'19) buffers commutative atomic updates in the L1
cache and writes aggregated partial sums toward the L2.  The paper finds it
provides only marginal benefit for differentiable rendering because

* the flood of atomic requests overwhelms the LSU *before* the L1 can
  aggregate them (requests still traverse the MIO/LSU path), and
* each update performs an L1 tag lookup, an overhead the SM pays serially.

This model reproduces both effects: all traffic takes an LSU queue entry
that is held until the L1 tag unit finishes, and each lane value costs a
tag-lookup service at the SM.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["PHI"]


class PHI(AtomicStrategy):
    """L1-cache aggregation of commutative atomics."""

    name = "PHI"
    _line_bytes = 128

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reset per-launch state and capture the cost model."""
        self._cost = config.cost
        self._num_params = trace.num_params
        # One aggregation entry per cache line holding the slot's gradients.
        line_slots = max(1, self._line_bytes // (4 * trace.num_params))
        lines = config.l1_kib_per_sm * 1024 // self._line_bytes
        self._capacity = max(1, lines * line_slots)
        self._buffers: dict[int, OrderedDict[int, None]] = {}

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Decide how this batch's atomics are carried out."""
        if batch.n_groups == 0:
            return BatchPlan()
        cost = self._cost
        num_params = batch.num_params
        issue = num_params * batch.n_groups * cost.atomic_issue

        buffer = self._buffers.setdefault(batch.sm, OrderedDict())
        tag_ops = 0
        evictions = []
        for slot, size in zip(batch.slots, batch.sizes):
            slot = int(slot)
            tag_ops += int(size) * num_params
            if slot in buffer:
                buffer.move_to_end(slot)
                continue
            buffer[slot] = None
            if len(buffer) > self._capacity:
                victim, _ = buffer.popitem(last=False)
                evictions.append(MemRequest(slot=victim, rop_ops=num_params, addresses=num_params))
        return BatchPlan(
            issue_cycles=issue,
            l1_tag_ops=tag_ops,
            requests=evictions,
            local_absorb=True,
        )

    def end_kernel(self, engine: EngineView) -> list[tuple[int, MemRequest]]:
        """Flush every SM's residual buffered partial sums to the L2."""
        flushes = []
        for sm, buffer in self._buffers.items():
            for slot in buffer:
                flushes.append(
                    (
                        sm,
                        MemRequest(
                            slot=slot,
                            rop_ops=self._num_params,
                            addresses=self._num_params,
                        ),
                    )
                )
        self._buffers = {}
        return flushes
