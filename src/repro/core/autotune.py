"""Balancing-threshold auto-tuning (paper §5.5.3).

The balancing threshold has 33 possible values (0-32) and the gradient
kernel runs hundreds of thousands of times per training, so the paper
profiles all values on one training iteration, keeps the fastest, and
re-profiles every N iterations (2000 in their evaluation).  Here a
"profiling run" is one simulator execution of the captured kernel trace.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.arc_sw import ArcSWButterfly, ArcSWSerialized
from repro.gpu.config import GPUConfig
from repro.gpu.engine import simulate_kernel
from repro.gpu.warp import WARP_SIZE
from repro.trace.events import KernelTrace

__all__ = ["tune_threshold", "ThresholdAutotuner", "DEFAULT_RETUNE_PERIOD"]

#: Iterations between re-profiling passes (paper's N).
DEFAULT_RETUNE_PERIOD = 2000


def _variant_factory(variant: str) -> Callable[[int], object]:
    if variant == "B":
        return ArcSWButterfly
    if variant == "S":
        return ArcSWSerialized
    raise ValueError(f"variant must be 'B' or 'S', got {variant!r}")


def tune_threshold(
    trace: KernelTrace,
    config: GPUConfig,
    variant: str = "B",
    candidates: Sequence[int] | None = None,
) -> tuple[int, dict[int, float]]:
    """Profile every candidate threshold; return the best and all timings.

    With ``candidates=None`` all 33 values are profiled, exactly as in the
    paper; pass a subset for cheaper tuning.
    """
    factory = _variant_factory(variant)
    if candidates is None:
        candidates = range(WARP_SIZE + 1)
    candidates = list(candidates)
    if not candidates:
        raise ValueError("no candidate thresholds")
    timings = {}
    for threshold in candidates:
        result = simulate_kernel(trace, config, factory(threshold))
        timings[threshold] = result.total_cycles
    best = min(timings, key=timings.get)
    return best, timings


class ThresholdAutotuner:
    """Online tuner: re-profiles every *period* training iterations.

    Usage::

        tuner = ThresholdAutotuner(config, variant="B")
        for iteration in range(n_iterations):
            threshold = tuner.threshold(iteration, lambda: capture())
            ...  # run the kernel with `threshold`

    The capture callback is only invoked on profiling iterations, because
    capturing a trace costs a full instrumented kernel run.
    """

    def __init__(
        self,
        config: GPUConfig,
        variant: str = "B",
        period: int = DEFAULT_RETUNE_PERIOD,
        candidates: Sequence[int] | None = None,
        initial_threshold: int = 16,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= initial_threshold <= WARP_SIZE:
            raise ValueError("initial_threshold out of range")
        _variant_factory(variant)  # validate early
        self.config = config
        self.variant = variant
        self.period = period
        self.candidates = candidates
        self._current = initial_threshold
        self._profiles_run = 0

    @property
    def current_threshold(self) -> int:
        return self._current

    @property
    def profiles_run(self) -> int:
        """How many profiling passes have executed (overhead metric)."""
        return self._profiles_run

    def threshold(
        self, iteration: int, trace_provider: Callable[[], KernelTrace]
    ) -> int:
        """Threshold to use at *iteration*, re-profiling when due."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        if iteration % self.period == 0:
            trace = trace_provider()
            self._current, _ = tune_threshold(
                trace, self.config, self.variant, self.candidates
            )
            self._profiles_run += 1
        return self._current
