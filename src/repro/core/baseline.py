"""The ``atomicAdd`` baseline: every lane's atomic goes to the L2 ROPs.

This is the reference configuration of the paper's evaluation (§7): the
address coalescing unit merges same-address lanes into one transaction per
destination, and the ROP unit serializes the transaction's lane operations.
No warp-level reduction happens in the SM.
"""

from __future__ import annotations

from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["BaselineAtomic"]


class BaselineAtomic(AtomicStrategy):
    """Plain CUDA ``atomicAdd`` for every gradient update."""

    name = "baseline"

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reset per-launch state and capture the cost model."""
        self._cost = config.cost

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Decide how this batch's atomics are carried out."""
        n_groups = batch.n_groups
        if n_groups == 0:
            return BatchPlan()
        num_params = batch.num_params
        # One atomic instruction per parameter; the LDST port replays it
        # once per coalesced transaction (group).
        issue = num_params * n_groups * self._cost.atomic_issue
        requests = [
            MemRequest(
                slot=int(slot),
                rop_ops=int(size) * num_params,
                addresses=num_params,
            )
            for slot, size in zip(batch.slots, batch.sizes)
        ]
        return BatchPlan(issue_cycles=issue, requests=requests)
