"""ARC and every comparison strategy from the paper's evaluation."""

from repro.core.arc_hw import ArcHW
from repro.core.arc_sw import ArcSWButterfly, ArcSWSerialized
from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest
from repro.core.baseline import BaselineAtomic
from repro.core.cccl import CCCLReduce
from repro.core.dab import DAB
from repro.core.lab import LAB, LABIdeal
from repro.core.phi import PHI

__all__ = [
    "AtomicStrategy",
    "BatchPlan",
    "BatchView",
    "EngineView",
    "MemRequest",
    "BaselineAtomic",
    "ArcSWSerialized",
    "ArcSWButterfly",
    "ArcHW",
    "CCCLReduce",
    "DAB",
    "LAB",
    "LABIdeal",
    "PHI",
]
