"""Functional (value-level) semantics of atomic strategies.

Timing aside, every strategy must compute the *same gradients* as the plain
scatter-add baseline -- warp-level reduction only reassociates floating
point additions (§5.2 of the paper: the operations are commutative and the
workloads tolerate reassociation noise).  This module executes a strategy's
value semantics over a whole trace so tests can assert that invariant, and
so users can quantify the reassociation error for their own workloads.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import AtomicStrategy
from repro.trace.events import KernelTrace

__all__ = ["accumulate_with_strategy", "max_relative_error"]


def accumulate_with_strategy(
    trace: KernelTrace, strategy: AtomicStrategy
) -> np.ndarray:
    """Gradient buffer produced by running *strategy*'s reductions.

    Applies :meth:`AtomicStrategy.reduce_batch_values` batch by batch and
    accumulates the per-slot contributions, mimicking what the memory
    system would hold after the kernel.  Requires a trace with values.
    """
    if trace.values is None:
        raise ValueError("trace carries no values; capture with values=True")
    sums = np.zeros((trace.n_slots, trace.num_params), dtype=np.float64)
    for lane_slots, values in zip(trace.lane_slots, trace.values):
        for slot, contribution in strategy.reduce_batch_values(lane_slots, values):
            sums[slot] += contribution
    return sums


def max_relative_error(result: np.ndarray, reference: np.ndarray) -> float:
    """Largest elementwise relative error of *result* vs *reference*.

    Entries where the reference is (near) zero are compared absolutely.
    """
    if result.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {result.shape} vs {reference.shape}"
        )
    scale = np.maximum(np.abs(reference), 1.0)
    return float(np.max(np.abs(result - reference) / scale, initial=0.0))
