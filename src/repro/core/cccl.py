"""CCCL-style library warp reduction (the §7.2 comparison point).

NVIDIA's CCCL/CUB ``WarpReduce`` assumes *all* threads of the warp are
active and updating one destination.  The paper reports that making it work
for differentiable rendering required significant engineering (forcing
inactive lanes to contribute zeros, like SW-B's transformation) and that it
still underperforms ARC-SW for two reasons this model reproduces:

* no adaptive distribution -- every eligible warp reduces at the SM even
  when the ROP units are idle and even when only one lane is active; and
* warps whose lanes update different destinations (common in NvDiffRec)
  fall back to plain atomics, so most reduction opportunities are missed.
"""

from __future__ import annotations

from repro.core.arc_sw import BUTTERFLY_STEPS
from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest
from repro.gpu.warp import WARP_SIZE

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["CCCLReduce"]


class CCCLReduce(AtomicStrategy):
    """Library ``WarpReduce``: full-warp tree, no balancing threshold."""

    name = "CCCL"

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reset per-launch state and capture the cost model."""
        self._cost = config.cost
        # The all-lanes-active requirement needs the same zero-padding
        # kernel transformation as SW-B; where that is impossible the
        # library path can never trigger and everything falls back.
        self._transform_possible = trace.bfly_eligible

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Decide how this batch's atomics are carried out."""
        cost = self._cost
        num_params = batch.num_params

        if batch.n_groups == 0:
            # Whole warp inactive: ballot early-out before the library call.
            return BatchPlan(issue_cycles=cost.match_op + cost.branch)

        eligible = self._transform_possible and batch.n_groups == 1
        if eligible:
            # Generic library entry + full 32-lane reduction tree for every
            # parameter, regardless of how few lanes carry real values.
            issue = (
                cost.cccl_overhead
                + BUTTERFLY_STEPS * num_params * cost.shuffle
                + num_params * cost.atomic_issue
            )
            return BatchPlan(
                issue_cycles=issue,
                shuffle_ops=BUTTERFLY_STEPS * num_params * WARP_SIZE,
                requests=[
                    MemRequest(slot=int(batch.slots[0]), rop_ops=num_params, addresses=num_params)
                ],
            )

        # Divergent warp: the library cannot be used; plain atomics remain.
        if batch.n_groups == 0:
            return BatchPlan()
        issue = cost.branch
        requests = []
        for slot, size in zip(batch.slots, batch.sizes):
            issue += num_params * cost.atomic_issue
            requests.append(
                MemRequest(
                    slot=int(slot),
                    rop_ops=int(size) * num_params,
                    addresses=num_params,
                )
            )
        return BatchPlan(issue_cycles=issue, requests=requests)
