"""ARC-HW: hardware warp-level reduction with a greedy scheduler (§4.3, §5.1).

The programmer issues the new ``atomred`` instruction; the sub-core front
end needs no extra ``match``/``popc``/branch instructions because the
address-coalescing unit already produces per-destination lane masks.  For
each coalesced transaction the ARC scheduler consults the LSU stall state:

* ROP path free  -> forward the transaction unchanged (the baseline path);
* ROP path stalled -> hand the lane mask to the per-sub-core *reduction
  unit*, a serial FPU that sums the lanes' register values and emits a
  single aggregated atomic.

Because the decision happens per transaction and reads live queue
occupancy, this strategy is *dynamic*: it needs the engine view.
"""

from __future__ import annotations

from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["ArcHW"]


class ArcHW(AtomicStrategy):
    """The ``atomred`` instruction with greedy SM/ROP work distribution.

    Parameters
    ----------
    stall_threshold:
        LSU queue occupancy (fraction) above which the scheduler considers
        the ROP path stalled and diverts the transaction to the reduction
        unit.  The paper's greedy policy observes the LDST stall signal; a
        nearly-full queue is the simulator's equivalent.
    policy:
        Scheduling-policy ablation: ``"greedy"`` (the paper's design),
        ``"always"`` (every multi-lane transaction reduces at the SM,
        leaving the ROPs idle), or ``"never"`` (the reduction unit is
        bypassed -- the baseline path plus the atomred front end).
    """

    name = "ARC-HW"

    _POLICIES = ("greedy", "always", "never")

    def __init__(self, stall_threshold: float = 0.75,
                 policy: str = "greedy",
                 ru_backlog_limit: float = 1024.0):
        if not 0.0 < stall_threshold <= 1.0:
            raise ValueError("stall_threshold must be in (0, 1]")
        if policy not in self._POLICIES:
            raise ValueError(f"policy must be one of {self._POLICIES}")
        if ru_backlog_limit <= 0:
            raise ValueError("ru_backlog_limit must be positive")
        self.stall_threshold = stall_threshold
        self.policy = policy
        self.ru_backlog_limit = ru_backlog_limit
        if policy != "greedy":
            self.name = f"ARC-HW-{policy}"

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Capture the GPU cost model for this launch."""
        self._cost = config.cost

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Schedule each coalesced transaction: ROP path or reduction unit."""
        n_groups = batch.n_groups
        if n_groups == 0:
            return BatchPlan()
        cost = self._cost
        num_params = batch.num_params
        # atomred issues exactly like an atomic: one instruction per
        # parameter, replayed per coalesced transaction.  No software
        # prologue -- this is ARC-HW's key efficiency edge over ARC-SW.
        issue = num_params * n_groups * cost.atomic_issue

        if self.policy == "always":
            rop_stalled = True
        elif self.policy == "never":
            rop_stalled = False
        else:
            # Greedy (§4.3): divert to the reduction unit only while the
            # ROP path is backed up AND the FPU queue is keeping up --
            # "whichever queue is free".
            rop_stalled = (
                engine.lsu_pressure(batch.sm) >= self.stall_threshold
                and engine.ru_backlog(batch.subcore) < self.ru_backlog_limit
            )
        ru_values = 0
        requests = []
        for slot, size in zip(batch.slots, batch.sizes):
            slot = int(slot)
            size = int(size)
            if rop_stalled and size > 1:
                # Warp-level reduction at the sub-core: the serial FPU sums
                # `size` lane values for each parameter, then one aggregated
                # atomic per parameter continues to the L2.
                ru_values += size * num_params
                requests.append(
                    MemRequest(slot=slot, rop_ops=num_params, addresses=num_params, after_ru=True)
                )
            else:
                requests.append(
                    MemRequest(slot=slot, rop_ops=size * num_params, addresses=num_params)
                )
        return BatchPlan(issue_cycles=issue, ru_values=ru_values, requests=requests)
