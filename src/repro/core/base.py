"""Strategy interface for atomic-update handling.

Every approach evaluated in the paper -- the ``atomicAdd`` baseline, ARC-SW
(serialized and butterfly), ARC-HW, CCCL-style warp reduction, LAB /
LAB-ideal and PHI -- is an :class:`AtomicStrategy`.  A strategy is consulted
once per warp batch and answers with a :class:`BatchPlan`: how many cycles
the sub-core spends issuing extra instructions, how much work lands on
SM-local units (ARC-HW reduction FPU, LAB SRAM buffer, PHI L1 tags), and
which memory transactions travel to the L2 ROP units.

Static strategies derive their plan purely from the batch's coalesced
groups.  Dynamic ones (ARC-HW's greedy scheduler, LAB's finite buffer) also
read live engine state through :class:`EngineView`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace


__all__ = ["MemRequest", "BatchPlan", "BatchView", "EngineView", "AtomicStrategy"]


@dataclass(frozen=True, slots=True)
class MemRequest:
    """One coalesced atomic transaction headed for the memory subsystem.

    ``rop_ops`` is the number of serialized same-address lane operations the
    ROP unit must perform for this transaction (hardware processes atomics
    to a common address one at a time).
    """

    slot: int
    rop_ops: int
    #: Distinct destination addresses the transaction's operations cover
    #: (one per learned parameter).  Operations to *different* addresses
    #: can proceed in parallel at the memory partitions; only same-address
    #: operations serialize, so the per-address dependency chain advances
    #: by ``rop_ops / addresses`` operations.
    addresses: int = 1
    #: Request is produced by the ARC-HW reduction unit and becomes ready
    #: only once the serial FPU reduction finishes.
    after_ru: bool = False
    #: Request does not occupy an LSU queue entry (LAB-ideal's dedicated
    #: SRAM port).
    bypass_lsu: bool = False


@dataclass(slots=True)
class BatchPlan:
    """Cost/traffic outcome of one warp batch under some strategy."""

    #: Extra sub-core issue cycles (beyond the batch's gradient math).
    issue_cycles: float = 0.0
    #: Values serially summed on the ARC-HW per-sub-core reduction FPU.
    ru_values: int = 0
    #: Lane values applied at the SM-level LAB SRAM atomic buffer.
    sm_buffer_ops: int = 0
    #: Lane values applied at the SM's L1 tags (PHI).
    l1_tag_ops: int = 0
    #: Warp-wide shuffle instructions executed (for energy accounting).
    shuffle_ops: int = 0
    #: Transactions sent toward L2 (or absorbed by a local buffer).
    requests: list[MemRequest] = field(default_factory=list)
    #: LAB/PHI only: requests are absorbed by the local buffer; the listed
    #: requests below are evictions that do continue to the ROPs.
    local_absorb: bool = False


class BatchView:
    """Cheap per-batch view handed to strategies.

    Exposes the address-coalescing result (group slots and sizes, as plain
    sequences), the parameter count, and placement (which SM executes the
    batch).
    """

    __slots__ = ("index", "sm", "subcore", "slots", "sizes", "num_params",
                 "bfly_eligible")

    def __init__(self, index, sm, subcore, slots, sizes, num_params,
                 bfly_eligible):
        self.index = index
        self.sm = sm
        self.subcore = subcore
        self.slots = slots
        self.sizes = sizes
        self.num_params = num_params
        self.bfly_eligible = bfly_eligible

    @property
    def n_groups(self) -> int:
        return len(self.slots)

    @property
    def active_lanes(self) -> int:
        return int(sum(self.sizes))

    @property
    def all_same_slot(self) -> bool:
        """True when every *active* lane updates one common slot."""
        return len(self.slots) == 1


class EngineView(ABC):
    """Live engine state visible to dynamic strategies."""

    #: Current simulation time in cycles (kept a plain attribute: it is
    #: read/written once per batch on the hot path).
    now: float = 0.0

    @abstractmethod
    def lsu_pressure(self, sm: int) -> float:
        """Occupancy of *sm*'s LSU queue in [0, 1].

        ARC-HW's greedy scheduler reads this: a (nearly) full queue means
        the ROP path is backed up, so the warp should reduce locally.
        """

    def ru_backlog(self, subcore: int) -> float:
        """Pending work (cycles) queued at *subcore*'s reduction unit.

        The §4.3 greedy scheduler picks "whichever queue is free": it
        only diverts to the reduction FPU while the FPU is keeping up.
        Engines without reduction units report zero.
        """
        return 0.0


class AtomicStrategy(ABC):
    """Base class for every atomic-handling approach."""

    #: Short identifier used in reports ("baseline", "ARC-SW-B", ...).
    name: str = "abstract"

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reset per-launch state.  Called once before simulation."""

    @abstractmethod
    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Decide how *batch*'s atomic updates are carried out."""

    def end_kernel(self, engine: EngineView) -> list[tuple[int, MemRequest]]:
        """Flush residual buffered state; returns ``(sm, request)`` pairs."""
        return []

    def reduce_batch_values(
        self, lane_slots: np.ndarray, values: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        """Functional semantics: per-slot contribution of one batch.

        Returns ``(slot, params_vector)`` pairs whose accumulation must
        equal the plain scatter-add reference (modulo FP reassociation).
        The default performs a per-group left-to-right sum, which matches
        serialized reduction; subclasses with a different reduction order
        (butterfly) override this to model their exact FP ordering.
        """
        contributions = []
        for slot in np.unique(lane_slots[lane_slots >= 0]):
            members = np.nonzero(lane_slots == slot)[0]
            total = values[members[0]].astype(np.float64).copy()
            for lane in members[1:]:
                total += values[lane]
            contributions.append((int(slot), total))
        return contributions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
