"""LAB and LAB-ideal: SRAM atomic buffering at each SM (§7.1 comparison).

LAB (Dalmia et al., HPCA'22) reserves a partition of the per-SM L1/shared
SRAM and aggregates commutative atomic updates there, flushing a slot's
partial sum to the L2 ROPs on eviction.  The paper evaluates two variants:

* **LAB** -- the realistic configuration: buffer traffic still traverses
  the LSU, and the capacity is the (empirically best) partition of the
  L1/shared SRAM that the workload's own shared-memory usage leaves free.
* **LAB-ideal** -- an idealized upper bound: a dedicated same-size SRAM
  with its own port (no LSU contention), no tag/MSHR overheads.

Both are limited by the same structural property ARC-HW §7.1 calls out:
the buffer is *one* unit per SM serving four sub-cores, whereas ARC reduces
in registers inside each sub-core.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["LAB", "LABIdeal"]


class LAB(AtomicStrategy):
    """Reconfigurable local atomic buffer in the L1/shared SRAM.

    Parameters
    ----------
    capacity_fraction:
        Fraction of the L1/shared SRAM available for atomic buffering.
        Differentiable-rendering kernels use some shared memory, so the
        realistic LAB gets only part of the SRAM (default 50%).
    bypass_lsu:
        LAB-ideal behaviour: buffer accesses skip the LSU queue.
    """

    name = "LAB"
    _tag_bytes = 8
    _value_bytes = 4
    #: Per-value tag-lookup/MSHR overhead the idealized variant omits
    #: (LAB-ideal "assumes no tag lookup overheads, MSHR queuing delays").
    op_overhead = 1.08

    def __init__(self, capacity_fraction: float = 0.5, bypass_lsu: bool = False):
        if not 0.0 < capacity_fraction <= 1.0:
            raise ValueError("capacity_fraction must be in (0, 1]")
        self.capacity_fraction = capacity_fraction
        self.bypass_lsu = bypass_lsu

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reset per-launch state and capture the cost model."""
        self._cost = config.cost
        self._num_params = trace.num_params
        entry_bytes = self._tag_bytes + self._value_bytes * trace.num_params
        sram_bytes = config.l1_kib_per_sm * 1024 * self.capacity_fraction
        self._capacity = max(1, int(sram_bytes // entry_bytes))
        self._buffers: dict[int, OrderedDict[int, None]] = {}

    @property
    def capacity_slots(self) -> int:
        """Buffered primitive slots each SM can hold."""
        return self._capacity

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Decide how this batch's atomics are carried out."""
        if batch.n_groups == 0:
            return BatchPlan()
        cost = self._cost
        num_params = batch.num_params
        issue = num_params * batch.n_groups * cost.atomic_issue

        buffer = self._buffers.setdefault(batch.sm, OrderedDict())
        buffer_ops = 0
        evictions = []
        for slot, size in zip(batch.slots, batch.sizes):
            slot = int(slot)
            # Every lane's value is applied serially at the SM-wide buffer.
            buffer_ops += int(size * num_params * self.op_overhead)
            if slot in buffer:
                buffer.move_to_end(slot)
                continue
            buffer[slot] = None
            if len(buffer) > self._capacity:
                victim, _ = buffer.popitem(last=False)
                evictions.append(
                    MemRequest(slot=victim, rop_ops=num_params, addresses=num_params,
                        bypass_lsu=self.bypass_lsu,
                    )
                )
        return BatchPlan(
            issue_cycles=issue,
            sm_buffer_ops=buffer_ops,
            requests=evictions,
            local_absorb=not self.bypass_lsu,
        )

    def end_kernel(self, engine: EngineView) -> list[tuple[int, MemRequest]]:
        """Flush every SM's residual buffered partial sums to the L2."""
        flushes = []
        for sm, buffer in self._buffers.items():
            for slot in buffer:
                flushes.append(
                    (
                        sm,
                        MemRequest(slot=slot, rop_ops=self._num_params,
                            addresses=self._num_params,
                            bypass_lsu=self.bypass_lsu,
                        ),
                    )
                )
        self._buffers = {}
        return flushes


class LABIdeal(LAB):
    """Idealized LAB: dedicated full-size SRAM, no LSU contention, no
    tag-lookup or MSHR overheads."""

    name = "LAB-ideal"
    op_overhead = 1.0

    def __init__(self) -> None:
        super().__init__(capacity_fraction=1.0, bypass_lsu=True)
