"""DAB: deterministic atomic buffering (related work, §8).

DAB (Chou et al., MICRO'20) buffers and fuses atomic requests in dedicated
per-SM buffers like LAB, but additionally enforces a *deterministic*
execution order so floating-point results are bit-reproducible across
runs.  The ARC paper notes that determinism-aware scheduling introduces
overheads that can exceed 20% slowdown over non-deterministic baselines.

The model extends LAB with the two costs determinism adds:

* a per-value ordering cost (requests must be sequenced into warp order
  before they may update the buffer), and
* epoch flushes: every ``epoch_batches`` warp iterations the buffer must
  drain completely so cross-SM combining happens at deterministic points,
  forfeiting much of the aggregation LAB enjoys.

DAB is not part of the paper's evaluation figures; it is provided for the
related-work ablation benchmark.
"""

from __future__ import annotations

from repro.core.base import BatchPlan, BatchView, EngineView, MemRequest
from repro.core.lab import LAB

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["DAB"]


class DAB(LAB):
    """Deterministic atomic buffering with epoch flushes."""

    name = "DAB"
    #: Sequencing/reordering cost per buffered value (beyond LAB's tags).
    op_overhead = 1.45

    def __init__(self, epoch_batches: int = 64):
        if epoch_batches <= 0:
            raise ValueError("epoch_batches must be positive")
        super().__init__(capacity_fraction=0.5, bypass_lsu=False)
        self.epoch_batches = epoch_batches

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reset LAB state plus the per-SM epoch counters."""
        super().begin_kernel(trace, config)
        self._batches_since_flush: dict[int, int] = {}

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """LAB's plan plus ordering costs and epoch-boundary flushes."""
        plan = super().plan_batch(batch, engine)
        if batch.n_groups == 0:
            return plan
        # Determinism-aware scheduling: every batch pays ordering logic.
        plan.issue_cycles += self._cost.branch * 2

        count = self._batches_since_flush.get(batch.sm, 0) + 1
        if count >= self.epoch_batches:
            # Epoch boundary: drain this SM's buffer deterministically.
            buffer = self._buffers.get(batch.sm)
            if buffer:
                plan.requests = list(plan.requests) + [
                    MemRequest(
                        slot=slot,
                        rop_ops=self._num_params,
                        addresses=self._num_params,
                    )
                    for slot in buffer
                ]
                buffer.clear()
            count = 0
        self._batches_since_flush[batch.sm] = count
        return plan
