"""ARC-SW: software warp-level reduction with adaptive distribution (§5.5).

Two reduction variants are provided, matching the paper's Figures 15-17:

* :class:`ArcSWSerialized` (SW-S) -- a leader lane walks every active lane
  of its group with ``__shfl`` and accumulates serially, then issues one
  ``atomicAdd`` per parameter.
* :class:`ArcSWButterfly` (SW-B) -- when *all* lanes of the warp update the
  same primitive, a 5-step butterfly (reduction tree) of warp shuffles sums
  the gradients; previously-inactive lanes are forced to contribute zeros
  (the Figure 17 kernel transformation), so the tree always runs over 32
  lanes.

Both variants apply the *balancing threshold* (§4.4): groups with fewer
active lanes than the threshold skip the warp reduction and use plain
``atomicAdd`` at the ROP units, which spreads atomic work between the SMs
and the L2 and is where most of ARC's adaptivity comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import AtomicStrategy, BatchPlan, BatchView, EngineView, MemRequest
from repro.gpu.warp import WARP_SIZE

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gpu.config import GPUConfig
    from repro.trace.events import KernelTrace

__all__ = ["ArcSWSerialized", "ArcSWButterfly", "BUTTERFLY_STEPS"]

#: log2(32) shuffle-xor steps of the butterfly reduction tree.
BUTTERFLY_STEPS = 5


class _ArcSWBase(AtomicStrategy):
    """State shared by both ARC-SW variants."""

    def __init__(self, balance_threshold: int = 16):
        if not 0 <= balance_threshold <= WARP_SIZE:
            raise ValueError(
                f"balance threshold must be in [0, {WARP_SIZE}], "
                f"got {balance_threshold}"
            )
        self.balance_threshold = balance_threshold

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        self._cost = config.cost
        self._trace_bfly_eligible = trace.bfly_eligible

    def _prologue_cycles(self) -> float:
        """``__match`` + ``__popc`` + branch + call overhead (Figure 14)."""
        cost = self._cost
        return cost.match_op + cost.popc_op + cost.branch + cost.sw_call_overhead


class ArcSWSerialized(_ArcSWBase):
    """SW-S: serialized leader-lane reduction (paper Figure 15)."""

    def __init__(self, balance_threshold: int = 16):
        super().__init__(balance_threshold)
        self.name = f"ARC-SW-S-{balance_threshold}"

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Serialized leader-lane reduction per group above the threshold."""
        if batch.n_groups == 0:
            return BatchPlan()
        cost = self._cost
        num_params = batch.num_params
        threshold = self.balance_threshold

        issue = self._prologue_cycles()
        shuffle_ops = 0
        requests = []
        max_reduced_lanes = 0
        for slot, size in zip(batch.slots, batch.sizes):
            slot = int(slot)
            size = int(size)
            if size >= threshold and size > 1:
                # Groups reduce concurrently in SIMT: different leaders walk
                # their groups in lock-step, so the loop trip count is the
                # largest group, while every shuffle executes warp-wide.
                max_reduced_lanes = max(max_reduced_lanes, size)
                shuffle_ops += size * num_params
                issue += num_params * cost.atomic_issue
                requests.append(MemRequest(slot=slot, rop_ops=num_params, addresses=num_params))
            else:
                issue += num_params * cost.atomic_issue
                requests.append(MemRequest(slot=slot, rop_ops=size * num_params, addresses=num_params))
        if max_reduced_lanes:
            issue += (
                max_reduced_lanes * num_params * cost.shuffle
                + max_reduced_lanes * cost.branch
            )
        return BatchPlan(
            issue_cycles=issue, shuffle_ops=shuffle_ops, requests=requests
        )


class ArcSWButterfly(_ArcSWBase):
    """SW-B: butterfly (tree) reduction over the full warp (Figure 16).

    Requires the kernel transformation of Figure 17 (inactive lanes emit
    zero gradients); kernels where thread divergence cannot be eliminated
    (Pulsar, §7.2) must not use this strategy --
    :meth:`begin_kernel` raises for such traces.
    """

    def __init__(self, balance_threshold: int = 16):
        super().__init__(balance_threshold)
        self.name = f"ARC-SW-B-{balance_threshold}"

    def begin_kernel(self, trace: KernelTrace, config: GPUConfig) -> None:
        """Reject kernels whose divergence cannot be eliminated (§7.2)."""
        super().begin_kernel(trace, config)
        if not trace.bfly_eligible:
            raise ValueError(
                f"trace {trace.name!r} cannot eliminate thread divergence; "
                "butterfly reduction (SW-B) is inapplicable -- use SW-S"
            )

    def plan_batch(self, batch: BatchView, engine: EngineView) -> BatchPlan:
        """Full-warp butterfly when all lanes share a slot, else fallback."""
        cost = self._cost
        num_params = batch.num_params

        if batch.n_groups == 0:
            # Whole warp inactive: a warp-wide ballot early-out skips the
            # zero-value reduction entirely.  (SW-B's redundant computation
            # bites on warps where only *some* lanes are inactive -- those
            # still run the full 32-lane tree below.)
            return BatchPlan(issue_cycles=cost.match_op + cost.branch)

        if batch.all_same_slot and batch.active_lanes >= self.balance_threshold:
            # Full-warp reduction tree: 5 shuffle steps per parameter, all
            # 32 lanes participating (inactive ones add zeros), then lane 0
            # issues one atomicAdd per parameter.
            slot = int(batch.slots[0])
            issue = (
                self._prologue_cycles()
                + BUTTERFLY_STEPS * num_params * cost.shuffle
                + num_params * cost.atomic_issue
            )
            return BatchPlan(
                issue_cycles=issue,
                shuffle_ops=BUTTERFLY_STEPS * num_params * WARP_SIZE,
                requests=[MemRequest(slot=slot, rop_ops=num_params, addresses=num_params)],
            )

        # Fallback (Figure 16 lines 12-17): active lanes use plain atomics.
        issue = self._prologue_cycles()
        requests = []
        for slot, size in zip(batch.slots, batch.sizes):
            issue += num_params * cost.atomic_issue
            requests.append(
                MemRequest(
                    slot=int(slot),
                    rop_ops=int(size) * num_params,
                    addresses=num_params,
                )
            )
        return BatchPlan(issue_cycles=issue, requests=requests)

    def reduce_batch_values(self, lane_slots, values):
        """Butterfly FP ordering: pairwise tree over all 32 lanes.

        Inactive lanes contribute exact zeros, so tree reduction only
        reassociates -- the result differs from the serial order by normal
        floating-point noise.
        """
        slots = lane_slots[lane_slots >= 0]
        unique = np.unique(slots)
        if len(unique) != 1:
            return super().reduce_batch_values(lane_slots, values)
        padded = np.where(
            (lane_slots >= 0)[:, None], values, 0.0
        ).astype(np.float64)
        width = WARP_SIZE
        while width > 1:
            half = width // 2
            padded[:half] = padded[:half] + padded[half:width]
            width = half
        return [(int(unique[0]), padded[0].copy())]
