"""Structured observability logging for the experiment stack.

Two complementary channels:

* :func:`emit` -- an append-only **JSONL event stream** (one JSON object
  per line) recording what the run *did*: cell start/finish, cache
  hit/miss/write/quarantine, retry/backoff, pool restarts, manifest
  resume decisions, benchmark lifecycle (``bench.start`` /
  ``bench.cell`` / ``bench.finish`` / ``bench.compare`` from
  :mod:`repro.bench.runner` and the ``repro bench`` CLI, so a measured
  run's provenance interleaves with the cache and cell events it
  caused), and the simulation service's request lifecycle
  (``svc.accept`` / ``svc.coalesce`` / ``svc.shed`` / ``svc.degrade`` /
  ``svc.breaker`` and friends from :mod:`repro.service` -- the daemon's
  only telemetry channel, one line per admission decision).  The sink is a file named by the ``REPRO_OBSLOG``
  environment variable (the CLI's ``--log`` sets it), which worker
  processes inherit across ``spawn`` -- so one run produces one stream
  no matter how many processes contributed.  Lines are written with a
  single ``O_APPEND`` write each, so concurrent writers interleave at
  line granularity.  With no sink configured, :func:`emit` is a cheap
  no-op: the hot paths (cache lookups) stay unaffected.

* stdlib :mod:`logging` -- human diagnostics.  ``repro``'s logger tree
  writes to **stderr** (``--verbose`` / ``REPRO_LOG_LEVEL`` raise the
  level), while the :data:`console` logger writes bare messages to
  **stdout** -- it carries the CLI's user-facing report lines, so their
  text stays byte-for-byte what ``print`` produced while becoming
  filterable like any logger.  Both handlers resolve ``sys.stdout`` /
  ``sys.stderr`` at emit time, not at handler construction, so
  pytest's ``capsys`` and notebook stream redirection see every line.

Timestamps here are *wall-clock* on purpose: this module records host
execution, not simulation. It must never be imported by the engine
packages (``repro/{core,gpu,trace}``), where arclint's ARC002 bans
wall-clock reads -- the engine's own time-resolved story is
:mod:`repro.gpu.telemetry`, stamped in simulated cycles.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

__all__ = [
    "LOG_LEVEL_ENV",
    "OBSLOG_ENV",
    "console",
    "emit",
    "logger",
    "obslog_path",
    "read_events",
    "set_obslog_path",
    "setup_logging",
]

OBSLOG_ENV = "REPRO_OBSLOG"
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Diagnostics tree (stderr).  Modules log as ``repro.<area>``.
logger = logging.getLogger("repro")

#: User-facing CLI output (stdout, bare messages).  Not a child of
#: ``logger``: its text is product output, not diagnostics.
console = logging.getLogger("repro.cli.console")
console.propagate = False


class _DynamicStreamHandler(logging.StreamHandler):
    """StreamHandler that looks up its stream on *every* emit.

    A plain ``StreamHandler(sys.stderr)`` captures the stream object at
    construction; pytest's ``capsys`` (and anything else that swaps
    ``sys.stderr``) then silently eats or misroutes log lines.  Binding
    to the *name* instead keeps handlers correct under redirection.
    """

    def __init__(self, stream_name: str):
        self._stream_name = stream_name
        super().__init__()

    @property
    def stream(self):
        return getattr(sys, self._stream_name)

    @stream.setter
    def stream(self, value):  # base __init__ assigns; the name wins
        pass


def _level_from_env(verbose: int) -> int:
    """Console diagnostic level: ``REPRO_LOG_LEVEL`` wins, then -v."""
    raw = os.environ.get(LOG_LEVEL_ENV, "").strip().upper()
    if raw:
        named = logging.getLevelName(raw)
        if isinstance(named, int):
            return named
    if verbose >= 2:
        return logging.DEBUG
    if verbose >= 1:
        return logging.INFO
    return logging.WARNING


def setup_logging(verbose: int = 0) -> None:
    """Install the stderr diagnostics and stdout console handlers.

    Idempotent: reruns only adjust levels, so repeated CLI invocations
    in one process (tests) never stack duplicate handlers.
    """
    if not any(isinstance(h, _DynamicStreamHandler) for h in logger.handlers):
        handler = _DynamicStreamHandler("stderr")
        handler.setFormatter(logging.Formatter(
            "%(levelname)s %(name)s: %(message)s"
        ))
        logger.addHandler(handler)
    logger.setLevel(_level_from_env(verbose))

    if not any(isinstance(h, _DynamicStreamHandler)
               for h in console.handlers):
        handler = _DynamicStreamHandler("stdout")
        handler.setFormatter(logging.Formatter("%(message)s"))
        console.addHandler(handler)
    console.setLevel(logging.INFO)


# --------------------------------------------------------------------- #
# JSONL event stream
# --------------------------------------------------------------------- #


def obslog_path() -> "str | None":
    """The active JSONL sink path, or ``None`` when logging is off."""
    raw = os.environ.get(OBSLOG_ENV, "").strip()
    return raw or None


def set_obslog_path(path) -> "str | None":
    """Point the event stream at *path* (``None`` turns it off).

    Works through the environment so ``spawn``-ed worker processes
    inherit the same sink.  Returns the previous value.
    """
    previous = os.environ.get(OBSLOG_ENV)
    if path is None:
        os.environ.pop(OBSLOG_ENV, None)
    else:
        os.environ[OBSLOG_ENV] = str(path)
    return previous


def emit(event: str, **fields) -> None:
    """Append one event line to the active sink (no-op when off).

    Every line carries the event name, a wall-clock ``ts`` and the
    writing ``pid``; *fields* must be JSON-serializable.  Failures to
    write are swallowed after one diagnostic -- observability must never
    take down the run it observes.
    """
    path = obslog_path()
    if path is None:
        return
    record = {"event": event, "ts": time.time(), "pid": os.getpid()}
    record.update(fields)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    except OSError as exc:
        logger.warning("obslog write to %s failed: %r", path, exc)


def read_events(path) -> list[dict]:
    """Parse a JSONL obslog back into event dicts (skipping torn lines).

    A line a concurrent writer tore (no trailing newline at EOF after a
    kill) fails to parse; it is dropped rather than failing the reader.
    A missing file reads as an empty log -- a run that emitted nothing
    simply never created its sink.
    """
    events = []
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return events
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
    return events
