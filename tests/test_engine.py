"""Timing-engine behaviour: queueing, stalls, contention, determinism."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    LAB,
    PHI,
    ArcHW,
    ArcSWButterfly,
    ArcSWSerialized,
    BaselineAtomic,
    LABIdeal,
)
from repro.gpu import RTX3060_SIM, RTX4090_SIM, simulate_kernel
from repro.trace import KernelTrace, coalesced_trace, hotspot_trace, scattered_trace


def tiny_gpu(**overrides):
    """A small GPU so queueing effects are easy to reason about."""
    params = dict(
        name="tiny",
        num_sms=2,
        subcores_per_sm=2,
        num_rops=4,
        num_partitions=2,
        lsu_queue_depth=4,
        interconnect_bw=4.0,
        clock_ghz=1.0,
        registers_per_sm=1024,
        l1_kib_per_sm=16,
        l2_mib=1.0,
        dram_channels=1,
        dram_banks=1,
        dram_gib=1,
    )
    params.update(overrides)
    return dataclasses.replace(RTX4090_SIM, **params)


def test_empty_trace_completes_at_zero():
    trace = KernelTrace(np.zeros((0, 32), dtype=int), num_params=1, n_slots=1)
    result = simulate_kernel(trace, tiny_gpu(), BaselineAtomic())
    assert result.total_cycles == 0
    assert result.n_batches == 0


def test_single_batch_latency_accounting():
    """One batch: compute + issue + interconnect + ROP service."""
    lanes = np.zeros((1, 32), dtype=np.int64)
    trace = KernelTrace(lanes, num_params=2, n_slots=1, compute_cycles=10.0)
    gpu = tiny_gpu()
    result = simulate_kernel(trace, gpu, BaselineAtomic())
    cost = gpu.cost
    issue = 2 * cost.atomic_issue
    expected = (
        10.0 + issue + cost.interconnect_latency + 64 * cost.atomic_service
    )
    assert result.total_cycles == pytest.approx(expected)
    assert result.compute_cycles == 10.0
    assert result.rop_ops == 64
    assert result.transactions == 2  # one flit per parameter address


def test_total_cycles_monotone_in_load():
    gpu = tiny_gpu()
    small = coalesced_trace(n_batches=50, n_slots=16, seed=0)
    large = coalesced_trace(n_batches=500, n_slots=16, seed=0)
    t_small = simulate_kernel(small, gpu, BaselineAtomic()).total_cycles
    t_large = simulate_kernel(large, gpu, BaselineAtomic()).total_cycles
    assert t_large > t_small


def test_deterministic():
    trace = coalesced_trace(n_batches=300, seed=7)
    a = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    b = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    assert a.total_cycles == b.total_cycles
    assert a.lsu_stall_cycles == b.lsu_stall_cycles


def test_lsu_backpressure_creates_stalls():
    """Few ROPs + many atomics must back pressure into LSU stalls."""
    gpu = tiny_gpu(num_rops=2, num_partitions=1, lsu_queue_depth=2)
    trace = hotspot_trace(n_batches=400, num_params=8)
    result = simulate_kernel(trace, gpu, BaselineAtomic())
    assert result.lsu_stall_cycles > 0
    assert result.lsu_full_events > 0
    assert result.stall_breakdown()["lsu_stall"] > 0.5


def test_more_rops_means_fewer_cycles():
    trace = coalesced_trace(n_batches=400, n_slots=64, seed=1)
    few = simulate_kernel(trace, tiny_gpu(num_rops=2, num_partitions=2),
                          BaselineAtomic())
    many = simulate_kernel(trace, tiny_gpu(num_rops=16, num_partitions=2),
                           BaselineAtomic())
    assert many.total_cycles < few.total_cycles


def test_hot_slot_serializes_even_with_many_rops():
    """Same-address atomics serialize regardless of ROP count."""
    hot = hotspot_trace(n_batches=200, num_params=4)
    gpu = tiny_gpu(num_rops=16, num_partitions=2, lsu_queue_depth=64)
    result = simulate_kernel(hot, gpu, BaselineAtomic())
    # All ops target one primitive (4 parameter addresses): runtime is at
    # least the per-address serialized chain.
    chain = result.rop_ops * gpu.cost.atomic_service / 4
    assert result.total_cycles >= chain


def test_scattered_slots_use_partitions_in_parallel():
    scattered = scattered_trace(n_batches=200, n_slots=4096, num_params=4)
    hot = hotspot_trace(n_batches=200, num_params=4)
    gpu = tiny_gpu(num_rops=16, num_partitions=4, lsu_queue_depth=64)
    t_scattered = simulate_kernel(scattered, gpu, BaselineAtomic()).total_cycles
    t_hot = simulate_kernel(hot, gpu, BaselineAtomic()).total_cycles
    assert t_scattered < t_hot


def test_arc_sw_reduces_rop_traffic():
    trace = coalesced_trace(n_batches=500, n_slots=128, mean_active=24, seed=3)
    base = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    arc = simulate_kernel(trace, RTX4090_SIM, ArcSWButterfly(8))
    assert arc.rop_ops < base.rop_ops / 3
    assert arc.total_cycles < base.total_cycles


def test_arc_hw_uses_reduction_units_under_pressure():
    trace = coalesced_trace(n_batches=2000, n_slots=64, mean_active=28, seed=3)
    gpu = tiny_gpu(num_rops=2, num_partitions=1, lsu_queue_depth=2)
    result = simulate_kernel(trace, gpu, ArcHW())
    assert result.ru_values > 0
    assert result.ru_busy_cycles > 0


def test_arc_hw_bypasses_reduction_when_rops_free():
    """A trickle of atomics never builds pressure: all go to the ROPs."""
    trace = coalesced_trace(
        n_batches=20, n_slots=64, mean_active=4, seed=3
    )
    result = simulate_kernel(trace, RTX4090_SIM, ArcHW())
    assert result.ru_values == 0


def test_lab_buffer_absorbs_and_flushes():
    trace = coalesced_trace(n_batches=300, n_slots=32, seed=2)
    result = simulate_kernel(trace, tiny_gpu(), LAB())
    # All lane values hit the buffer (with per-value tag overhead).
    assert result.buffer_ops >= trace.total_lane_ops
    # Aggregation: far fewer ROP ops than lane ops.
    assert result.rop_ops < trace.total_lane_ops / 4
    assert result.local_unit_stall_cycles > 0


def test_lab_ideal_at_least_as_fast_as_lab():
    trace = coalesced_trace(n_batches=600, n_slots=2048, seed=2)
    lab = simulate_kernel(trace, RTX4090_SIM, LAB())
    ideal = simulate_kernel(trace, RTX4090_SIM, LABIdeal())
    assert ideal.total_cycles <= lab.total_cycles


def test_phi_charges_tag_ops():
    trace = coalesced_trace(n_batches=200, n_slots=32, seed=2)
    result = simulate_kernel(trace, tiny_gpu(), PHI())
    assert result.l1_tag_ops == trace.total_lane_ops


def test_stall_breakdown_fractions_sum_to_one():
    trace = coalesced_trace(n_batches=200, seed=5)
    for strategy in (BaselineAtomic(), ArcSWSerialized(8), LAB(), PHI()):
        result = simulate_kernel(trace, RTX3060_SIM, strategy)
        assert sum(result.stall_breakdown().values()) == pytest.approx(1.0)


def test_speedup_requires_nonempty_simulation():
    trace = KernelTrace(np.zeros((0, 32), dtype=int), num_params=1, n_slots=1)
    empty = simulate_kernel(trace, tiny_gpu(), BaselineAtomic())
    with pytest.raises(ValueError):
        empty.speedup_over(empty)


def test_energy_positive_and_lower_for_arc():
    trace = coalesced_trace(n_batches=1000, n_slots=256, mean_active=24, seed=9)
    base = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    arc = simulate_kernel(trace, RTX4090_SIM, ArcSWButterfly(8))
    e_base = base.energy_joules(RTX4090_SIM)
    e_arc = arc.energy_joules(RTX4090_SIM)
    assert e_base > 0 and e_arc > 0
    assert e_arc < e_base


def test_runtime_ms_uses_clock():
    trace = coalesced_trace(n_batches=100, seed=4)
    result = simulate_kernel(trace, RTX4090_SIM, BaselineAtomic())
    assert result.runtime_ms(RTX4090_SIM) == pytest.approx(
        result.total_cycles / (RTX4090_SIM.clock_ghz * 1e6)
    )


def test_warp_id_groups_batches_on_one_subcore():
    """Batches of one warp serialize; distinct warps overlap."""
    lanes = np.zeros((64, 32), dtype=np.int64)
    serial = KernelTrace(
        lanes, num_params=1, n_slots=1,
        warp_id=np.zeros(64, dtype=int), compute_cycles=100.0,
    )
    spread = KernelTrace(
        lanes, num_params=1, n_slots=1,
        warp_id=np.arange(64), compute_cycles=100.0,
    )
    gpu = tiny_gpu(num_rops=64, num_partitions=2, lsu_queue_depth=64)
    t_serial = simulate_kernel(serial, gpu, BaselineAtomic()).total_cycles
    t_spread = simulate_kernel(spread, gpu, BaselineAtomic()).total_cycles
    assert t_spread < t_serial
