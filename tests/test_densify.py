"""Tests for 3DGS adaptive density control (split / clone / prune)."""

import numpy as np
import pytest

from repro.render.densify import DensificationController
from repro.render.gaussians import GaussianScene


def scene_with(n=10, opacity_logit=2.0, scale=0.02, seed=0):
    scene = GaussianScene.random(n, seed=seed, base_scale=scale)
    scene.opacity_logits[:] = opacity_logit
    scene.log_scales[:] = np.log(scale)
    return scene


def grads_for(scene, hot_indices=(), magnitude=1.0):
    grads = scene.zero_gradients()
    for index in hot_indices:
        grads["positions"][index] = magnitude
    return grads


def make_controller(**overrides):
    params = dict(grad_threshold=1e-3, scale_threshold=0.05,
                  opacity_threshold=0.02, seed=1)
    params.update(overrides)
    return DensificationController(**params)


class TestValidation:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DensificationController(grad_threshold=0)
        with pytest.raises(ValueError):
            DensificationController(opacity_threshold=1.0)
        with pytest.raises(ValueError):
            DensificationController(split_factor=1.0)

    def test_densify_requires_accumulation(self):
        with pytest.raises(RuntimeError):
            make_controller().densify(scene_with())

    def test_length_mismatch_detected(self):
        controller = make_controller()
        controller.accumulate(grads_for(scene_with(10)))
        with pytest.raises(ValueError):
            controller.accumulate(grads_for(scene_with(12)))
        with pytest.raises(ValueError):
            controller.densify(scene_with(12))


class TestOperations:
    def test_quiet_scene_unchanged(self):
        scene = scene_with(8)
        controller = make_controller()
        controller.accumulate(grads_for(scene))
        new_scene, stats = controller.densify(scene)
        assert stats.cloned == stats.split == stats.pruned == 0
        assert len(new_scene) == 8

    def test_small_hot_gaussian_cloned(self):
        scene = scene_with(6, scale=0.02)  # below the scale threshold
        controller = make_controller()
        controller.accumulate(grads_for(scene, hot_indices=[2]))
        new_scene, stats = controller.densify(scene)
        assert stats.cloned == 1
        assert stats.split == 0
        assert len(new_scene) == 7

    def test_large_hot_gaussian_split_into_smaller(self):
        scene = scene_with(6, scale=0.2)  # above the scale threshold
        controller = make_controller()
        controller.accumulate(grads_for(scene, hot_indices=[3]))
        new_scene, stats = controller.densify(scene)
        assert stats.split == 1
        assert len(new_scene) == 7  # parent removed, two children added
        # Children are smaller than the parent.
        children_scales = np.exp(new_scene.log_scales[-2:])
        assert (children_scales < 0.2).all()

    def test_transparent_gaussians_pruned(self):
        scene = scene_with(5)
        scene.opacity_logits[1] = -8.0  # opacity ~ 0.0003
        controller = make_controller()
        controller.accumulate(grads_for(scene))
        new_scene, stats = controller.densify(scene)
        assert stats.pruned == 1
        assert len(new_scene) == 4

    def test_combined_operations(self):
        scene = scene_with(10, scale=0.02)
        scene.log_scales[4] = np.log(0.3)   # big -> split
        scene.opacity_logits[7] = -8.0      # transparent -> pruned
        controller = make_controller()
        controller.accumulate(grads_for(scene, hot_indices=[2, 4]))
        new_scene, stats = controller.densify(scene)
        assert stats.cloned == 1            # index 2 (small)
        assert stats.split == 1             # index 4 (big)
        assert stats.pruned == 1            # index 7
        # 10 - pruned - split parent + clone + 2 children = 11
        assert len(new_scene) == 11
        assert stats.n_before == 10
        assert stats.n_after == 11

    def test_accumulation_averages_over_steps(self):
        """A single spike averaged over many steps stays below threshold."""
        scene = scene_with(4)
        controller = make_controller(grad_threshold=0.5)
        controller.accumulate(grads_for(scene, hot_indices=[0],
                                        magnitude=1.0))
        for _ in range(9):
            controller.accumulate(grads_for(scene))
        _, stats = controller.densify(scene)
        assert stats.cloned == 0  # mean grad 0.1 < 0.5

    def test_reset_after_densify(self):
        scene = scene_with(4)
        controller = make_controller()
        controller.accumulate(grads_for(scene))
        controller.densify(scene)
        with pytest.raises(RuntimeError):
            controller.densify(scene)  # stats were consumed


class TestTrainingIntegration:
    def test_densified_training_grows_scene_and_improves(self):
        from repro.render.camera import Camera
        from repro.render.optim import Adam
        from repro.render.splatting import GaussianRenderer
        from repro.workloads.scenes import clustered_gaussian_scene

        target_scene = clustered_gaussian_scene(60, seed=3, base_scale=0.1)
        camera = Camera.looking_at([0, 0, -3.0], [0, 0, 0],
                                   width=64, height=64)
        target = GaussianRenderer(target_scene).render(camera)

        scene = GaussianScene.random(20, seed=4, base_scale=0.12)
        controller = make_controller(grad_threshold=1e-7,
                                     scale_threshold=0.08)
        optimizer = Adam(lr=0.01)
        renderer = GaussianRenderer(scene)
        first_loss = None
        for iteration in range(30):
            context = renderer.forward(camera)
            result = renderer.backward(camera, context, target)
            if first_loss is None:
                first_loss = result.loss
            optimizer.step(scene.parameters(), result.gradients)
            controller.accumulate(result.gradients)
            if iteration == 14:
                scene, stats = controller.densify(scene)
                renderer = GaussianRenderer(scene)
                optimizer = Adam(lr=0.01)  # state reset, as in real 3DGS
                assert stats.n_after >= stats.n_before
        context = renderer.forward(camera)
        final = renderer.backward(camera, context, target)
        assert final.loss < first_loss
