"""Unit tests for arclint's dataflow layer (:mod:`repro.lint.dataflow`).

The rule-level behaviour (which trees produce which findings) lives in
``tests/test_lint_fixtures.py``; these tests pin the layer's internal
contracts -- lattice transfer functions, symbol/call-graph resolution,
import-graph dependents, and the fixpoint's return-unit inference --
so a regression is attributable to the layer that broke, not to
whichever rule noticed first.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.dataflow import (
    Unit,
    add_units,
    analysis_for,
    div_units,
    join,
    module_imports,
    mul_units,
    reverse_dependents,
)
from repro.lint.engine import (
    LintConfig,
    LintContext,
    collect_files,
    parse_module,
)


def build_analysis(tmp_path: Path, files: dict):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    modules = []
    for path, root in collect_files([tmp_path]):
        module, error = parse_module(path, root)
        assert error is None, f"fixture does not parse: {error}"
        modules.append(module)
    return analysis_for(LintContext(LintConfig(), modules))


# --------------------------------------------------------------------- #
# Lattice transfer functions
# --------------------------------------------------------------------- #


def test_join_is_lub():
    assert join(Unit.NS, Unit.NS) is Unit.NS
    # DIMLESS is absorbed: a 0.0 accumulator must not erase later units.
    assert join(Unit.DIMLESS, Unit.CYCLES) is Unit.CYCLES
    assert join(Unit.NS, Unit.DIMLESS) is Unit.NS
    # Incompatible informative tags merge to top, never to an error.
    assert join(Unit.NS, Unit.CYCLES) is Unit.UNKNOWN
    assert join(Unit.UNKNOWN, Unit.NS) is Unit.UNKNOWN


def test_add_keeps_common_unit():
    assert add_units(Unit.NS, Unit.NS) is Unit.NS
    assert add_units(Unit.CYCLES, Unit.DIMLESS) is Unit.CYCLES
    assert add_units(Unit.NS, Unit.CYCLES) is Unit.UNKNOWN


@pytest.mark.parametrize("a,b", [(Unit.NS, Unit.GHZ), (Unit.GHZ, Unit.NS)])
def test_mul_converts_ns_to_cycles(a, b):
    assert mul_units(a, b) is Unit.CYCLES


def test_mul_scales_by_dimensionless():
    assert mul_units(Unit.NS, Unit.DIMLESS) is Unit.NS
    assert mul_units(Unit.DIMLESS, Unit.CYCLES) is Unit.CYCLES
    assert mul_units(Unit.NS, Unit.CYCLES) is Unit.UNKNOWN


def test_div_converts_cycles_back_to_ns():
    assert div_units(Unit.CYCLES, Unit.GHZ) is Unit.NS
    assert div_units(Unit.NS, Unit.DIMLESS) is Unit.NS
    assert div_units(Unit.NS, Unit.NS) is Unit.DIMLESS
    assert div_units(Unit.UNKNOWN, Unit.UNKNOWN) is Unit.UNKNOWN


# --------------------------------------------------------------------- #
# Symbol table
# --------------------------------------------------------------------- #

_TWO_MODULES = {
    "core/__init__.py": "",
    "core/timing.py": (
        "def service_time_ns(width):\n"
        "    return width * 0.25\n"
    ),
    "core/pipe.py": (
        "from core.timing import service_time_ns\n"
        "class Engine:\n"
        "    def issue(self, width):\n"
        "        return self.cost(width)\n"
        "    def cost(self, width):\n"
        "        return service_time_ns(width)\n"
    ),
}


def test_symbol_table_indexes_functions_and_classes(tmp_path):
    table = build_analysis(tmp_path, _TWO_MODULES).table
    qnames = {f.qname for f in table.functions()}
    assert "core.timing.service_time_ns" in qnames
    assert "core.pipe.Engine.issue" in qnames
    assert {c.qname for c in table.classes()} == {"core.pipe.Engine"}


def test_symbol_table_iteration_is_deterministic(tmp_path):
    table = build_analysis(tmp_path, _TWO_MODULES).table
    once = [f.qname for f in table.functions()]
    again = [f.qname for f in table.functions()]
    assert once == again == sorted(once)


def test_resolve_module_by_dotted_suffix(tmp_path):
    table = build_analysis(tmp_path, _TWO_MODULES).table
    assert table.resolve_module("core.timing") == "core.timing"
    assert table.resolve_module("no.such.module") is None


# --------------------------------------------------------------------- #
# Call graph
# --------------------------------------------------------------------- #


def test_callgraph_resolves_cross_module_and_self_calls(tmp_path):
    graph = build_analysis(tmp_path, _TWO_MODULES).graph
    # Cross-module call through a from-import.
    assert [f.qname for f in graph.callees("core.pipe.Engine.cost")] == [
        "core.timing.service_time_ns"
    ]
    # self.method() resolves inside the enclosing class.
    assert [f.qname for f in graph.callees("core.pipe.Engine.issue")] == [
        "core.pipe.Engine.cost"
    ]
    callers = {f.qname for f in graph.callers("core.timing.service_time_ns")}
    assert callers == {"core.pipe.Engine.cost"}


# --------------------------------------------------------------------- #
# Import graph and dependents (powers ``repro lint --changed``)
# --------------------------------------------------------------------- #


def test_reverse_dependents_transitive_closure(tmp_path):
    analysis = build_analysis(tmp_path, {
        "base.py": "X = 1\n",
        "mid.py": "from base import X\nY = X + 1\n",
        "top.py": "import mid\nZ = mid.Y\n",
        "island.py": "W = 9\n",
    })
    imports = module_imports(analysis.table)
    assert imports["mid"] == {"base"}
    assert imports["top"] == {"mid"}
    # A change to base must re-check everything that can observe it --
    # including transitively -- and nothing else.
    assert reverse_dependents(imports, {"base"}) == {"base", "mid", "top"}
    assert reverse_dependents(imports, {"top"}) == {"top"}
    assert reverse_dependents(imports, {"island"}) == {"island"}


# --------------------------------------------------------------------- #
# Fixpoint summaries
# --------------------------------------------------------------------- #


def test_return_units_converge_through_call_chains(tmp_path):
    summaries = build_analysis(tmp_path, {
        "mod.py": (
            "def base_ns(width):\n"
            "    return width * 0.5\n"
            "def padded(width):\n"
            "    return base_ns(width) + 1.5\n"
            "def converted(width, clock_ghz):\n"
            "    return padded(width) * clock_ghz\n"
        ),
    }).summaries
    # base_ns's unit comes from its name contract; padded inherits it
    # through the call + dimensionless add; converted crosses the clock.
    assert summaries.return_unit_of("mod.base_ns") is Unit.NS
    assert summaries.return_unit_of("mod.padded") is Unit.NS
    assert summaries.return_unit_of("mod.converted") is Unit.CYCLES


def test_branch_join_keeps_unit_when_both_arms_agree(tmp_path):
    analysis = build_analysis(tmp_path, {
        "mod.py": (
            "def pick(flag, a_ns, b_ns, c_cycles):\n"
            "    if flag:\n"
            "        x = a_ns\n"
            "    else:\n"
            "        x = b_ns\n"
            "    return x + c_cycles\n"
        ),
    })
    module = analysis.table.module_names["mod"]
    kinds = {c.kind for c in analysis.conflicts_in(module)}
    assert "mix" in kinds  # x is provably ns after the join


def test_branch_join_to_unknown_stays_silent(tmp_path):
    # Arms disagree: x joins to UNKNOWN, and UNKNOWN is never reported
    # on -- false silence is acceptable, false alarms are not.
    analysis = build_analysis(tmp_path, {
        "mod.py": (
            "def pick(flag, a_ns, c_cycles):\n"
            "    if flag:\n"
            "        x = a_ns\n"
            "    else:\n"
            "        x = c_cycles\n"
            "    return x + c_cycles\n"
        ),
    })
    module = analysis.table.module_names["mod"]
    assert analysis.conflicts_in(module) == []
