"""Benchmark harness tests: registry, schema, runner determinism, comparator.

The comparator tests run against *hand-built* synthetic documents, so
every verdict path (improved / ok / regressed / mismatch / usage error)
is exercised without timing noise.  The runner tests execute real tiny
scenarios (registered only for the duration of a test via monkeypatch)
and assert the determinism contract: the non-timing half of a BENCH
document is identical across repeated runs.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    FORMAT_VERSION,
    SCENARIOS,
    Scenario,
    Tolerances,
    bench_filename,
    cheap_scenario_names,
    compare_reports,
    get_scenario,
    make_envelope,
    run_scenario,
    scenario_names,
    validate_report,
)
from repro.trace import coalesced_trace, mixed_locality_trace


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


def test_registry_has_the_documented_scenarios():
    assert scenario_names() == [
        "cache_warm_vs_cold",
        "engine_smoke",
        "parallel_scaling",
        "service_load",
        "table2_sweep_small",
        "telemetry_on_off",
    ]
    assert set(cheap_scenario_names()) <= set(scenario_names())
    # The expensive spawn-pool scenario must never run on every PR.
    assert "parallel_scaling" not in cheap_scenario_names()


def test_get_scenario_round_trips_and_counts_cells():
    scenario = get_scenario("engine_smoke")
    assert scenario.name == "engine_smoke"
    assert scenario.mode == "engine"
    assert scenario.cell_count() == (
        len(scenario.traces) * len(scenario.gpus) * len(scenario.strategies)
    )


def test_get_scenario_unknown_name_lists_choices():
    with pytest.raises(KeyError, match="engine_smoke"):
        get_scenario("nope")


def test_registered_strategies_and_gpus_exist():
    from repro.experiments.runner import STRATEGY_FACTORIES
    from repro.gpu import SIMULATED_GPUS

    for scenario in SCENARIOS.values():
        for strategy in scenario.strategies:
            assert strategy in STRATEGY_FACTORIES, (scenario.name, strategy)
        for gpu in scenario.gpus:
            assert gpu in SIMULATED_GPUS, (scenario.name, gpu)


def test_bench_filename():
    assert bench_filename("engine_smoke") == "BENCH_engine_smoke.json"


# --------------------------------------------------------------------- #
# Schema
# --------------------------------------------------------------------- #


def test_envelope_carries_provenance():
    doc = make_envelope("engine_smoke", {"repeats": 3})
    assert doc["format"] == FORMAT_VERSION
    assert doc["scenario"] == "engine_smoke"
    assert doc["config"] == {"repeats": 3}
    assert isinstance(doc["engine_fingerprint"], str)
    assert set(doc["machine"]) == {"platform", "machine", "python",
                                   "cpu_count"}
    # A fresh envelope is not yet a valid report: no cells, no aggregate.
    assert validate_report(doc)


def _synthetic_cell(cell_id: str, wall: float = 10.0, cycles: int = 1000,
                    digest: str = "d0") -> dict:
    return {
        "id": cell_id,
        "trace": cell_id.split("|")[0],
        "gpu": "3060-Sim",
        "strategy": cell_id.split("|")[-1],
        "variant": None,
        "wall_ms": {"median": wall, "iqr": 0.0, "min": wall, "max": wall,
                    "mean": wall, "n": 3},
        "deterministic": {
            "sim_cycles": cycles, "rop_ops": 64, "lane_ops": 256,
            "trace_fingerprint": "f0", "sim_digest": digest,
            "repeat_stable": True, "phase_cycles": None,
        },
        "throughput": {"batches_per_sec": 100.0},
    }


def _synthetic_doc(scenario: str = "synthetic", wall: float = 10.0,
                   fingerprint: str = "engine-a") -> dict:
    return {
        "format": FORMAT_VERSION,
        "scenario": scenario,
        "created_unix": 0.0,
        "machine": {"platform": "test", "machine": "x", "python": "3",
                    "cpu_count": 1},
        "git": {"sha": None, "dirty": None},
        "engine_fingerprint": fingerprint,
        "config": {},
        "cells": [
            _synthetic_cell("t0|3060-Sim|baseline", wall=wall),
            _synthetic_cell("t0|3060-Sim|ARC-HW", wall=wall / 2,
                            cycles=500, digest="d1"),
        ],
        "aggregate": {
            "wall_ms_total": wall * 6, "cells": 2, "runs": 6,
            "cells_per_sec": 6 / (wall * 6 / 1e3),
            "peak_rss_kb": 50_000,
            "cache": None, "telemetry_overhead": None, "parallel": None,
        },
    }


def test_validate_report_accepts_synthetic_and_json_round_trip():
    doc = _synthetic_doc()
    assert validate_report(doc) == []
    assert validate_report(json.loads(json.dumps(doc))) == []


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.update(format=99), "format"),
    (lambda d: d.update(scenario=""), "scenario"),
    (lambda d: d.update(engine_fingerprint=None), "engine_fingerprint"),
    (lambda d: d.update(cells=[]), "cells"),
    (lambda d: d.update(aggregate=None), "aggregate"),
    (lambda d: d["cells"][0].pop("wall_ms"), "wall_ms"),
    (lambda d: d["cells"][0]["wall_ms"].pop("median"), "median"),
    (lambda d: d["cells"][1]["deterministic"].pop("sim_digest"),
     "sim_digest"),
    (lambda d: d["aggregate"].pop("cells_per_sec"), "cells_per_sec"),
    (lambda d: d["cells"].__setitem__(1, d["cells"][0]), "duplicate"),
])
def test_validate_report_flags_violations(mutate, fragment):
    doc = _synthetic_doc()
    mutate(doc)
    problems = validate_report(doc)
    assert problems and any(fragment in p for p in problems), problems


# --------------------------------------------------------------------- #
# Comparator verdicts (synthetic baselines: no timing noise)
# --------------------------------------------------------------------- #


def test_compare_identical_documents_passes():
    comparison = compare_reports(_synthetic_doc(), _synthetic_doc())
    assert comparison.verdict == "ok"
    assert comparison.passed
    assert comparison.exit_code == 0
    assert comparison.failures() == []


def test_compare_within_tolerance_is_ok():
    fresh = _synthetic_doc(wall=12.0)  # 1.2x < the 0.5 default band
    comparison = compare_reports(_synthetic_doc(), fresh)
    assert comparison.verdict == "ok"
    assert comparison.exit_code == 0


def test_compare_improvement_passes_and_is_reported():
    fresh = _synthetic_doc(wall=4.0)  # 2.5x faster
    comparison = compare_reports(_synthetic_doc(), fresh)
    # The overall verdict is the *worst* entry -- deterministic fields
    # unchanged read "ok" -- but the improvement passes and is surfaced.
    assert comparison.verdict in ("ok", "improved")
    assert comparison.passed
    assert comparison.exit_code == 0
    assert comparison.counts()["improved"] > 0
    assert "improved" in comparison.render_text()


def test_compare_timing_regression_fails():
    fresh = _synthetic_doc(wall=30.0)  # 3x slower
    comparison = compare_reports(_synthetic_doc(), fresh)
    assert comparison.verdict == "regressed"
    assert not comparison.passed
    assert comparison.exit_code == 1
    metrics = {entry.metric for entry in comparison.failures()}
    assert any("wall_ms.median" in metric for metric in metrics)
    # ...but a looser tolerance forgives the same delta.
    loose = compare_reports(_synthetic_doc(), fresh,
                            Tolerances(timing_frac=5.0, rss_frac=5.0))
    assert loose.passed


def test_compare_deterministic_drift_is_a_mismatch():
    fresh = _synthetic_doc()
    fresh["cells"][0]["deterministic"]["sim_cycles"] += 1
    comparison = compare_reports(_synthetic_doc(), fresh)
    assert comparison.verdict == "mismatch"
    assert comparison.exit_code == 1
    # Deterministic drift is never excused by timing tolerances.
    still = compare_reports(_synthetic_doc(), fresh,
                            Tolerances(timing_frac=100.0, rss_frac=100.0))
    assert not still.passed


def test_compare_missing_cell_is_a_structure_mismatch():
    fresh = _synthetic_doc()
    del fresh["cells"][1]
    fresh["aggregate"]["cells"] = 1
    comparison = compare_reports(_synthetic_doc(), fresh)
    assert comparison.verdict == "mismatch"
    assert any(entry.kind == "structure"
               for entry in comparison.failures())


def test_compare_engine_fingerprint_change_is_a_note_not_a_failure():
    fresh = _synthetic_doc(fingerprint="engine-b")
    comparison = compare_reports(_synthetic_doc(), fresh)
    assert comparison.passed
    assert any("engine source changed" in note for note in comparison.notes)


def test_compare_usage_errors_raise_value_error():
    with pytest.raises(ValueError, match="scenario mismatch"):
        compare_reports(_synthetic_doc("a"), _synthetic_doc("b"))
    broken = _synthetic_doc()
    broken["cells"] = []
    with pytest.raises(ValueError, match="not schema-valid"):
        compare_reports(broken, _synthetic_doc())


def test_comparison_to_dict_is_json_serializable():
    comparison = compare_reports(_synthetic_doc(), _synthetic_doc(wall=30.0))
    payload = json.loads(json.dumps(comparison.to_dict()))
    assert payload["verdict"] == "regressed"
    assert payload["passed"] is False
    assert payload["counts"]["regressed"] >= 1


# --------------------------------------------------------------------- #
# Runner determinism (real tiny scenarios)
# --------------------------------------------------------------------- #


def _tiny_trace():
    return coalesced_trace(n_batches=40, n_slots=32, num_params=2, seed=9,
                           name="tiny-bench")


def _tiny_trace_mixed():
    return mixed_locality_trace(n_batches=30, n_slots=64, num_params=2,
                                seed=10, name="tiny-bench-mixed")


def _register_tiny(monkeypatch, mode: str, **overrides) -> str:
    name = f"tiny_{mode}"
    spec = dict(
        name=name, description="test scenario", mode=mode, cheap=True,
        repeats=2, traces=(("tiny", _tiny_trace),), gpus=("3060-Sim",),
        strategies=("baseline", "ARC-HW"),
    )
    spec.update(overrides)
    monkeypatch.setitem(SCENARIOS, name, Scenario(**spec))
    return name


def _strip_timing(doc: dict) -> dict:
    """The half of a BENCH document that must be run-invariant."""
    return {
        "scenario": doc["scenario"],
        "engine_fingerprint": doc["engine_fingerprint"],
        "config": doc["config"],
        "cells": [
            {"id": cell["id"], "trace": cell["trace"], "gpu": cell["gpu"],
             "strategy": cell["strategy"], "variant": cell["variant"],
             "deterministic": cell["deterministic"],
             "n": cell["wall_ms"]["n"]}
            for cell in doc["cells"]
        ],
        "aggregate_counts": {"cells": doc["aggregate"]["cells"],
                             "runs": doc["aggregate"]["runs"]},
        "cache_hit_rates": (
            None if doc["aggregate"]["cache"] is None else
            {key: doc["aggregate"]["cache"][key]
             for key in ("cold_hit_rate", "warm_hit_rate")}
        ),
    }


def test_engine_scenario_document_is_valid_and_deterministic(monkeypatch):
    name = _register_tiny(monkeypatch, "engine")
    first = run_scenario(name)
    second = run_scenario(name)
    assert validate_report(first) == []
    assert _strip_timing(first) == _strip_timing(second)
    for cell in first["cells"]:
        assert cell["deterministic"]["repeat_stable"] is True
        assert cell["deterministic"]["phase_cycles"] is None


def test_engine_scenario_repeats_override(monkeypatch):
    name = _register_tiny(monkeypatch, "engine")
    doc = run_scenario(name, repeats=4)
    assert doc["config"]["repeats"] == 4
    assert all(cell["wall_ms"]["n"] == 4 for cell in doc["cells"])
    with pytest.raises(ValueError, match="repeats"):
        run_scenario(name, repeats=0)


def test_telemetry_scenario_pairs_cells_and_records_phases(monkeypatch):
    name = _register_tiny(monkeypatch, "telemetry",
                          strategies=("baseline",))
    doc = run_scenario(name)
    assert validate_report(doc) == []
    variants = {cell["variant"] for cell in doc["cells"]}
    assert variants == {"off", "on"}
    overhead = doc["aggregate"]["telemetry_overhead"]
    assert overhead["bit_identical"] is True
    assert overhead["overhead_ratio"] > 0
    from repro.gpu.telemetry import PHASES

    for cell in doc["cells"]:
        phases = cell["deterministic"]["phase_cycles"]
        if cell["variant"] == "off":
            assert phases is None
        else:
            assert set(phases) == set(PHASES)
            assert all(value >= 0 for value in phases.values())


def test_cache_scenario_measures_cold_miss_then_warm_hits(monkeypatch):
    name = _register_tiny(monkeypatch, "cache", repeats=1,
                          strategies=("baseline",))
    doc = run_scenario(name)
    assert validate_report(doc) == []
    cache = doc["aggregate"]["cache"]
    assert cache["cold_hit_rate"] == 0.0
    assert cache["warm_hit_rate"] == 1.0
    assert cache["warm_speedup"] > 0
    # Warm results replay from disk bit-identically.
    by_variant = {}
    for cell in doc["cells"]:
        by_variant.setdefault(cell["variant"], []).append(
            cell["deterministic"]["sim_digest"]
        )
    assert by_variant["cold"] == by_variant["warm"]


def test_cache_scenario_leaves_no_cache_state_behind(monkeypatch):
    from repro.experiments import diskcache

    name = _register_tiny(monkeypatch, "cache", repeats=1,
                          strategies=("baseline",))
    before = diskcache.active_cache()
    run_scenario(name)
    assert diskcache.active_cache() is before


def test_multi_trace_scenario_skips_swb_on_ineligible_traces(monkeypatch):
    name = _register_tiny(
        monkeypatch, "engine",
        traces=(("tiny", _tiny_trace), ("tiny-mixed", _tiny_trace_mixed)),
        strategies=("baseline", "ARC-SW-B-8"),
    )
    doc = run_scenario(name)
    ids = {cell["id"] for cell in doc["cells"]}
    eligible = {"SW-B" in cell_id for cell_id in ids}
    # Both traces here are butterfly-eligible synthetics, so SW-B rows
    # exist; the registry helper must still produce unique ids per trace.
    assert True in eligible
    assert len(ids) == len(doc["cells"])


def test_run_scenario_round_trips_through_compare(monkeypatch):
    """A freshly-measured document compares clean against itself."""
    name = _register_tiny(monkeypatch, "engine", repeats=1,
                          strategies=("baseline",))
    doc = run_scenario(name)
    baseline = json.loads(json.dumps(doc))
    comparison = compare_reports(baseline, copy.deepcopy(doc),
                                 Tolerances(timing_frac=10.0))
    assert comparison.passed


# --------------------------------------------------------------------- #
# History collation (repro bench --history)
# --------------------------------------------------------------------- #


def _bench_doc(scenario, created, sha="a" * 40, dirty=False,
               fingerprint="f" * 64, wall=100.0):
    return {
        "scenario": scenario,
        "created_unix": created,
        "git": {"sha": sha, "dirty": dirty},
        "engine_fingerprint": fingerprint,
        "aggregate": {
            "wall_ms_total": wall,
            "cells_per_sec": 10.0,
            "peak_rss_kb": 4096,
        },
        "cells": [{"key": "k1"}, {"key": "k2"}],
    }


def test_load_reports_keeps_bench_documents_and_reports_junk(tmp_path):
    from repro.bench import load_reports

    (tmp_path / "runs" / "r1").mkdir(parents=True)
    good = tmp_path / "runs" / "r1" / "BENCH_engine_smoke.json"
    good.write_text(json.dumps(_bench_doc("engine_smoke", 100)))
    (tmp_path / "broken.json").write_text("{torn")
    (tmp_path / "list.json").write_text("[1, 2]")
    (tmp_path / "other.json").write_text(json.dumps({"scenario": "x"}))
    (tmp_path / "notes.txt").write_text("not json, not scanned")

    documents, skipped = load_reports(tmp_path)
    assert [doc["_source"] for doc in documents] \
        == ["runs/r1/BENCH_engine_smoke.json"]
    reasons = dict(item.split(": ", 1) for item in skipped)
    assert "unreadable" in reasons["broken.json"]
    assert reasons["list.json"] == "not a JSON object"
    assert "missing created_unix" in reasons["other.json"]


def test_collate_history_sorts_by_scenario_then_time(tmp_path):
    from repro.bench import HISTORY_COLUMNS, collate_history, load_reports

    docs = [
        ("c.json", _bench_doc("engine_smoke", 300)),
        ("a.json", _bench_doc("parallel_scaling", 100)),
        ("b.json", _bench_doc("engine_smoke", 200, dirty=True)),
    ]
    for name, doc in docs:
        (tmp_path / name).write_text(json.dumps(doc))
    reports, skipped = load_reports(tmp_path)
    assert skipped == []
    rows = collate_history(reports)
    assert [(r["scenario"], r["created_unix"]) for r in rows] == [
        ("engine_smoke", 200), ("engine_smoke", 300),
        ("parallel_scaling", 100),
    ]
    assert all(tuple(row) == HISTORY_COLUMNS for row in rows)
    assert rows[0]["dirty"] is True
    assert rows[0]["engine_fingerprint"] == "f" * 12  # truncated
    assert rows[0]["cells"] == 2
    assert rows[0]["source"] == "b.json"


def test_collate_history_tolerates_thin_provenance():
    from repro.bench import collate_history

    doc = {
        "scenario": "engine_smoke",
        "created_unix": 50,
        "aggregate": {},
        "cells": [],
        "_source": "thin.json",
    }
    [row] = collate_history([doc])
    assert row["git_sha"] is None
    assert row["engine_fingerprint"] is None
    assert row["wall_ms_total"] is None
    assert row["cells"] == 0


def test_collate_history_deltas_within_scenario_and_machine(tmp_path):
    """delta_wall_ms compares a run to the previous run of the *same
    scenario on the same machine hash*: cross-host pairs and each
    machine's first run collate with no delta."""
    from repro.bench import collate_history, load_reports, machine_hash

    host_a = {"platform": "Linux-x", "machine": "x86_64",
              "python": "3.12.0", "cpu_count": 8}
    host_b = {"platform": "Darwin-y", "machine": "arm64",
              "python": "3.12.0", "cpu_count": 10}
    runs = [
        ("r1.json", 100, host_a, 100.0),
        ("r2.json", 200, host_a, 130.0),
        ("r3.json", 300, host_b, 500.0),   # new host: no delta
        ("r4.json", 400, host_a, 90.0),    # vs r2, not r3
    ]
    for name, created, machine, wall in runs:
        doc = _bench_doc("engine_smoke", created, wall=wall)
        doc["machine"] = machine
        (tmp_path / name).write_text(json.dumps(doc))
    other = _bench_doc("parallel_scaling", 250, wall=1000.0)
    other["machine"] = host_a
    (tmp_path / "other.json").write_text(json.dumps(other))

    reports, skipped = load_reports(tmp_path)
    assert skipped == []
    rows = collate_history(reports)
    by_source = {row["source"]: row for row in rows}
    assert by_source["r1.json"]["delta_wall_ms"] is None
    assert by_source["r2.json"]["delta_wall_ms"] == pytest.approx(30.0)
    assert by_source["r3.json"]["delta_wall_ms"] is None
    assert by_source["r4.json"]["delta_wall_ms"] == pytest.approx(-40.0)
    # The other scenario's run interleaves in time but never pairs.
    assert by_source["other.json"]["delta_wall_ms"] is None
    assert by_source["r1.json"]["machine"] == machine_hash(host_a)
    assert by_source["r3.json"]["machine"] == machine_hash(host_b)
    # The hash is order-insensitive content identity.
    assert machine_hash(dict(reversed(list(host_a.items())))) \
        == machine_hash(host_a)
    assert machine_hash(None) is None


def test_collate_history_skips_deltas_without_machine_provenance():
    from repro.bench import collate_history

    docs = [
        {"scenario": "engine_smoke", "created_unix": t,
         "aggregate": {"wall_ms_total": 100.0 + t}, "cells": [],
         "_source": f"t{t}.json"}
        for t in (1, 2)
    ]
    rows = collate_history(docs)
    assert [row["delta_wall_ms"] for row in rows] == [None, None]
    assert [row["machine"] for row in rows] == [None, None]
