"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "3D-LE" in out
    assert "ARC-HW" in out
    assert "4090-Sim" in out


@pytest.fixture
def small_registry(monkeypatch):
    """Swap the workload registry for tiny instances to keep CLI tests
    fast (the real Table 2 workloads take seconds to build)."""
    from repro.workloads import GaussianWorkload

    def fake_load(key):
        return GaussianWorkload(
            key=key, dataset="d", description="x", n_gaussians=80,
            base_scale=0.15, extent=1.0, width=64, height=64, seed=1,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    return fake_load


def test_profile(small_registry, capsys):
    assert main(["profile", "-w", "3D-LE"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out
    assert "active lanes" in out


def test_simulate_table(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "ARC-SW-B-8",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "ARC-HW" in out

    # Unknown strategy -> error exit code.
    assert main(["simulate", "-s", "nonsense"]) == 2


def test_train(small_registry, capsys):
    assert main(["train", "-w", "3D-LE", "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "PSNR" in out


def test_breakdown(small_registry, capsys):
    assert main(["breakdown", "-w", "3D-LE", "-g", "3060-Sim"]) == 0
    out = capsys.readouterr().out
    assert "forward" in out and "grad" in out


def test_tune(small_registry, capsys):
    assert main(["tune", "-w", "3D-LE", "-g", "3060-Sim",
                 "--variant", "B"]) == 0
    out = capsys.readouterr().out
    assert "best" in out


def test_tune_rejects_swb_on_divergent_kernel(monkeypatch, capsys):
    from repro.workloads import SphereWorkload

    def fake_load(key):
        return SphereWorkload(
            key=key, dataset="d", description="x", n_spheres=60,
            base_radius=0.16, width=64, height=64, seed=2,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    assert main(["tune", "-w", "PS-SS", "--variant", "B"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
