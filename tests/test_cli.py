"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "3D-LE" in out
    assert "ARC-HW" in out
    assert "4090-Sim" in out


@pytest.fixture
def small_registry(monkeypatch):
    """Swap the workload registry for tiny instances to keep CLI tests
    fast (the real Table 2 workloads take seconds to build)."""
    from repro.workloads import GaussianWorkload

    def fake_load(key):
        return GaussianWorkload(
            key=key, dataset="d", description="x", n_gaussians=80,
            base_scale=0.15, extent=1.0, width=64, height=64, seed=1,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    return fake_load


def test_profile(small_registry, capsys):
    assert main(["profile", "-w", "3D-LE"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out
    assert "active lanes" in out


def test_simulate_table(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "ARC-SW-B-8",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "ARC-HW" in out

    # Unknown strategy -> error exit code.
    assert main(["simulate", "-s", "nonsense"]) == 2


@pytest.mark.parametrize("bad_jobs", ["0", "-3", "many"])
def test_simulate_rejects_non_positive_jobs(bad_jobs, capsys):
    """``--jobs 0`` and friends get a friendly argparse error, not a
    traceback from deep inside the pool machinery."""
    with pytest.raises(SystemExit) as excinfo:
        main(["simulate", "--jobs", bad_jobs])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "positive integer" in err
    assert bad_jobs in err


def test_default_jobs_honors_env(monkeypatch):
    from repro.experiments.parallel import JOBS_ENV, default_jobs

    monkeypatch.setenv(JOBS_ENV, "3")
    assert default_jobs() == 3
    assert default_jobs(fallback=1) == 3  # env wins over the fallback

    for bogus in ("0", "-2", "banana", "  "):
        monkeypatch.setenv(JOBS_ENV, bogus)
        assert default_jobs(fallback=1) == 1  # ignored, not an error

    monkeypatch.delenv(JOBS_ENV)
    assert default_jobs(fallback=4) == 4
    assert default_jobs() >= 1  # cpu_count fallback


def test_simulate_parallel_prints_run_report(small_registry, capsys):
    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--jobs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "execution" in out
    assert "2 cells" in out


def test_train(small_registry, capsys):
    assert main(["train", "-w", "3D-LE", "-n", "3"]) == 0
    out = capsys.readouterr().out
    assert "PSNR" in out


def test_breakdown(small_registry, capsys):
    assert main(["breakdown", "-w", "3D-LE", "-g", "3060-Sim"]) == 0
    out = capsys.readouterr().out
    assert "forward" in out and "grad" in out


def test_tune(small_registry, capsys):
    assert main(["tune", "-w", "3D-LE", "-g", "3060-Sim",
                 "--variant", "B"]) == 0
    out = capsys.readouterr().out
    assert "best" in out


def test_tune_rejects_swb_on_divergent_kernel(monkeypatch, capsys):
    from repro.workloads import SphereWorkload

    def fake_load(key):
        return SphereWorkload(
            key=key, dataset="d", description="x", n_spheres=60,
            base_radius=0.16, width=64, height=64, seed=2,
        )

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", fake_load)
    assert main(["tune", "-w", "PS-SS", "--variant", "B"]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


# --------------------------------------------------------------------- #
# Observability surfaces (timelines, Perfetto export, JSON, run logs)
# --------------------------------------------------------------------- #


def test_simulate_json_format(small_registry, capsys):
    import json

    assert main([
        "simulate", "-w", "3D-LE", "-g", "3060-Sim",
        "-s", "baseline", "ARC-HW", "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["workload"] == "3D-LE"
    assert doc["gpu"] == "3060-Sim"
    assert {result["strategy"] for result in doc["results"]} \
        == {"baseline", "ARC-HW"}
    assert all(result["total_cycles"] > 0 for result in doc["results"])
    assert doc["skipped"] == []


def test_simulate_json_reports_skipped_strategies(monkeypatch, capsys):
    import json

    from repro.workloads import SphereWorkload

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", lambda key: SphereWorkload(
        key=key, dataset="d", description="x", n_spheres=60,
        base_radius=0.16, width=64, height=64, seed=2,
    ))
    assert main([
        "simulate", "-w", "PS-SS", "-s", "baseline", "ARC-SW-B-8",
        "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["skipped"] == ["ARC-SW-B-8"]
    assert {result["strategy"] for result in doc["results"]} == {"baseline"}


def test_simulate_writes_timeline_per_strategy(small_registry, capsys,
                                               tmp_path):
    from repro.profiling import load_timeline, summarize_timeline

    base = tmp_path / "tl.json"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline", "ARC-HW",
        "--timeline", str(base), "-v",
    ]) == 0
    out = capsys.readouterr().out
    assert "timeline written" in out
    for name in ("baseline", "ARC-HW"):
        path = tmp_path / f"tl.{name}.json"
        assert path.exists(), name
        summary = summarize_timeline(load_timeline(path))
        assert summary.strategy == name
        assert summary.total_cycles > 0


def test_simulate_single_strategy_timeline_npz(small_registry, capsys,
                                               tmp_path):
    from repro.profiling import load_timeline

    base = tmp_path / "one.npz"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline",
        "--timeline", str(base),
    ]) == 0
    assert base.exists()
    assert load_timeline(base).meta["strategy"] == "baseline"


def test_profile_json_format(small_registry, capsys):
    import json

    assert main([
        "profile", "-w", "3D-LE", "-g", "4090-Sim",
        "--strategy", "ARC-HW", "--format", "json",
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["profile"]["n_batches"] > 0
    assert 0.0 <= doc["profile"]["locality"] <= 1.0
    report = doc["stall_report"]
    assert report["strategy"] == "ARC-HW"
    assert report["gpu"] == "4090-Sim"
    assert sum(report["breakdown"].values()) == pytest.approx(1.0)


def test_profile_perfetto_on_histogram_workload(monkeypatch, capsys,
                                                tmp_path):
    """The ISSUE acceptance path: a Perfetto export of the histogram
    workload carries at least one span track per active sub-core plus
    the LSU / ROP / interconnect counter tracks."""
    import json

    from repro.workloads import HistogramWorkload

    import repro.cli as cli
    monkeypatch.setattr(cli, "load_workload", lambda key: HistogramWorkload(
        n_elements=4096, n_bins=64, smoothness=4, seed=7,
    ))
    out_path = tmp_path / "hist.trace.json"
    assert main([
        "profile", "-w", "3D-LE", "--perfetto", str(out_path),
    ]) == 0
    assert "perfetto trace written" in capsys.readouterr().out

    doc = json.loads(out_path.read_text())
    events = doc["traceEvents"]
    begins = [ev for ev in events if ev["ph"] == "B"]
    assert begins
    span_tracks = {ev["tid"] for ev in begins}
    assert len(span_tracks) >= 1
    counter_names = {ev["name"] for ev in events if ev["ph"] == "C"}
    assert any(name.startswith("lsu_queue[sm") for name in counter_names)
    assert any(name.startswith("rop_busy[p") for name in counter_names)
    assert "interconnect_busy" in counter_names


def test_timeline_command(small_registry, capsys, tmp_path):
    import json

    base = tmp_path / "tl.json"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline",
        "--timeline", str(base),
    ]) == 0
    capsys.readouterr()

    assert main(["timeline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "peak LSU occupancy" in out
    assert "interconnect util" in out

    assert main(["timeline", str(base), "--format", "json", "--top", "2"]) \
        == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["strategy"] == "baseline"
    assert len(doc["hot_slots"]) <= 2
    assert isinstance(doc["lsu_saturated"], bool)


def test_timeline_command_rejects_unreadable_file(tmp_path, capsys):
    assert main(["timeline", str(tmp_path / "missing.json")]) == 2
    assert "cannot read timeline" in capsys.readouterr().err


def test_cli_log_flag_writes_obslog(small_registry, capsys, tmp_path):
    import os

    from repro.obslog import OBSLOG_ENV, read_events

    log = tmp_path / "run.jsonl"
    assert main([
        "simulate", "-w", "3D-LE", "-s", "baseline", "--log", str(log),
    ]) == 0
    names = [event["event"] for event in read_events(log)]
    assert names[0] == "cli.start"
    assert names[-1] == "cli.finish"
    # Cache traffic from the run lands in the same stream.
    assert any(name.startswith("cache.") for name in names)
    # The sink does not leak past main().
    assert os.environ.get(OBSLOG_ENV) is None
